//! End-to-end integration tests spanning every crate in the workspace: from a
//! deployment through the radio environment, routing, demand aggregation,
//! distributed scheduling and verification.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scream::prelude::*;
use scream::protocols::ProtocolKind;

/// Builds a complete scheduling instance on a planned grid.
fn grid_instance(
    side: usize,
    step_m: f64,
    gateway_count: usize,
    seed: u64,
) -> (RadioEnvironment, LinkDemands) {
    let deployment = GridDeployment::new(side, side, step_m).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .build(&deployment);
    let graph = env.communication_graph();
    assert!(graph.is_connected(), "test instance must be connected");
    let mut gateways = deployment.corner_nodes();
    gateways.truncate(gateway_count.max(1));
    let forest = RoutingForest::shortest_path(&graph, &gateways, seed).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let demands =
        DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).unwrap();
    (env, link_demands)
}

#[test]
fn full_pipeline_produces_valid_schedules_for_every_protocol() {
    let (env, link_demands) = grid_instance(5, 140.0, 2, 1);
    let config = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter())
        .with_seed(1);

    let centralized = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
    verify_schedule(&env, &centralized, &link_demands).unwrap();

    for kind in [
        ProtocolKind::Fdd,
        ProtocolKind::Afdd,
        ProtocolKind::pdd_unchecked(0.2),
        ProtocolKind::pdd_unchecked(0.6),
        ProtocolKind::pdd_unchecked(0.8),
    ] {
        let run = DistributedScheduler::new(kind, config)
            .run(&env, &link_demands)
            .unwrap_or_else(|e| panic!("{kind:?} failed: {e}"));
        verify_schedule(&env, &run.schedule, &link_demands)
            .unwrap_or_else(|e| panic!("{kind:?} produced an invalid schedule: {e}"));
        assert!(run.stats.terminated, "{kind:?} must terminate");
        assert!(
            run.schedule.length() as u64 <= link_demands.total_demand(),
            "{kind:?} can never be worse than the serialized schedule"
        );
        assert!(run.execution_secs() > 0.0);
    }
}

#[test]
fn fdd_and_afdd_recreate_the_centralized_schedule_across_instances() {
    for seed in [3u64, 5, 9] {
        let (env, link_demands) = grid_instance(4, 160.0, 1, seed);
        let config = ProtocolConfig::paper_default()
            .with_scream_slots(env.interference_diameter())
            .with_seed(seed);
        let centralized = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
        let fdd = DistributedScheduler::fdd()
            .with_config(config)
            .run(&env, &link_demands)
            .unwrap();
        let afdd = DistributedScheduler::afdd()
            .with_config(config)
            .run(&env, &link_demands)
            .unwrap();
        assert_eq!(fdd.schedule, centralized, "seed {seed}");
        assert_eq!(afdd.schedule, centralized, "seed {seed}");
    }
}

#[test]
fn schedule_quality_ordering_matches_the_paper() {
    // Centralized == FDD >= PDD(any p), and the serialized schedule is the
    // common upper bound on length.
    let (env, link_demands) = grid_instance(6, 130.0, 4, 7);
    let config = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter())
        .with_seed(7);

    let centralized = ScheduleMetrics::compute(
        &GreedyPhysical::paper_baseline().schedule(&env, &link_demands),
        &link_demands,
    );
    let fdd_run = DistributedScheduler::fdd()
        .with_config(config)
        .run(&env, &link_demands)
        .unwrap();
    let fdd = fdd_run.metrics(&link_demands);
    assert_eq!(fdd.length, centralized.length);
    assert!(centralized.improvement_over_linear_pct > 0.0);

    for p in [0.2, 0.8] {
        let pdd = DistributedScheduler::pdd(p)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config)
            .run(&env, &link_demands)
            .unwrap()
            .metrics(&link_demands);
        assert!(
            pdd.length >= fdd.length,
            "PDD(p={p}) should not beat FDD: {} vs {}",
            pdd.length,
            fdd.length
        );
        assert!(pdd.length as u64 <= link_demands.total_demand());
    }
}

#[test]
fn physical_scream_fidelity_and_ideal_fidelity_agree_end_to_end() {
    let (env, link_demands) = grid_instance(4, 150.0, 1, 11);
    let base = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter())
        .with_seed(11);
    let ideal = DistributedScheduler::fdd()
        .with_config(base.with_fidelity(ScreamFidelity::Ideal))
        .run(&env, &link_demands)
        .unwrap();
    let physical = DistributedScheduler::fdd()
        .with_config(base.with_fidelity(ScreamFidelity::Physical))
        .run(&env, &link_demands)
        .unwrap();
    assert_eq!(ideal.schedule, physical.schedule);
    assert_eq!(ideal.timing, physical.timing);
    assert_eq!(ideal.stats.rounds, physical.stats.rounds);
}

#[test]
fn execution_time_knobs_do_not_change_the_schedule() {
    let (env, link_demands) = grid_instance(4, 150.0, 2, 13);
    let base = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter())
        .with_seed(13);
    let reference = DistributedScheduler::fdd()
        .with_config(base)
        .run(&env, &link_demands)
        .unwrap();
    let mut times = Vec::new();
    for config in [
        base.with_scream_bytes(60),
        base.with_scream_slots(env.interference_diameter() * 4),
        base.with_clock_skew(ClockSkewConfig::new(SimTime::from_millis(5))),
    ] {
        let run = DistributedScheduler::fdd()
            .with_config(config)
            .run(&env, &link_demands)
            .unwrap();
        assert_eq!(run.schedule, reference.schedule);
        times.push(run.execution_secs());
    }
    assert!(times.iter().all(|&t| t > reference.execution_secs()));
}

#[test]
fn unplanned_heterogeneous_instance_schedules_end_to_end() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let deployment = UniformDeployment::new(36, 800.0)
        .tx_power_dbm(16.0)
        .heterogeneous_power(8.0)
        .build_connected(&mut rng, 200.0, 200)
        .unwrap();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .build(&deployment);
    let graph = env.communication_graph();
    if !graph.is_connected() {
        // The SINR graph can be sparser than the unit-disk draw check; this
        // particular seed is known connected, but guard against flakiness.
        return;
    }
    let gateways = vec![deployment.corner_nodes()[0], deployment.corner_nodes()[1]];
    let forest = RoutingForest::shortest_path(&graph, &gateways, 31).unwrap();
    let demands =
        DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).unwrap();

    let config = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter())
        .with_seed(31);
    let fdd = DistributedScheduler::fdd()
        .with_config(config)
        .run(&env, &link_demands)
        .unwrap();
    verify_schedule(&env, &fdd.schedule, &link_demands).unwrap();
    assert_eq!(
        fdd.schedule,
        GreedyPhysical::paper_baseline().schedule(&env, &link_demands)
    );
}

#[test]
fn mote_experiment_supports_the_scream_size_used_by_the_protocols() {
    // The protocols default to 15-byte SCREAMs; the mote experiment must show
    // that size is reliably detectable, and that very small screams are not.
    use scream::mote::{MoteExperiment, MoteExperimentConfig};
    let reliable = MoteExperiment::new(
        MoteExperimentConfig::paper_default()
            .with_scream_bytes(15)
            .with_scream_count(200),
    )
    .run();
    let unreliable = MoteExperiment::new(
        MoteExperimentConfig::paper_default()
            .with_scream_bytes(3)
            .with_scream_count(200),
    )
    .run();
    assert!(reliable.error_percentage() < 10.0);
    assert!(unreliable.error_percentage() > 40.0);
}

#[test]
fn localized_scheduling_fails_where_global_scheduling_succeeds() {
    use scream::protocols::impossibility::{CounterExample, LocalizedGreedy};
    let ce = CounterExample::for_locality(3);
    let env = ce.environment();
    let graph = env.communication_graph();
    let localized = LocalizedGreedy::new(3);
    assert!(localized.admits(&env, &graph, &[ce.link_l], ce.link_l_prime));
    assert!(!env.can_add_to_slot(&[ce.link_l], ce.link_l_prime));
    assert!(!env.slot_feasible(&[ce.link_l, ce.link_l_prime]));
}

#[test]
fn traffic_engine_carries_packets_over_a_distributed_schedule() {
    // The full pipeline one layer further than scheduling: deployment ->
    // routing -> demands -> distributed FDD schedule -> packet-level traffic
    // over that schedule as a repeating TDMA frame, via the facade prelude.
    let deployment = GridDeployment::new(4, 4, 150.0).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .build(&deployment);
    let graph = env.communication_graph();
    let gateways = vec![deployment.corner_nodes()[0]];
    let forest = RoutingForest::shortest_path(&graph, &gateways, 5).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let demands =
        DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).unwrap();

    let run = DistributedScheduler::fdd()
        .with_config(
            ProtocolConfig::paper_default()
                .with_scream_slots(env.interference_diameter())
                .with_seed(5),
        )
        .run(&env, &link_demands)
        .unwrap();
    verify_schedule(&env, &run.schedule, &link_demands).unwrap();

    // 70% of the frame's capacity: one deterministic flow per mesh node.
    let frame = run.frame_service();
    let flows = FlowSet::along_forest(&forest, &demands, 0.7 / frame.frame_slots() as f64);
    let engine = TrafficEngine::new(frame, flows, TrafficConfig::new(300).with_seed(5)).unwrap();
    let report = engine.run();
    assert!(report.verdict.is_stable(), "{report}");
    assert!(report.sustained_throughput_pct > 98.0, "{report}");
    assert!(report.delay.mean_slots >= 1.0);
    assert_eq!(report.flow_count, flows_with_demand(&forest, &demands));
    assert_eq!(report.final_backlog, report.injected - report.delivered);
    // Deterministic end to end.
    assert_eq!(report, engine.run());
}

fn flows_with_demand(forest: &RoutingForest, demands: &DemandVector) -> usize {
    forest
        .flow_routes()
        .filter(|(v, _)| demands.demand(*v) > 0)
        .count()
}
