//! Integration tests for the `scream-obs` layer: same instance + seed must
//! yield byte-identical metrics snapshots and slot-clock traces across
//! schedulers and churn runs, and a disabled (or zero-capacity) sink must
//! leave every schedule and report byte-identical to the uninstrumented run.

use scream::obs;
use scream::prelude::*;
use scream_bench::{PaperScenario, RecoveryExperiment, ScenarioInstance};

/// The 16-node paper grid at 2000 nodes/km² — the same world the unit tests
/// and `trace_schedule` exercise, small enough to schedule in milliseconds.
fn paper_instance(seed: u64) -> ScenarioInstance {
    PaperScenario::grid(2_000.0)
        .with_node_count(16)
        .instantiate(seed)
}

/// Run `work` with the sink installed and hand back its output together
/// with everything the instrumentation saw.
fn observed<T>(work: impl FnOnce() -> T) -> (T, obs::ObsReport) {
    assert!(
        !obs::is_installed(),
        "tests must not leak an installed sink"
    );
    obs::install();
    let out = work();
    let report = obs::uninstall().expect("the sink was installed above");
    (out, report)
}

/// Every rendering of two reports must match byte-for-byte: the structured
/// snapshot (PartialEq), the Debug renderings, the JSONL trace export and
/// the snapshot JSON.
fn assert_byte_identical(a: &obs::ObsReport, b: &obs::ObsReport) {
    assert_eq!(a.snapshot, b.snapshot, "metrics snapshots diverged");
    assert_eq!(a, b, "trace rings or drop counts diverged");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "Debug renderings diverged"
    );
    assert_eq!(a.trace_jsonl(), b.trace_jsonl(), "JSONL exports diverged");
    assert_eq!(
        a.snapshot.to_json(),
        b.snapshot.to_json(),
        "snapshot JSON diverged"
    );
}

#[test]
fn greedy_tracing_is_deterministic() {
    let instance = paper_instance(7);
    let (schedule_a, report_a) = observed(|| instance.run_centralized());
    let (schedule_b, report_b) = observed(|| instance.run_centralized());
    assert_eq!(
        schedule_a, schedule_b,
        "the schedule itself is deterministic"
    );
    assert_byte_identical(&report_a, &report_b);
    // The run must actually have been instrumented, or the comparison above
    // proves nothing.
    assert!(report_a.snapshot.counter("greedy.links") > 0);
    assert!(!report_a.trace.is_empty());
    assert_eq!(
        report_a.dropped_events, 0,
        "the default ring holds this run"
    );
}

#[test]
fn fdd_tracing_is_deterministic() {
    let instance = paper_instance(11);
    let (run_a, report_a) = observed(|| instance.run_protocol(ProtocolKind::Fdd));
    let (run_b, report_b) = observed(|| instance.run_protocol(ProtocolKind::Fdd));
    assert_eq!(run_a.schedule, run_b.schedule);
    assert_eq!(run_a.stats, run_b.stats);
    assert_byte_identical(&report_a, &report_b);
    assert!(!report_a.snapshot.counters.is_empty());
}

#[test]
fn churn_tracing_is_deterministic() {
    let instance = paper_instance(3);
    let experiment = RecoveryExperiment::from_instance(&instance);
    let f0 = experiment.initial_frame_slots(0.7);
    let trace = FaultPlan::new()
        .link_down(experiment.failed_link(), 5 * f0)
        .build();
    let run = || {
        experiment
            .harness(0.7)
            .run(&trace, 20 * f0, 3)
            .expect("the churn run completes")
    };
    let (resilience_a, report_a) = observed(run);
    let (resilience_b, report_b) = observed(run);
    assert_eq!(resilience_a, resilience_b, "resilience reports diverged");
    assert_byte_identical(&report_a, &report_b);
    assert!(
        report_a.snapshot.counter("resilience.epochs") > 0
            || !report_a.snapshot.counters.is_empty(),
        "the churn run must emit into the sink"
    );
}

/// With no sink installed, emission is a no-op: the schedules and reports
/// produced are byte-identical to the instrumented ones, so observability
/// can never change a verdict.
#[test]
fn a_disabled_sink_changes_nothing() {
    let instance = paper_instance(7);

    assert!(!obs::is_installed());
    let plain_schedule = instance.run_centralized();
    let (traced_schedule, _) = observed(|| instance.run_centralized());
    assert_eq!(plain_schedule, traced_schedule);
    assert_eq!(
        format!("{plain_schedule:?}"),
        format!("{traced_schedule:?}"),
        "Debug renderings diverged"
    );

    let experiment = RecoveryExperiment::from_instance(&instance);
    let f0 = experiment.initial_frame_slots(0.7);
    let trace = FaultPlan::new()
        .link_down(experiment.failed_link(), 5 * f0)
        .build();
    let run = || {
        experiment
            .harness(0.7)
            .run(&trace, 20 * f0, 7)
            .expect("the churn run completes")
    };
    assert!(!obs::is_installed());
    let plain_report = run();
    let (traced_report, _) = observed(run);
    assert_eq!(plain_report, traced_report);
    assert_eq!(
        format!("{plain_report:?}"),
        format!("{traced_report:?}"),
        "Debug renderings diverged"
    );
}

/// A zero-capacity ring keeps the registry but retains no events: same
/// snapshot as a full-capacity run, empty trace, every event counted as
/// dropped — the O(1)-memory mode `bench_summary` profiles with.
#[test]
fn a_zero_capacity_ring_drops_events_but_keeps_the_registry() {
    let instance = paper_instance(7);

    let (_, full) = observed(|| instance.run_centralized());

    assert!(!obs::is_installed());
    obs::install_with_capacity(0);
    let schedule = instance.run_centralized();
    let lean = obs::uninstall().expect("the sink was installed above");

    assert_eq!(schedule, instance.run_centralized());
    assert_eq!(
        full.snapshot, lean.snapshot,
        "the registry is ring-independent"
    );
    assert!(lean.trace.is_empty(), "capacity 0 retains nothing");
    assert_eq!(
        lean.dropped_events,
        full.trace.len() as u64 + full.dropped_events,
        "every event the full ring saw is counted as dropped"
    );
}
