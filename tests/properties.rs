//! Property-based tests (proptest) over the workspace's core invariants:
//! geometry, graphs, routing, demand aggregation, SINR monotonicity,
//! scheduling feasibility and the FDD/GreedyPhysical equivalence.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use scream::prelude::*;
use scream::scheduling::{verify_slots_feasible, EdgeOrdering};

/// Strategy: a connected-ish random deployment description (node count,
/// region side and seed). Connectivity is ensured by retry inside the tests.
fn small_instance() -> impl Strategy<Value = (usize, u64)> {
    (6usize..=20, 0u64..5000)
}

fn build_connected(nodes: usize, seed: u64) -> Option<(RadioEnvironment, LinkDemands)> {
    build_connected_on_channels(nodes, seed, 1)
}

/// Like [`build_connected`], but with `channel_count` orthogonal channels in
/// the radio configuration. The deployment draw depends only on `(nodes,
/// seed)`, so the instances for different channel counts share the same
/// gains and demands.
fn build_connected_on_channels(
    nodes: usize,
    seed: u64,
    channel_count: usize,
) -> Option<(RadioEnvironment, LinkDemands)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Area scaled so the density stays in a regime where connectivity is
    // plausible with 20 dBm radios (~215 m range).
    let side = 120.0 * (nodes as f64).sqrt();
    let deployment = UniformDeployment::new(nodes, side)
        .build_connected(&mut rng, 200.0, 50)
        .ok()?;
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .config(scream::netsim::RadioConfig::mesh_default().with_channel_count(channel_count))
        .build(&deployment);
    let graph = env.communication_graph();
    if !graph.is_connected() {
        return None;
    }
    let gateways = vec![deployment.corner_nodes()[0]];
    let forest = RoutingForest::shortest_path(&graph, &gateways, seed).ok()?;
    let demands = DemandVector::generate(nodes, DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).ok()?;
    Some((env, link_demands))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The centralized greedy schedule always satisfies every demand with
    /// feasible slots and never exceeds the serialized length.
    #[test]
    fn greedy_physical_schedules_are_always_valid((nodes, seed) in small_instance()) {
        if let Some((env, link_demands)) = build_connected(nodes, seed) {
            let schedule = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
            prop_assert!(verify_schedule(&env, &schedule, &link_demands).is_ok());
            prop_assert!(schedule.length() as u64 <= link_demands.total_demand());
        }
    }

    /// FDD equals GreedyPhysical (Theorem 4) on arbitrary connected instances.
    #[test]
    fn fdd_matches_greedy_physical((nodes, seed) in small_instance()) {
        if let Some((env, link_demands)) = build_connected(nodes, seed) {
            let centralized = GreedyPhysical::new(EdgeOrdering::DecreasingHeadId)
                .schedule(&env, &link_demands);
            let config = ProtocolConfig::paper_default()
                .with_scream_slots(env.interference_diameter().max(1))
                .with_seed(seed);
            let run = DistributedScheduler::fdd()
                .with_config(config)
                .run(&env, &link_demands)
                .expect("FDD completes on connected instances");
            prop_assert_eq!(run.schedule, centralized);
        }
    }

    /// PDD schedules are always valid and never beat FDD's slot count by more
    /// than the randomness can explain (they can never be shorter than the
    /// maximum per-link demand).
    #[test]
    fn pdd_schedules_are_always_valid(
        (nodes, seed) in small_instance(),
        p in 0.1f64..=1.0,
    ) {
        if let Some((env, link_demands)) = build_connected(nodes, seed) {
            let config = ProtocolConfig::paper_default()
                .with_scream_slots(env.interference_diameter().max(1))
                .with_seed(seed);
            let run = DistributedScheduler::pdd(p)
            .expect("PDD activation probability is in (0, 1]")
                .with_config(config)
                .run(&env, &link_demands)
                .expect("PDD completes on connected instances");
            prop_assert!(verify_schedule(&env, &run.schedule, &link_demands).is_ok());
            let max_demand = link_demands
                .demanded_links()
                .map(|(_, d)| d)
                .max()
                .unwrap_or(0);
            prop_assert!(run.schedule.length() as u64 >= max_demand);
            prop_assert!(run.schedule.length() as u64 <= link_demands.total_demand());
        }
    }

    /// Adding an interferer can only lower the SINR, and removing all
    /// interference recovers the plain SNR.
    #[test]
    fn sinr_is_monotone_in_the_interferer_set(
        positions in prop::collection::vec((0.0f64..2000.0, 0.0f64..2000.0), 3..12),
    ) {
        let points: Vec<Point2> = positions.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        // Distinct positions only (duplicates make gain = reference gain, fine,
        // but keep the instance meaningful).
        let deployment = Deployment::from_positions(&points, 20.0, Rect::square(2000.0)).unwrap();
        let env = RadioEnvironment::builder().build(&deployment);
        let tx = NodeId::new(0);
        let rx = NodeId::new(1);
        let all: Vec<NodeId> = (2..points.len() as u32).map(NodeId::new).collect();
        let mut previous = env.sinr_linear(tx, rx, &[]);
        prop_assert!((previous - env.received_power_mw(tx, rx) / env.config().noise_floor_mw()).abs()
            <= previous * 1e-9);
        for k in 0..=all.len() {
            let current = env.sinr_linear(tx, rx, &all[..k]);
            prop_assert!(current <= previous + previous * 1e-12);
            previous = current;
        }
    }

    /// Demand aggregation conserves flow: the demand entering the gateways
    /// equals the total generated demand, and every edge carries exactly its
    /// subtree's demand.
    #[test]
    fn demand_aggregation_conserves_flow((nodes, seed) in small_instance()) {
        if let Some((_env, _)) = build_connected(nodes, seed) {
            // Rebuild explicitly to access forest internals.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let side = 120.0 * (nodes as f64).sqrt();
            if let Ok(deployment) = UniformDeployment::new(nodes, side)
                .build_connected(&mut rng, 200.0, 50) {
                let graph = UnitDiskGraphBuilder::new(200.0).build(&deployment);
                let gateways = vec![deployment.corner_nodes()[0]];
                let forest = RoutingForest::shortest_path(&graph, &gateways, seed).unwrap();
                let demands = DemandVector::generate(nodes, DemandConfig::PAPER, &gateways, &mut rng);
                let agg = LinkDemands::aggregate(&forest, &demands).unwrap();
                let inflow: u64 = agg
                    .demanded_links()
                    .filter(|(l, _)| gateways.contains(&l.tail))
                    .map(|(_, d)| d)
                    .sum();
                prop_assert_eq!(inflow, demands.total());
                for v in (0..nodes as u32).map(NodeId::new) {
                    if forest.is_gateway(v) { continue; }
                    let children_sum: u64 = forest
                        .children(v)
                        .iter()
                        .map(|&c| agg.demand_of(c))
                        .sum();
                    prop_assert_eq!(agg.demand_of(v), demands.demand(v) as u64 + children_sum);
                }
            }
        }
    }

    /// Routing forests always route towards a gateway with strictly
    /// decreasing depth, and every non-gateway node owns exactly one link.
    #[test]
    fn routing_forest_invariants((nodes, seed) in small_instance()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let side = 120.0 * (nodes as f64).sqrt();
        if let Ok(deployment) = UniformDeployment::new(nodes, side)
            .build_connected(&mut rng, 200.0, 50)
        {
            let graph = UnitDiskGraphBuilder::new(200.0).build(&deployment);
            let gateways = vec![deployment.corner_nodes()[0]];
            let forest = RoutingForest::shortest_path(&graph, &gateways, seed).unwrap();
            let dist = graph.bfs_distances(gateways[0]);
            let mut owned_links = 0;
            for v in (0..nodes as u32).map(NodeId::new) {
                prop_assert_eq!(forest.depth(v), dist[v.index()]);
                match forest.parent(v) {
                    None => prop_assert!(forest.is_gateway(v)),
                    Some(p) => {
                        prop_assert!(graph.has_edge(v, p));
                        prop_assert_eq!(forest.depth(p) + 1, forest.depth(v));
                        owned_links += 1;
                    }
                }
            }
            prop_assert_eq!(owned_links, nodes - gateways.len());
        }
    }

    /// The serialized baseline always has zero improvement and any valid
    /// schedule's improvement is in [0, 100).
    #[test]
    fn improvement_metric_is_bounded((nodes, seed) in small_instance()) {
        if let Some((env, link_demands)) = build_connected(nodes, seed) {
            let serialized = serialized_schedule(&link_demands);
            let m0 = ScheduleMetrics::compute(&serialized, &link_demands);
            prop_assert!(m0.improvement_over_linear_pct.abs() < 1e-9);
            let greedy = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
            let m1 = ScheduleMetrics::compute(&greedy, &link_demands);
            prop_assert!(m1.improvement_over_linear_pct >= 0.0);
            prop_assert!(m1.improvement_over_linear_pct < 100.0);
        }
    }

    /// SimTime arithmetic respects unit conversions for arbitrary values.
    #[test]
    fn simtime_roundtrips(us in 0u64..10_000_000) {
        let t = SimTime::from_micros(us);
        prop_assert_eq!(t.as_micros(), us);
        prop_assert!((t.as_secs_f64() - us as f64 / 1e6).abs() < 1e-9);
        prop_assert_eq!(SimTime::from_nanos(t.as_nanos()), t);
    }

    /// The interference ledger's incremental `can_add`/`slot_feasible` agree
    /// with the from-scratch SINR computation on randomized environments
    /// (uniform placements, random shadowing) and randomized link sequences,
    /// including self-links and endpoint-sharing candidates.
    #[test]
    fn ledger_matches_from_scratch_feasibility(
        (nodes, seed) in (8usize..=24, 0u64..5000),
        sigma_db in 0.0f64..8.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let side = 150.0 * (nodes as f64).sqrt();
        let deployment = UniformDeployment::new(nodes, side).build(&mut rng);
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .shadowing(sigma_db, seed)
            .build(&deployment);

        let mut ledger = env.open_slot_ledger();
        let mut assigned: Vec<Link> = Vec::new();
        for _ in 0..16 {
            let candidate = Link::new(
                NodeId::new(rng.gen_range(0..nodes as u32)),
                NodeId::new(rng.gen_range(0..nodes as u32)),
            );
            prop_assert_eq!(
                ledger.can_add(candidate),
                env.can_add_to_slot(&assigned, candidate),
                "can_add diverged for {} on {:?}",
                candidate,
                assigned
            );
            if ledger.can_add(candidate) {
                ledger.assign(candidate);
                assigned.push(candidate);
            }
            prop_assert_eq!(ledger.slot_feasible(), env.slot_feasible(&assigned));
        }
    }

    /// Batched run-level placement is decision-for-decision identical to the
    /// seed's per-unit first-fit loop on randomized instances — arbitrary
    /// density (via the region side), seed, SINR threshold β and every edge
    /// ordering. This is the equivalence gate of the heavy-demand fast path.
    #[test]
    fn batched_placement_matches_per_unit(
        (nodes, seed) in (6usize..=18, 0u64..5000),
        side_scale in 90.0f64..220.0,
        beta_db in 4.0f64..12.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let side = side_scale * (nodes as f64).sqrt();
        let deployment = UniformDeployment::new(nodes, side).build(&mut rng);
        let env_builder = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0));
        let env = env_builder
            .config(scream::netsim::RadioConfig::mesh_default().with_sinr_threshold_db(beta_db))
            .build(&deployment);
        // Random demanded links with demands spanning several magnitudes.
        let links: Vec<(Link, u64)> = (0..nodes as u32 / 2)
            .map(|i| {
                (
                    Link::new(NodeId::new(2 * i + 1), NodeId::new(2 * i)),
                    rng.gen_range(1u64..200),
                )
            })
            .collect();
        let demands = LinkDemands::from_links(nodes, &links).unwrap();
        for ordering in [
            EdgeOrdering::DecreasingHeadId,
            EdgeOrdering::IncreasingHeadId,
            EdgeOrdering::DecreasingDemand,
            EdgeOrdering::IncreasingDemand,
        ] {
            let batched = GreedyPhysical::new(ordering).schedule(&env, &demands);
            let per_unit = GreedyPhysical::new(ordering).schedule_per_unit(&env, &demands);
            prop_assert_eq!(
                &batched,
                &per_unit,
                "batched != per-unit for ordering {:?}, beta {} dB",
                ordering,
                beta_db
            );
            prop_assert_eq!(
                verify_schedule(&env, &batched, &demands).is_ok(),
                verify_schedule(&env, &per_unit, &demands).is_ok()
            );
        }
    }

    /// Run-length schedules round-trip through the expanded per-slot form:
    /// compacting the expansion reproduces the schedule exactly (including
    /// canonical merging), per-slot accessors agree with the expansion, and
    /// the run-aware verifier agrees with a naive slot-by-slot feasibility
    /// check on the expanded form.
    #[test]
    fn run_length_schedule_roundtrips(
        seed in 0u64..5000,
        runs in prop::collection::vec((0usize..6usize, 1u64..50), 1..12),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let side = 150.0 * 4.0;
        let deployment = UniformDeployment::new(12, side).build(&mut rng);
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&deployment);
        // A pool of patterns over 12 nodes: some feasible, some conflicting.
        let pool: [Vec<Link>; 6] = [
            vec![],
            vec![Link::new(NodeId::new(1), NodeId::new(0))],
            vec![Link::new(NodeId::new(3), NodeId::new(2))],
            vec![
                Link::new(NodeId::new(1), NodeId::new(0)),
                Link::new(NodeId::new(3), NodeId::new(2)),
            ],
            vec![
                Link::new(NodeId::new(1), NodeId::new(0)),
                Link::new(NodeId::new(2), NodeId::new(1)),
            ],
            vec![Link::new(NodeId::new(5), NodeId::new(4))],
        ];
        let schedule = Schedule::from_runs(
            runs.iter().map(|&(p, count)| (pool[p].clone(), count)),
        );

        // Round-trip: expand ≡ compact.
        let expanded = schedule.expand();
        prop_assert_eq!(expanded.len(), schedule.length());
        prop_assert_eq!(&Schedule::from_slots(expanded.clone()), &schedule);
        // Per-slot accessors agree with the expansion.
        for (t, slot) in expanded.iter().enumerate().take(20) {
            prop_assert_eq!(schedule.slot(t).links(), slot.as_slice());
        }
        // The run-aware verifier agrees with a naive per-slot check.
        let naive_feasible = expanded
            .iter()
            .all(|slot| slot.is_empty() || env.slot_feasible(slot));
        prop_assert_eq!(
            verify_slots_feasible(&env, &schedule).is_ok(),
            naive_feasible
        );
        // Allocation counts agree with counting over expanded slots.
        for (&link, &count) in schedule.allocation_counts().iter() {
            let expanded_count = expanded.iter().filter(|s| s.contains(&link)).count() as u64;
            prop_assert_eq!(count, expanded_count);
        }
    }

    /// The `C = 1` reduction: the multi-channel GreedyPhysical run with one
    /// channel (the default `RadioConfig`, stated explicitly here) produces a
    /// schedule identical to the single-channel per-unit baseline on random
    /// instances — same runs, same length, same metrics, same verifier
    /// verdict — and every pattern it emits carries no channel tags at all.
    #[test]
    fn single_channel_reduction_matches_per_unit(
        (nodes, seed) in (6usize..=18, 0u64..5000),
        side_scale in 90.0f64..220.0,
        beta_db in 4.0f64..12.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc4a1);
        let side = side_scale * (nodes as f64).sqrt();
        let deployment = UniformDeployment::new(nodes, side).build(&mut rng);
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(
                scream::netsim::RadioConfig::mesh_default()
                    .with_sinr_threshold_db(beta_db)
                    .with_channel_count(1),
            )
            .build(&deployment);
        let links: Vec<(Link, u64)> = (0..nodes as u32 / 2)
            .map(|i| {
                (
                    Link::new(NodeId::new(2 * i + 1), NodeId::new(2 * i)),
                    rng.gen_range(1u64..120),
                )
            })
            .collect();
        let demands = LinkDemands::from_links(nodes, &links).unwrap();
        let multi_channel_at_one = GreedyPhysical::paper_baseline().schedule(&env, &demands);
        let per_unit = GreedyPhysical::paper_baseline().schedule_per_unit(&env, &demands);
        prop_assert_eq!(&multi_channel_at_one, &per_unit);
        prop_assert_eq!(multi_channel_at_one.length(), per_unit.length());
        prop_assert_eq!(
            multi_channel_at_one.pattern_count(),
            per_unit.pattern_count()
        );
        prop_assert_eq!(
            ScheduleMetrics::compute(&multi_channel_at_one, &demands),
            ScheduleMetrics::compute(&per_unit, &demands)
        );
        prop_assert_eq!(
            verify_schedule(&env, &multi_channel_at_one, &demands).is_ok(),
            verify_schedule(&env, &per_unit, &demands).is_ok()
        );
        prop_assert!(multi_channel_at_one
            .runs()
            .all(|(p, _)| p.is_single_channel()));
    }

    /// Multi-channel schedules on random connected instances always verify
    /// (per-channel SINR, channel range and the cross-channel half-duplex
    /// rule), never use more channels than configured, and are never longer
    /// than the single-channel schedule on the same instance.
    #[test]
    fn multi_channel_schedules_verify_and_never_lengthen(
        (nodes, seed) in small_instance(),
        channels in 2usize..=4,
    ) {
        if let (Some((env, link_demands)), Some((multi_env, multi_demands))) = (
            build_connected(nodes, seed),
            build_connected_on_channels(nodes, seed, channels),
        ) {
            prop_assert_eq!(&link_demands, &multi_demands);
            let single = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
            let multi = GreedyPhysical::paper_baseline().schedule(&multi_env, &link_demands);
            prop_assert!(verify_schedule(&multi_env, &multi, &link_demands).is_ok());
            prop_assert!(multi.length() <= single.length());
            prop_assert!(multi.channels_used() <= channels);
            prop_assert!(multi
                .runs()
                .all(|(p, _)| p.node_on_multiple_channels().is_none()));
        }
    }

    /// The channel-aware Theorem 4: on random connected instances with
    /// C ∈ {1, 2, 4} orthogonal channels, the channel-aware FDD runtime
    /// recreates the channel-aware GreedyPhysical schedule exactly (channel
    /// tags included) — same schedule, same metrics, same verifier verdict.
    #[test]
    fn channel_aware_fdd_matches_channel_aware_greedy(
        (nodes, seed) in small_instance(),
        channels in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        if let Some((env, link_demands)) = build_connected_on_channels(nodes, seed, channels) {
            let centralized = GreedyPhysical::new(EdgeOrdering::DecreasingHeadId)
                .schedule(&env, &link_demands);
            let config = ProtocolConfig::paper_default()
                .with_scream_slots(env.interference_diameter().max(1))
                .with_seed(seed);
            let run = DistributedScheduler::fdd()
                .with_config(config)
                .run(&env, &link_demands)
                .expect("channel-aware FDD completes on connected instances");
            prop_assert_eq!(&run.schedule, &centralized);
            prop_assert_eq!(
                ScheduleMetrics::compute(&run.schedule, &link_demands),
                ScheduleMetrics::compute(&centralized, &link_demands)
            );
            prop_assert_eq!(
                verify_schedule(&env, &run.schedule, &link_demands).is_ok(),
                verify_schedule(&env, &centralized, &link_demands).is_ok()
            );
            prop_assert!(verify_schedule(&env, &run.schedule, &link_demands).is_ok());
            prop_assert!(run.schedule.channels_used() <= channels);
        }
    }

    /// The C = 1 runtime reduction is exact: on single-channel environments
    /// the channel-aware runtime reproduces the retained pre-channel baseline
    /// byte for byte — schedule, `ProtocolTiming` and `RunStats` — for the
    /// deterministic protocols and for randomized PDD under a shared seed.
    #[test]
    fn single_channel_runtime_reduction_is_exact(
        (nodes, seed) in small_instance(),
        p in 0.2f64..=1.0,
    ) {
        if let Some((env, link_demands)) = build_connected(nodes, seed) {
            let config = ProtocolConfig::paper_default()
                .with_scream_slots(env.interference_diameter().max(1))
                .with_seed(seed);
            for scheduler in [
                DistributedScheduler::fdd(),
                DistributedScheduler::afdd(),
                DistributedScheduler::pdd(p).expect("p is in (0, 1]"),
            ] {
                let generic = scheduler
                    .with_config(config)
                    .run(&env, &link_demands)
                    .expect("the channel-aware runtime completes");
                let baseline = scheduler
                    .with_config(config)
                    .run_single_channel(&env, &link_demands)
                    .expect("the baseline runtime completes");
                prop_assert_eq!(&generic.schedule, &baseline.schedule);
                prop_assert_eq!(generic.timing, baseline.timing);
                prop_assert_eq!(generic.stats, baseline.stats);
                prop_assert_eq!(generic, baseline);
            }
        }
    }

    /// The ledger's batched runtime probe agrees with per-participant
    /// `handshake_ok` even when links share endpoints (where the SINR
    /// interferer-exclusion rules apply), and force-assigned sets report the
    /// same per-link handshake health as the from-scratch computation.
    #[test]
    fn ledger_probe_matches_handshake_ok(
        (nodes, seed) in (8usize..=20, 0u64..5000),
        sigma_db in 0.0f64..6.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xa5a5);
        let side = 140.0 * (nodes as f64).sqrt();
        let deployment = UniformDeployment::new(nodes, side).build(&mut rng);
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .shadowing(sigma_db, seed)
            .build(&deployment);

        // Random links, *not* filtered for feasibility or disjointness:
        // force-assign some, probe with the rest.
        let draw_link = |rng: &mut ChaCha8Rng| {
            let head = rng.gen_range(0..nodes as u32);
            let tail = (head + 1 + rng.gen_range(0..nodes as u32 - 1)) % nodes as u32;
            Link::new(NodeId::new(head), NodeId::new(tail))
        };
        let assigned: Vec<Link> = (0..4).map(|_| draw_link(&mut rng)).collect();
        let mut tentative: Vec<Link> = (0..3).map(|_| draw_link(&mut rng)).collect();
        tentative.dedup();

        let ledger = SlotLedger::with_links(&env, &assigned);
        let participants: Vec<Link> = assigned
            .iter()
            .chain(tentative.iter())
            .copied()
            .collect();
        let probe = ledger.probe(&tentative);
        prop_assert_eq!(
            probe.existing_ok,
            assigned.iter().all(|&l| env.handshake_ok(l, &participants))
        );
        for (i, &t) in tentative.iter().enumerate() {
            prop_assert_eq!(
                probe.tentative_ok[i],
                env.handshake_ok(t, &participants),
                "probe diverged for tentative {} among {:?} + {:?}",
                t,
                assigned,
                tentative
            );
        }
        // Slot health of the force-assigned set alone.
        prop_assert_eq!(
            ledger.all_links_ok(),
            assigned.iter().all(|&l| env.handshake_ok(l, &assigned))
        );
    }

    /// The spatially-pruned ledger is decision-for-decision identical to the
    /// exact ledger — `can_add` verdicts, accumulated links, margins, probes
    /// and slot feasibility — on random instances across β, shadowing and
    /// channel counts. Pruning is forced (the instances are smaller than the
    /// far-field cutoff disc, where the default constructor would skip the
    /// index), so every conservative screen is exercised against its exact
    /// fallback.
    #[test]
    fn pruned_ledger_matches_exact_ledger(
        (nodes, seed) in (8usize..=24, 0u64..5000),
        sigma_db in 0.0f64..8.0,
        beta_db in 4.0f64..12.0,
        channel_count in 1usize..=3,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9d2e);
        let side = 150.0 * (nodes as f64).sqrt();
        let deployment = UniformDeployment::new(nodes, side).build(&mut rng);
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .shadowing(sigma_db, seed)
            .config(
                scream::netsim::RadioConfig::mesh_default()
                    .with_sinr_threshold_db(beta_db)
                    .with_channel_count(channel_count),
            )
            .build(&deployment);
        let draw_link = |rng: &mut ChaCha8Rng| {
            let head = rng.gen_range(0..nodes as u32);
            let tail = (head + 1 + rng.gen_range(0..nodes as u32 - 1)) % nodes as u32;
            Link::new(NodeId::new(head), NodeId::new(tail))
        };

        let mut pruned = SlotLedger::pruned(&env);
        let mut exact = SlotLedger::exact(&env);
        prop_assert!(pruned.is_pruned());
        for _ in 0..24 {
            let candidate = draw_link(&mut rng);
            let verdict = pruned.can_add(candidate);
            prop_assert_eq!(
                verdict,
                exact.can_add(candidate),
                "can_add diverged for {} with beta {} dB, sigma {} dB",
                candidate,
                beta_db,
                sigma_db
            );
            if verdict {
                pruned.assign(candidate);
                exact.assign(candidate);
            }
        }
        // Assign stays exact in both, so the accumulated state is bitwise
        // identical — margins, probes and feasibility included.
        prop_assert_eq!(pruned.links(), exact.links());
        prop_assert_eq!(pruned.margins(), exact.margins());
        prop_assert_eq!(pruned.slot_feasible(), exact.slot_feasible());
        let tentative: Vec<Link> = (0..3).map(|_| draw_link(&mut rng)).collect();
        prop_assert_eq!(pruned.probe(&tentative), exact.probe(&tentative));

        // The channel-set wrapper inherits the equivalence on every channel.
        let mut pruned_set = ChannelSlotLedger::pruned(&env, channel_count);
        let mut exact_set = ChannelSlotLedger::exact(&env, channel_count);
        for i in 0..24 {
            let candidate = draw_link(&mut rng);
            let channel = ChannelId::new((i % channel_count) as u16);
            let verdict = pruned_set.can_add(channel, candidate);
            prop_assert_eq!(verdict, exact_set.can_add(channel, candidate));
            if verdict {
                pruned_set.assign(channel, candidate);
                exact_set.assign(channel, candidate);
            }
        }
        let claims: Vec<Link> = (0..3).map(|_| draw_link(&mut rng)).collect();
        prop_assert_eq!(pruned_set.probe_claims(&claims), exact_set.probe_claims(&claims));
    }

    /// Greedy schedules are byte-identical whether feasibility runs through
    /// the default (spatially pruned) environment accumulators or through
    /// [`ExactPhysical`]'s pruning-disabled ledgers — the schedule-level
    /// guarantee behind the committed pruned-vs-exact scale benchmark.
    #[test]
    fn greedy_schedules_do_not_depend_on_pruning((nodes, seed) in small_instance()) {
        if let Some((env, link_demands)) = build_connected(nodes, seed) {
            let pruned = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
            let exact = GreedyPhysical::paper_baseline()
                .schedule(&ExactPhysical(&env), &link_demands);
            prop_assert_eq!(pruned, exact);
        }
    }

    /// Fault injection is reproducible end to end: the same `ChurnConfig`
    /// and seed draw a byte-identical `ChurnTrace`, and replaying that trace
    /// through two fresh `ResilienceHarness` runs under the same run seed
    /// yields byte-identical `ResilienceReport`s — structural equality *and*
    /// the rendered `Debug` form, so no hidden field can drift.
    #[test]
    fn churn_traces_and_resilience_reports_are_seed_deterministic(
        churn_seed in 0u64..5000,
        run_seed in 0u64..5000,
        rho in 0.5f64..0.8,
    ) {
        let deployment = GridDeployment::new(4, 4, 200.0).build();
        let env = RadioEnvironment::builder().build(&deployment);
        let gateways = deployment.corner_nodes();
        let demands = DemandVector::from_vec(
            (0..deployment.len() as u32)
                .map(|i| u32::from(!gateways.contains(&NodeId::new(i))))
                .collect(),
        );
        let graph = env.communication_graph();
        let links: Vec<Link> = graph.edges().map(|(u, v)| Link::new(u, v)).collect();
        let nodes: Vec<NodeId> = (0..deployment.len() as u32)
            .map(NodeId::new)
            .filter(|v| !gateways.contains(v))
            .collect();
        let config = ChurnConfig {
            horizon_slots: 600,
            link_failures: 2,
            node_failures: 1,
            flow_churns: 1,
            fades: 1,
            mean_outage_slots: 60.0,
            fade_sigma_db: 2.0,
        };
        let draw = || {
            FaultPlan::new()
                .random_churn(config, &links, &nodes, churn_seed)
                .build()
        };
        let (trace_a, trace_b) = (draw(), draw());
        prop_assert_eq!(&trace_a, &trace_b);
        prop_assert_eq!(format!("{trace_a:?}"), format!("{trace_b:?}"));

        let run = |trace: &ChurnTrace| {
            ResilienceHarness::new(env.clone(), gateways.clone(), demands.clone(), rho)
                .run(trace, 600, run_seed)
                .expect("the grid world offers traffic over a positive horizon")
        };
        let (report_a, report_b) = (run(&trace_a), run(&trace_b));
        prop_assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));
        prop_assert_eq!(report_a, report_b);
    }

    /// Insertion-order independence of the fault pipeline (the D1 invariant
    /// from the *input* side): a hand-placed `FaultPlan` whose events are
    /// inserted in a shuffled order builds a byte-identical `ChurnTrace`,
    /// and replaying it yields a byte-identical `ResilienceReport`. Events
    /// use distinct slots because same-slot ties are defined to keep the
    /// listed order (stable sort).
    #[test]
    fn churn_traces_ignore_event_insertion_order(
        shuffle_seed in 0u64..5000,
        run_seed in 0u64..5000,
    ) {
        let deployment = GridDeployment::new(4, 4, 200.0).build();
        let env = RadioEnvironment::builder().build(&deployment);
        let gateways = deployment.corner_nodes();
        let demands = DemandVector::from_vec(
            (0..deployment.len() as u32)
                .map(|i| u32::from(!gateways.contains(&NodeId::new(i))))
                .collect(),
        );
        let graph = env.communication_graph();
        let links: Vec<Link> = graph.edges().map(|(u, v)| Link::new(u, v)).collect();
        let victim_node = NodeId::new(5);
        let churn_node = NodeId::new(6);
        let events: Vec<(u64, FaultKind)> = vec![
            (100, FaultKind::LinkDown(links[0])),
            (160, FaultKind::NodeDown(victim_node)),
            (220, FaultKind::FlowStop(churn_node)),
            (260, FaultKind::Fade { sigma_db: 3.0, seed: 17 }),
            (300, FaultKind::LinkUp(links[0])),
            (360, FaultKind::NodeUp(victim_node)),
            (420, FaultKind::FlowStart(churn_node)),
        ];
        let mut shuffled = events.clone();
        shuffled.shuffle(&mut ChaCha8Rng::seed_from_u64(shuffle_seed));
        let build = |order: &[(u64, FaultKind)]| {
            order
                .iter()
                .fold(FaultPlan::new(), |plan, &(slot, kind)| plan.at(slot, kind))
                .build()
        };
        let (trace_a, trace_b) = (build(&events), build(&shuffled));
        prop_assert_eq!(&trace_a, &trace_b);
        prop_assert_eq!(format!("{trace_a:?}"), format!("{trace_b:?}"));

        let run = |trace: &ChurnTrace| {
            ResilienceHarness::new(env.clone(), gateways.clone(), demands.clone(), 0.6)
                .run(trace, 600, run_seed)
                .expect("the grid world offers traffic over a positive horizon")
        };
        let (report_a, report_b) = (run(&trace_a), run(&trace_b));
        prop_assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));
        prop_assert_eq!(report_a, report_b);
    }

    /// Insertion-order independence of scheduling: shuffling the link list
    /// fed to `LinkDemands::from_links` changes neither the greedy schedule
    /// (every `EdgeOrdering`, made total here by distinct heads and distinct
    /// demands) nor the repaired schedule toward a shifted target.
    #[test]
    fn greedy_and_repair_ignore_demand_insertion_order(
        (nodes, seed) in (8usize..=18, 0u64..5000),
        shuffle_seed in 0u64..5000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0bad);
        let side = 140.0 * (nodes as f64).sqrt();
        let deployment = UniformDeployment::new(nodes, side).build(&mut rng);
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&deployment);
        // Unique heads and pairwise-distinct demands: every ordering
        // criterion is a total order, so identical schedules are byte
        // reproducible regardless of the input permutation.
        let links: Vec<(Link, u64)> = (0..nodes as u32 / 2)
            .map(|i| {
                (
                    Link::new(NodeId::new(2 * i + 1), NodeId::new(2 * i)),
                    10 + 7 * i as u64,
                )
            })
            .collect();
        let mut shuffled = links.clone();
        shuffled.shuffle(&mut ChaCha8Rng::seed_from_u64(shuffle_seed));
        let demands_a = LinkDemands::from_links(nodes, &links).unwrap();
        let demands_b = LinkDemands::from_links(nodes, &shuffled).unwrap();
        for ordering in [
            EdgeOrdering::DecreasingHeadId,
            EdgeOrdering::IncreasingHeadId,
            EdgeOrdering::DecreasingDemand,
            EdgeOrdering::IncreasingDemand,
        ] {
            let a = GreedyPhysical::new(ordering).schedule(&env, &demands_a);
            let b = GreedyPhysical::new(ordering).schedule(&env, &demands_b);
            prop_assert_eq!(&a, &b, "greedy diverged under ordering {:?}", ordering);
        }
        // Repair toward a shifted target (demands scaled, one link dropped)
        // built from both permutations of the same target list.
        let schedule = GreedyPhysical::paper_baseline().schedule(&env, &demands_a);
        let target_links: Vec<(Link, u64)> = links
            .iter()
            .skip(1)
            .map(|&(l, d)| (l, d * 2 - 5))
            .collect();
        let mut target_shuffled = target_links.clone();
        target_shuffled.shuffle(&mut ChaCha8Rng::seed_from_u64(shuffle_seed ^ 0xfee1));
        let target_a = LinkDemands::from_links(nodes, &target_links).unwrap();
        let target_b = LinkDemands::from_links(nodes, &target_shuffled).unwrap();
        let repaired_a = repair_schedule(&env, &schedule, &target_a);
        let repaired_b = repair_schedule(&env, &schedule, &target_b);
        prop_assert_eq!(&repaired_a.schedule, &repaired_b.schedule);
        prop_assert_eq!(repaired_a.outcome, repaired_b.outcome);
    }

    /// Insertion-order independence of the traffic engine: single-hop flows
    /// on disjoint links with deterministic arrivals produce the same
    /// aggregate measurements whatever order the flows are listed in.
    /// Arrival rates are exact binary fractions so float aggregation cannot
    /// drift with summation order; `link_loads` keeps first-appearance
    /// order, so it is compared as a sorted set. (`peak_backlog` is the one
    /// field excluded: it samples the global in-flight count mid-instant,
    /// so same-instant event ties can move it by a transient ±1.)
    #[test]
    fn traffic_reports_ignore_flow_insertion_order(
        shuffle_seed in 0u64..5000,
        flow_count in 3usize..=6,
    ) {
        let links: Vec<Link> = (0..flow_count as u32)
            .map(|i| Link::new(NodeId::new(2 * i + 1), NodeId::new(2 * i)))
            .collect();
        // One slot per link, repeating: every flow gets 1/frame service.
        let schedule = Schedule::from_runs(links.iter().map(|&l| (vec![l], 1)));
        let arrivals: Vec<(Link, ArrivalProcess)> = links
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                // Distinct exact-binary rates: 1/16, 1/32, 1/64, ...
                (l, ArrivalProcess::deterministic(1.0 / (16u32 << i) as f64))
            })
            .collect();
        let mut shuffled = arrivals.clone();
        shuffled.shuffle(&mut ChaCha8Rng::seed_from_u64(shuffle_seed));
        let run = |order: Vec<(Link, ArrivalProcess)>| {
            TrafficEngine::on_schedule(
                &schedule,
                FlowSet::single_hop(order),
                TrafficConfig::new(64),
            )
            .expect("non-degenerate engine")
            .run()
        };
        let (a, b) = (run(arrivals), run(shuffled));
        prop_assert_eq!(a.frame_slots, b.frame_slots);
        prop_assert_eq!(a.horizon_slots, b.horizon_slots);
        prop_assert_eq!(a.flow_count, b.flow_count);
        prop_assert_eq!(a.offered_per_slot, b.offered_per_slot);
        prop_assert_eq!(a.injected, b.injected);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.final_backlog, b.final_backlog);
        prop_assert_eq!(a.sustained_throughput_per_slot, b.sustained_throughput_per_slot);
        prop_assert_eq!(a.delay, b.delay);
        prop_assert_eq!(&a.verdict, &b.verdict);
        let sorted_loads = |r: &TrafficReport| {
            let mut loads = r.link_loads.clone();
            loads.sort_by_key(|l| l.link);
            loads
        };
        prop_assert_eq!(sorted_loads(&a), sorted_loads(&b));
    }
}
