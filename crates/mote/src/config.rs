//! Configuration of the mote experiment.

use serde::{Deserialize, Serialize};

use scream_netsim::{DataRate, SimTime};

/// Parameters of the simulated Mica2 SCREAM-detection experiment.
///
/// The defaults reproduce the setup of Section V-A: 8 motes (1 initiator,
/// 6 relays, 1 monitor), 100 ms SCREAM period, 2000 SCREAMs per run,
/// −60 dBm detection threshold, CC1000-class 38.4 kb/s radio, and a monitor
/// whose moving average only consumes every third RSSI sample because of
/// device/UART limitations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoteExperimentConfig {
    /// SCREAM payload size in bytes (`SMBytes`), the swept parameter of
    /// Figure 4.
    pub scream_bytes: usize,
    /// Number of relay motes (the paper uses 6).
    pub relay_count: usize,
    /// Period between initiator SCREAMs.
    pub scream_interval: SimTime,
    /// Number of SCREAMs the initiator emits during the run.
    pub scream_count: usize,
    /// RSSI detection threshold at relays and monitor, in dBm.
    pub rssi_threshold_dbm: f64,
    /// Received power at the monitor while a single relay transmits, in dBm
    /// (relays and monitor form a clique a few meters apart).
    pub relay_rx_power_dbm: f64,
    /// Received power at the monitor from the initiator, in dBm. The
    /// initiator is two hops away, so this is below the detection threshold.
    pub initiator_rx_power_dbm: f64,
    /// Receiver noise floor, in dBm.
    pub noise_floor_dbm: f64,
    /// Standard deviation of the RSSI measurement noise, in dB.
    pub rssi_noise_sigma_db: f64,
    /// Radio serialization rate (CC1000 ≈ 38.4 kb/s).
    pub data_rate: DataRate,
    /// Interval between raw RSSI samples at the monitor.
    pub rssi_sample_period: SimTime,
    /// The monitor only feeds every `ma_sample_stride`-th RSSI sample into
    /// its moving average (the paper samples every 3rd value owing to device
    /// and UART limitations).
    pub ma_sample_stride: usize,
    /// Number of (strided) samples in the moving-average window.
    pub ma_window: usize,
    /// Minimum relay turnaround: time from detecting activity to starting to
    /// re-scream.
    pub relay_turnaround_min: SimTime,
    /// Maximum relay turnaround (uniform between min and max).
    pub relay_turnaround_max: SimTime,
    /// Dead time after a detection during which the monitor does not report
    /// another detection (one SCREAM produces one detection).
    pub detection_holdoff: SimTime,
    /// Relative tolerance on the inter-detection interval: an interval is an
    /// error if it deviates from the SCREAM period by more than this fraction
    /// (the paper uses ±5 %).
    pub interval_tolerance: f64,
    /// Seed for all randomness (turnaround delays, measurement noise).
    pub seed: u64,
}

impl MoteExperimentConfig {
    /// The configuration of Section V-A with the paper's 2000-SCREAM run
    /// length.
    pub fn paper_default() -> Self {
        Self {
            scream_bytes: 24,
            relay_count: 6,
            scream_interval: SimTime::from_millis(100),
            scream_count: 2000,
            rssi_threshold_dbm: -60.0,
            relay_rx_power_dbm: -40.0,
            initiator_rx_power_dbm: -75.0,
            noise_floor_dbm: -95.0,
            rssi_noise_sigma_db: 1.5,
            data_rate: DataRate::MICA2,
            rssi_sample_period: SimTime::from_micros(500),
            ma_sample_stride: 3,
            ma_window: 3,
            relay_turnaround_min: SimTime::from_micros(400),
            relay_turnaround_max: SimTime::from_micros(2_000),
            detection_holdoff: SimTime::from_millis(50),
            interval_tolerance: 0.05,
            seed: 0,
        }
    }

    /// Sets the SCREAM size in bytes.
    pub fn with_scream_bytes(mut self, bytes: usize) -> Self {
        self.scream_bytes = bytes;
        self
    }

    /// Sets how many SCREAMs the initiator emits.
    pub fn with_scream_count(mut self, count: usize) -> Self {
        self.scream_count = count;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Time the radio needs to serialize one SCREAM onto the air.
    pub fn scream_air_time(&self) -> SimTime {
        self.data_rate.transmission_time(self.scream_bytes)
    }

    /// Validates the structural constraints of the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (zero relays,
    /// zero screams, zero-size scream, an initiator audible at the monitor,
    /// or a non-positive tolerance).
    pub fn validate(&self) {
        assert!(
            self.scream_bytes > 0,
            "a SCREAM must contain at least one byte"
        );
        assert!(
            self.relay_count > 0,
            "the experiment needs at least one relay"
        );
        assert!(
            self.scream_count > 1,
            "need at least two SCREAMs to measure an interval"
        );
        assert!(
            self.initiator_rx_power_dbm < self.rssi_threshold_dbm,
            "the initiator must not be directly detectable at the monitor (it is two hops away)"
        );
        assert!(
            self.relay_rx_power_dbm > self.rssi_threshold_dbm,
            "relays must be detectable at the monitor"
        );
        assert!(self.interval_tolerance > 0.0 && self.interval_tolerance < 1.0);
        assert!(self.ma_window > 0 && self.ma_sample_stride > 0);
    }
}

impl Default for MoteExperimentConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_v() {
        let c = MoteExperimentConfig::paper_default();
        c.validate();
        assert_eq!(c.relay_count, 6);
        assert_eq!(c.scream_interval, SimTime::from_millis(100));
        assert_eq!(c.scream_count, 2000);
        assert_eq!(c.rssi_threshold_dbm, -60.0);
        assert_eq!(c.ma_sample_stride, 3);
        assert_eq!(c.interval_tolerance, 0.05);
        assert_eq!(MoteExperimentConfig::default(), c);
    }

    #[test]
    fn scream_air_time_scales_with_size() {
        let c = MoteExperimentConfig::paper_default();
        // 24 bytes at 38.4 kb/s = 5 ms.
        assert_eq!(c.scream_air_time(), SimTime::from_millis(5));
        assert_eq!(
            c.with_scream_bytes(48).scream_air_time(),
            SimTime::from_millis(10)
        );
    }

    #[test]
    fn builder_setters_work() {
        let c = MoteExperimentConfig::paper_default()
            .with_scream_bytes(10)
            .with_scream_count(500)
            .with_seed(7);
        assert_eq!(c.scream_bytes, 10);
        assert_eq!(c.scream_count, 500);
        assert_eq!(c.seed, 7);
    }

    #[test]
    #[should_panic(expected = "two hops away")]
    fn initiator_must_stay_below_threshold_at_the_monitor() {
        let mut c = MoteExperimentConfig::paper_default();
        c.initiator_rx_power_dbm = -50.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_scream_is_rejected() {
        let mut c = MoteExperimentConfig::paper_default();
        c.scream_bytes = 0;
        c.validate();
    }
}
