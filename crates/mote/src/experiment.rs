//! The discrete-event simulation of the mote experiment and its metrics.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scream_netsim::{EventQueue, SimTime};

use crate::config::MoteExperimentConfig;
use crate::rssi::{MovingAverage, RssiSample, RssiTrace};

/// Events driving the mote simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The initiator starts transmitting SCREAM number `index`.
    InitiatorScream { index: usize },
    /// Relay `relay` starts re-screaming.
    RelayStart { relay: usize },
    /// Relay `relay` finishes its transmission.
    RelayEnd { relay: usize },
    /// The initiator finishes its transmission.
    InitiatorEnd,
    /// The monitor takes an RSSI sample.
    MonitorSample,
}

/// The simulated Section-V experiment.
#[derive(Debug, Clone)]
pub struct MoteExperiment {
    config: MoteExperimentConfig,
}

impl MoteExperiment {
    /// Creates an experiment with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`MoteExperimentConfig::validate`]).
    pub fn new(config: MoteExperimentConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MoteExperimentConfig {
        &self.config
    }

    /// Runs the experiment without recording an RSSI trace.
    pub fn run(&self) -> MoteExperimentResult {
        self.run_internal(None)
    }

    /// Runs the experiment and additionally records the monitor's RSSI and
    /// moving-average stream within `[trace_from, trace_to)` — the data
    /// behind Figure 5.
    pub fn run_with_trace(&self, trace_from: SimTime, trace_to: SimTime) -> MoteExperimentResult {
        self.run_internal(Some((trace_from, trace_to)))
    }

    fn run_internal(&self, trace_window: Option<(SimTime, SimTime)>) -> MoteExperimentResult {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let air_time = cfg.scream_air_time();
        let horizon = cfg.scream_interval * (cfg.scream_count as u64 + 1);

        let mut queue: EventQueue<Event> = EventQueue::new();
        for k in 0..cfg.scream_count {
            queue.schedule(
                cfg.scream_interval * k as u64,
                Event::InitiatorScream { index: k },
            );
        }
        queue.schedule(SimTime::ZERO, Event::MonitorSample);

        // Radio state visible at the monitor.
        let mut initiator_active = false;
        let mut relay_active = vec![false; cfg.relay_count];
        // Whether each relay has already re-screamed for the current
        // initiator SCREAM (refractory until the next one).
        let mut relay_triggered = vec![false; cfg.relay_count];

        // Monitor state.
        let mut ma = MovingAverage::new(cfg.ma_window);
        let mut sample_counter: usize = 0;
        let mut last_detection: Option<SimTime> = None;
        let mut detections: Vec<SimTime> = Vec::new();
        let mut trace = RssiTrace::new();

        let noise_mw = dbm_to_mw(cfg.noise_floor_dbm);
        let relay_mw = dbm_to_mw(cfg.relay_rx_power_dbm);
        let initiator_mw = dbm_to_mw(cfg.initiator_rx_power_dbm);

        while let Some(ev) = queue.pop() {
            if ev.time > horizon {
                break;
            }
            let now = ev.time;
            match ev.event {
                Event::InitiatorScream { .. } => {
                    initiator_active = true;
                    relay_triggered.iter_mut().for_each(|t| *t = false);
                    queue.schedule(now + air_time, Event::InitiatorEnd);
                    // Relays sample the channel continuously; a relay notices
                    // the activity after its turnaround delay, provided the
                    // transmission is still on the air at that instant. Very
                    // short SCREAMs are therefore easy to miss — the effect
                    // the paper measures.
                    for (relay, triggered) in relay_triggered.iter_mut().enumerate() {
                        let turnaround = random_turnaround(cfg, &mut rng);
                        if turnaround < air_time && !*triggered {
                            *triggered = true;
                            queue.schedule(now + turnaround, Event::RelayStart { relay });
                        }
                    }
                }
                Event::InitiatorEnd => {
                    initiator_active = false;
                }
                Event::RelayStart { relay } => {
                    relay_active[relay] = true;
                    queue.schedule(now + air_time, Event::RelayEnd { relay });
                    // A re-scream can itself trigger relays that missed the
                    // initiator (collision-tolerant flooding): energy from
                    // simultaneous transmissions only adds up.
                    for (other, triggered) in relay_triggered.iter_mut().enumerate() {
                        if *triggered {
                            continue;
                        }
                        let turnaround = random_turnaround(cfg, &mut rng);
                        if turnaround < air_time {
                            *triggered = true;
                            queue.schedule(now + turnaround, Event::RelayStart { relay: other });
                        }
                    }
                }
                Event::RelayEnd { relay } => {
                    relay_active[relay] = false;
                }
                Event::MonitorSample => {
                    // Aggregate received power: active relays plus the (weak)
                    // initiator plus the noise floor, with measurement noise.
                    let mut power_mw = noise_mw;
                    if initiator_active {
                        power_mw += initiator_mw;
                    }
                    power_mw += relay_active.iter().filter(|&&a| a).count() as f64 * relay_mw;
                    let rssi_dbm =
                        mw_to_dbm(power_mw) + cfg.rssi_noise_sigma_db * standard_normal(&mut rng);

                    sample_counter += 1;
                    let mut ma_value = None;
                    if sample_counter.is_multiple_of(cfg.ma_sample_stride) {
                        let avg = ma.push(rssi_dbm);
                        ma_value = Some(avg);
                        let in_holdoff =
                            last_detection.is_some_and(|t| now < t + cfg.detection_holdoff);
                        if avg >= cfg.rssi_threshold_dbm && !in_holdoff {
                            detections.push(now);
                            last_detection = Some(now);
                        }
                    }

                    if let Some((from, to)) = trace_window {
                        if now >= from && now < to {
                            trace.push(RssiSample {
                                time: now,
                                rssi_dbm,
                                moving_average_dbm: ma_value,
                            });
                        }
                    }

                    if now + cfg.rssi_sample_period <= horizon {
                        queue.schedule(now + cfg.rssi_sample_period, Event::MonitorSample);
                    }
                }
            }
        }

        MoteExperimentResult {
            config: *cfg,
            detections,
            trace,
        }
    }
}

/// Draws a relay turnaround delay uniformly in the configured range.
fn random_turnaround<R: Rng + ?Sized>(cfg: &MoteExperimentConfig, rng: &mut R) -> SimTime {
    let min = cfg.relay_turnaround_min.as_nanos();
    let max = cfg.relay_turnaround_max.as_nanos().max(min + 1);
    SimTime::from_nanos(rng.gen_range(min..=max))
}

fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Draws a standard normal sample (Box–Muller), kept local to stay within the
/// approved dependency set.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Outcome of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoteExperimentResult {
    config: MoteExperimentConfig,
    detections: Vec<SimTime>,
    trace: RssiTrace,
}

impl MoteExperimentResult {
    /// The configuration the run used.
    pub fn config(&self) -> &MoteExperimentConfig {
        &self.config
    }

    /// Times at which the monitor declared a SCREAM detection.
    pub fn detections(&self) -> &[SimTime] {
        &self.detections
    }

    /// The recorded RSSI trace (empty unless the run was started with
    /// [`MoteExperiment::run_with_trace`]).
    pub fn trace(&self) -> &RssiTrace {
        &self.trace
    }

    /// Intervals between consecutive detections, in seconds.
    pub fn intervals_secs(&self) -> Vec<f64> {
        self.detections
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect()
    }

    /// The paper's error metric: the percentage of measured inter-detection
    /// intervals deviating from the expected SCREAM period by more than the
    /// configured tolerance (±5 %). Missed SCREAMs surface here as doubled
    /// (or longer) intervals; completely undetected runs count as 100 %.
    pub fn error_percentage(&self) -> f64 {
        let expected = self.config.scream_interval.as_secs_f64();
        let tolerance = self.config.interval_tolerance * expected;
        let intervals = self.intervals_secs();
        // Every emitted SCREAM (after the first) should produce one interval;
        // account for intervals that never materialized because detections
        // were missing altogether.
        let expected_intervals = (self.config.scream_count - 1) as f64;
        if expected_intervals <= 0.0 {
            return 0.0;
        }
        let good = intervals
            .iter()
            .filter(|&&i| (i - expected).abs() <= tolerance)
            .count() as f64;
        (100.0 * (expected_intervals - good) / expected_intervals).clamp(0.0, 100.0)
    }

    /// Fraction of emitted SCREAMs that produced a detection at the monitor.
    pub fn detection_rate(&self) -> f64 {
        self.detections.len() as f64 / self.config.scream_count as f64
    }
}

/// One point of the Figure-4 sweep: SCREAM size versus detection error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionErrorPoint {
    /// SCREAM payload size in bytes.
    pub scream_bytes: usize,
    /// Percentage of out-of-tolerance inter-detection intervals.
    pub error_percentage: f64,
    /// Fraction of SCREAMs detected at all.
    pub detection_rate: f64,
}

impl DetectionErrorPoint {
    /// Runs the experiment for every SCREAM size in `sizes` and returns one
    /// point per size — the data series of Figure 4.
    pub fn sweep(base: MoteExperimentConfig, sizes: &[usize]) -> Vec<DetectionErrorPoint> {
        sizes
            .iter()
            .map(|&bytes| {
                let result = MoteExperiment::new(base.with_scream_bytes(bytes)).run();
                DetectionErrorPoint {
                    scream_bytes: bytes,
                    error_percentage: result.error_percentage(),
                    detection_rate: result.detection_rate(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> MoteExperimentConfig {
        MoteExperimentConfig::paper_default().with_scream_count(150)
    }

    #[test]
    fn large_screams_are_detected_reliably() {
        let result = MoteExperiment::new(quick_config().with_scream_bytes(24)).run();
        assert!(
            result.error_percentage() < 5.0,
            "24-byte SCREAMs should have negligible error, got {:.1}%",
            result.error_percentage()
        );
        assert!(result.detection_rate() > 0.95);
    }

    #[test]
    fn tiny_screams_are_mostly_missed() {
        let result = MoteExperiment::new(quick_config().with_scream_bytes(2)).run();
        assert!(
            result.error_percentage() > 50.0,
            "2-byte SCREAMs should be unreliable, got {:.1}%",
            result.error_percentage()
        );
    }

    #[test]
    fn error_decreases_with_scream_size() {
        let points = DetectionErrorPoint::sweep(quick_config(), &[4, 12, 24, 32]);
        assert_eq!(points.len(), 4);
        assert!(
            points[0].error_percentage >= points[2].error_percentage,
            "error at 4 bytes ({:.1}%) should exceed error at 24 bytes ({:.1}%)",
            points[0].error_percentage,
            points[2].error_percentage
        );
        assert!(points[3].error_percentage < 5.0);
        assert!(points[0].detection_rate <= points[3].detection_rate + 1e-9);
    }

    #[test]
    fn intervals_cluster_around_the_scream_period() {
        let result = MoteExperiment::new(quick_config().with_scream_bytes(24)).run();
        let intervals = result.intervals_secs();
        assert!(!intervals.is_empty());
        let mean = intervals.iter().sum::<f64>() / intervals.len() as f64;
        assert!(
            (mean - 0.1).abs() < 0.01,
            "mean interval {mean} should be ~100 ms"
        );
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let a = MoteExperiment::new(quick_config().with_seed(3)).run();
        let b = MoteExperiment::new(quick_config().with_seed(3)).run();
        let c = MoteExperiment::new(quick_config().with_seed(4)).run();
        assert_eq!(a.detections(), b.detections());
        assert!(a.detections() != c.detections() || a.error_percentage() == c.error_percentage());
    }

    #[test]
    fn trace_recording_captures_the_scream_shape() {
        let result = MoteExperiment::new(quick_config().with_scream_bytes(24))
            .run_with_trace(SimTime::ZERO, SimTime::from_millis(400));
        let trace = result.trace();
        assert!(!trace.is_empty());
        // The moving average must rise above the threshold during screams and
        // fall back to the noise floor in between.
        let peak = trace.peak_moving_average_dbm();
        assert!(
            peak > -60.0,
            "peak MA {peak} dBm should cross the threshold"
        );
        let floor = trace
            .moving_average_series()
            .map(|(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        assert!(
            floor < -80.0,
            "quiet-period MA {floor} dBm should sit near the noise floor"
        );
    }

    #[test]
    fn detection_rate_counts_at_most_one_detection_per_scream() {
        let result = MoteExperiment::new(quick_config().with_scream_bytes(32)).run();
        assert!(result.detection_rate() <= 1.0 + 1e-9);
    }

    #[test]
    fn run_without_trace_records_nothing() {
        let result = MoteExperiment::new(quick_config()).run();
        assert!(result.trace().is_empty());
    }
}
