//! RSSI sampling, moving-average detection and trace recording.

use serde::{Deserialize, Serialize};

use scream_netsim::SimTime;

/// One RSSI reading at the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RssiSample {
    /// When the sample was taken.
    pub time: SimTime,
    /// The raw RSSI value, in dBm.
    pub rssi_dbm: f64,
    /// The moving-average value after consuming this sample, in dBm, if the
    /// sample was one of the strided samples fed into the average.
    pub moving_average_dbm: Option<f64>,
}

/// A sliding-window moving average over dBm readings, mimicking the filter
/// the paper's Monitor mote applies to its RSSI stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAverage {
    window: usize,
    values: Vec<f64>,
}

impl MovingAverage {
    /// Creates a moving average over the last `window` values.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "moving-average window must be non-empty");
        Self {
            window,
            values: Vec::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Pushes a new value and returns the current average.
    pub fn push(&mut self, value_dbm: f64) -> f64 {
        self.values.push(value_dbm);
        if self.values.len() > self.window {
            self.values.remove(0);
        }
        self.current()
    }

    /// The current average, or negative infinity if no value has been pushed.
    pub fn current(&self) -> f64 {
        if self.values.is_empty() {
            f64::NEG_INFINITY
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Whether the window has been fully populated.
    pub fn is_warm(&self) -> bool {
        self.values.len() == self.window
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.values.clear();
    }
}

/// A recorded trace of RSSI and moving-average values, used to regenerate the
/// paper's Figure 5.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RssiTrace {
    samples: Vec<RssiSample>,
}

impl RssiTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: RssiSample) {
        self.samples.push(sample);
    }

    /// All recorded samples in time order.
    pub fn samples(&self) -> &[RssiSample] {
        &self.samples
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The subset of samples that carry a moving-average value (the strided
    /// samples actually consumed by the monitor).
    pub fn moving_average_series(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples
            .iter()
            .filter_map(|s| s.moving_average_dbm.map(|ma| (s.time, ma)))
    }

    /// Restricts the trace to samples within `[from, to)` — convenient for
    /// plotting a short snapshot as the paper does.
    pub fn window(&self, from: SimTime, to: SimTime) -> RssiTrace {
        RssiTrace {
            samples: self
                .samples
                .iter()
                .copied()
                .filter(|s| s.time >= from && s.time < to)
                .collect(),
        }
    }

    /// Maximum moving-average value seen in the trace, in dBm.
    pub fn peak_moving_average_dbm(&self) -> f64 {
        self.moving_average_series()
            .map(|(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_tracks_the_window() {
        let mut ma = MovingAverage::new(3);
        assert_eq!(ma.current(), f64::NEG_INFINITY);
        assert!(!ma.is_warm());
        assert_eq!(ma.push(-90.0), -90.0);
        assert_eq!(ma.push(-60.0), -75.0);
        assert_eq!(ma.push(-60.0), -70.0);
        assert!(ma.is_warm());
        // Window slides: the -90 falls out.
        assert_eq!(ma.push(-60.0), -60.0);
        ma.reset();
        assert!(!ma.is_warm());
        assert_eq!(ma.current(), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_is_rejected() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    fn trace_windowing_and_series_extraction() {
        let mut trace = RssiTrace::new();
        for i in 0..10u64 {
            trace.push(RssiSample {
                time: SimTime::from_millis(i),
                rssi_dbm: -90.0 + i as f64,
                moving_average_dbm: (i % 2 == 0).then_some(-80.0 + i as f64),
            });
        }
        assert_eq!(trace.len(), 10);
        assert!(!trace.is_empty());
        let windowed = trace.window(SimTime::from_millis(2), SimTime::from_millis(5));
        assert_eq!(windowed.len(), 3);
        let ma_points: Vec<_> = trace.moving_average_series().collect();
        assert_eq!(ma_points.len(), 5);
        assert!((trace.peak_moving_average_dbm() - (-72.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_no_peak() {
        let trace = RssiTrace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.peak_moving_average_dbm(), f64::NEG_INFINITY);
    }
}
