//! Simulation of the Mica2 mote SCREAM-detection experiment (Section V of
//! the paper).
//!
//! The paper validates the SCREAM primitive's core assumption — that
//! energy-detection carrier sensing keeps working under deliberate
//! collisions — on a small Crossbow Mica2 testbed: one *Initiator* emits a
//! SCREAM of `SMBytes` every 100 ms, six *Relays* placed in a clique with the
//! *Monitor* re-scream as soon as they detect channel activity, and the
//! Monitor (which cannot hear the Initiator directly) declares a detection
//! when the moving average of its RSSI samples crosses −60 dBm. The reported
//! metric is the percentage of inter-detection intervals falling outside
//! ±5 % of the expected 100 ms, as a function of the SCREAM size.
//!
//! The physical testbed is not available, so this crate reproduces the
//! experiment as a discrete-event simulation with a byte-timed CC1000-class
//! radio (38.4 kb/s), staggered relay turnaround delays, collision-tolerant
//! energy aggregation and a UART-limited monitor that only consumes every
//! third RSSI sample — the mechanism the paper identifies as the cause of
//! detection lag. See `DESIGN.md` for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use scream_mote::{MoteExperiment, MoteExperimentConfig};
//!
//! let config = MoteExperimentConfig::paper_default()
//!     .with_scream_bytes(24)
//!     .with_scream_count(200);
//! let result = MoteExperiment::new(config).run();
//! assert!(result.error_percentage() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod experiment;
pub mod rssi;

pub use config::MoteExperimentConfig;
pub use experiment::{DetectionErrorPoint, MoteExperiment, MoteExperimentResult};
pub use rssi::{MovingAverage, RssiSample, RssiTrace};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::config::MoteExperimentConfig;
    pub use crate::experiment::{DetectionErrorPoint, MoteExperiment, MoteExperimentResult};
    pub use crate::rssi::{MovingAverage, RssiSample, RssiTrace};
}
