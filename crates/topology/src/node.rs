//! Node identifiers and per-node physical attributes.
//!
//! The paper assumes every node has a globally unique identifier (e.g. its
//! MAC address) which is used for leader election, and a fixed transmit power
//! which may differ between nodes (no power control, Section II).

use serde::{Deserialize, Serialize};

use crate::geometry::Point2;

/// Identifier of a mesh node.
///
/// Node ids double as indices into the deployment's node vector, and as the
/// unique ids compared by the bitwise leader-election procedure of
/// Section III-B. Distinct nodes always carry distinct ids.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id from its raw index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Raw index value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Number of bits needed to represent ids up to `n` distinct nodes
    /// (`id_bits` in the leader-election pseudocode of the paper).
    ///
    /// ```
    /// use scream_topology::NodeId;
    /// assert_eq!(NodeId::id_bits(64), 6);
    /// assert_eq!(NodeId::id_bits(65), 7);
    /// assert_eq!(NodeId::id_bits(1), 1);
    /// ```
    pub fn id_bits(n: usize) -> u32 {
        if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()).max(1)
        }
    }

    /// The `j`-th bit of the identifier, with bit 0 the least significant.
    ///
    /// Used by [`LeaderElection`](https://docs.rs/scream-core) which iterates
    /// from the most significant bit downwards.
    pub fn bit(self, j: u32) -> bool {
        (self.0 >> j) & 1 == 1
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Physical attributes of a single mesh node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Unique identifier of the node.
    pub id: NodeId,
    /// Position of the node in the deployment region, in meters.
    pub position: Point2,
    /// Fixed transmit power, in dBm. Nodes may use different powers but a
    /// node never changes its own (no transmit power control, Section II).
    pub tx_power_dbm: f64,
    /// Whether the node is a gateway (root of a routing tree). Gateways sink
    /// traffic to the wired Internet and generate no upstream demand.
    pub is_gateway: bool,
}

impl NodeInfo {
    /// Creates a non-gateway node with the given id, position and power.
    pub fn new(id: NodeId, position: Point2, tx_power_dbm: f64) -> Self {
        Self {
            id,
            position,
            tx_power_dbm,
            is_gateway: false,
        }
    }

    /// Marks the node as a gateway, consuming and returning it.
    pub fn as_gateway(mut self) -> Self {
        self.is_gateway = true;
        self
    }

    /// Transmit power in milliwatts.
    pub fn tx_power_mw(&self) -> f64 {
        dbm_to_mw(self.tx_power_dbm)
    }
}

/// Converts a power level from dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts a power level from milliwatts to dBm.
///
/// Returns negative infinity for non-positive powers.
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * mw.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_u32() {
        let id = NodeId::new(17);
        assert_eq!(u32::from(id), 17);
        assert_eq!(NodeId::from(17u32), id);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn id_bits_matches_ceil_log2() {
        assert_eq!(NodeId::id_bits(0), 1);
        assert_eq!(NodeId::id_bits(1), 1);
        assert_eq!(NodeId::id_bits(2), 1);
        assert_eq!(NodeId::id_bits(3), 2);
        assert_eq!(NodeId::id_bits(4), 2);
        assert_eq!(NodeId::id_bits(5), 3);
        assert_eq!(NodeId::id_bits(64), 6);
        assert_eq!(NodeId::id_bits(100), 7);
        assert_eq!(NodeId::id_bits(128), 7);
        assert_eq!(NodeId::id_bits(129), 8);
    }

    #[test]
    fn bit_extraction_matches_binary_representation() {
        let id = NodeId::new(0b1011_0101);
        assert!(id.bit(0));
        assert!(!id.bit(1));
        assert!(id.bit(2));
        assert!(id.bit(4));
        assert!(!id.bit(6));
        assert!(id.bit(7));
        assert!(!id.bit(8));
    }

    #[test]
    fn every_id_below_n_is_representable_in_id_bits() {
        for n in 1..200usize {
            let bits = NodeId::id_bits(n);
            for raw in 0..n as u32 {
                // The highest set bit of any id must fall within id_bits.
                assert!(
                    raw < (1u32 << bits),
                    "id {raw} not representable in {bits} bits for n={n}"
                );
            }
        }
    }

    #[test]
    fn dbm_mw_conversions_are_inverse() {
        for dbm in [-90.0, -30.0, 0.0, 10.0, 20.0, 30.0] {
            let mw = dbm_to_mw(dbm);
            assert!((mw_to_dbm(mw) - dbm).abs() < 1e-9);
        }
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
        assert_eq!(mw_to_dbm(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn node_info_gateway_marking() {
        let n = NodeInfo::new(NodeId::new(3), Point2::new(1.0, 2.0), 20.0);
        assert!(!n.is_gateway);
        let g = n.as_gateway();
        assert!(g.is_gateway);
        assert_eq!(g.id, NodeId::new(3));
        assert!((g.tx_power_mw() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn node_id_ordering_follows_raw_value() {
        assert!(NodeId::new(5) > NodeId::new(4));
        assert_eq!(NodeId::new(7).max(NodeId::new(3)), NodeId::new(7));
    }
}
