//! Node deployments: planned grids, unplanned uniform-random placements, and
//! the infinite-density abstraction of Section IV-B3.
//!
//! The paper's simulation study (Section VI-A) uses two topologies:
//!
//! * **planned** — a grid layout with homogeneous transmission power;
//! * **unplanned** — uniform random node placement with heterogeneous
//!   transmission power.
//!
//! In both cases 64 nodes are deployed and node density is varied by changing
//! the deployment area. [`density_to_area_m2`] performs that conversion.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::geometry::{Point2, Rect};
use crate::node::{NodeId, NodeInfo};

/// How a deployment was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeploymentKind {
    /// Planned placement on a square lattice.
    Grid,
    /// Unplanned placement, uniform at random in the region.
    UniformRandom,
    /// Dense lattice approximating the infinite-density model.
    InfiniteDensity,
    /// Hand-built placement (e.g. for tests and counterexamples).
    Custom,
}

/// A concrete set of mesh nodes with positions and transmit powers.
///
/// A deployment is the physical-layer input shared by every other crate in
/// the workspace: the radio environment is derived from it, graphs are built
/// over its nodes, and schedules allocate slots to links between its nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    nodes: Vec<NodeInfo>,
    region: Rect,
    kind: DeploymentKind,
}

impl Deployment {
    /// Creates a deployment from explicit node descriptions.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyDeployment`] if `nodes` is empty, or
    /// [`TopologyError::InvalidParameter`] if node ids are not the contiguous
    /// range `0..n`.
    pub fn from_nodes(
        nodes: Vec<NodeInfo>,
        region: Rect,
        kind: DeploymentKind,
    ) -> Result<Self, TopologyError> {
        if nodes.is_empty() {
            return Err(TopologyError::EmptyDeployment);
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.id.index() != i {
                return Err(TopologyError::InvalidParameter(format!(
                    "node at position {i} has id {}, expected contiguous ids 0..{}",
                    node.id,
                    nodes.len()
                )));
            }
        }
        Ok(Self {
            nodes,
            region,
            kind,
        })
    }

    /// Constructor for the workspace builders ([`GridDeployment`],
    /// [`UniformDeployment`]) that assign ids `0..n` themselves: the
    /// contiguity [`Self::from_nodes`] re-validates holds by construction, so
    /// the fallible path would only add an `expect` on an impossible error
    /// (P1). The invariants are checked in debug builds instead.
    fn from_contiguous_nodes(nodes: Vec<NodeInfo>, region: Rect, kind: DeploymentKind) -> Self {
        debug_assert!(!nodes.is_empty(), "builders emit at least one node");
        debug_assert!(
            nodes.iter().enumerate().all(|(i, n)| n.id.index() == i),
            "builders assign contiguous ids 0..n"
        );
        Self {
            nodes,
            region,
            kind,
        }
    }

    /// Builds a custom deployment from bare positions, all with the same
    /// transmit power. Useful for tests and hand-crafted counterexamples.
    pub fn from_positions(
        positions: &[Point2],
        tx_power_dbm: f64,
        region: Rect,
    ) -> Result<Self, TopologyError> {
        let nodes = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| NodeInfo::new(NodeId::new(i as u32), p, tx_power_dbm))
            .collect();
        Self::from_nodes(nodes, region, DeploymentKind::Custom)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the deployment has no nodes (never true for a value
    /// constructed through the public API).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The deployment region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// How the deployment was generated.
    pub fn kind(&self) -> DeploymentKind {
        self.kind
    }

    /// All nodes, indexed by id.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Node description for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.index()]
    }

    /// Position of node `id` in meters.
    pub fn position(&self, id: NodeId) -> Point2 {
        self.node(id).position
    }

    /// Transmit power of node `id` in dBm.
    pub fn tx_power_dbm(&self, id: NodeId) -> f64 {
        self.node(id).tx_power_dbm
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId::new)
    }

    /// Node positions as struct-of-arrays flat buffers `(xs, ys)`, indexed
    /// by node id. Large-scale consumers (the radio environment, spatial
    /// grids) work on contiguous coordinate buffers rather than walking
    /// `NodeInfo` records.
    pub fn position_buffers(&self) -> (Vec<f64>, Vec<f64>) {
        let xs = self.nodes.iter().map(|n| n.position.x).collect();
        let ys = self.nodes.iter().map(|n| n.position.y).collect();
        (xs, ys)
    }

    /// Ids of the nodes currently flagged as gateways.
    pub fn gateways(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_gateway)
            .map(|n| n.id)
            .collect()
    }

    /// Flags the given nodes as gateways (and clears the flag on all others).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] for out-of-range ids and
    /// [`TopologyError::DuplicateGateway`] for repeated ids.
    pub fn set_gateways(&mut self, gateways: &[NodeId]) -> Result<(), TopologyError> {
        let mut seen = vec![false; self.len()];
        for &g in gateways {
            if g.index() >= self.len() {
                return Err(TopologyError::UnknownNode {
                    id: g,
                    node_count: self.len(),
                });
            }
            if seen[g.index()] {
                return Err(TopologyError::DuplicateGateway(g));
            }
            seen[g.index()] = true;
        }
        for node in &mut self.nodes {
            node.is_gateway = seen[node.id.index()];
        }
        Ok(())
    }

    /// The node closest to each corner of the deployment region, deduplicated
    /// and sorted. The paper places 4 gateways in its 64-node scenarios; the
    /// corner nodes are the natural planned choice.
    pub fn corner_nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .region
            .corners()
            .iter()
            .map(|&corner| self.nearest_node(corner))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The node closest to the given point.
    pub fn nearest_node(&self, p: Point2) -> NodeId {
        self.nodes
            .iter()
            .min_by(|a, b| {
                // total_cmp: NaN-safe, so a degenerate deployment can never
                // panic a sweep mid-run (F1.cmp).
                a.position
                    .distance_squared(p)
                    .total_cmp(&b.position.distance_squared(p))
            })
            // lint:allow(P1, reason = "Deployment constructors reject empty node sets")
            .expect("deployment is never empty")
            .id
    }

    /// Node density in nodes per square kilometer (the x-axis of Figures 6
    /// and 7 in the paper).
    pub fn density_per_km2(&self) -> f64 {
        let area_km2 = self.region.area() / 1.0e6;
        self.len() as f64 / area_km2
    }

    /// Applies heterogeneous transmit powers drawn uniformly from
    /// `[min_dbm, max_dbm]`, as in the paper's unplanned scenario.
    pub fn randomize_tx_power<R: Rng + ?Sized>(&mut self, rng: &mut R, min_dbm: f64, max_dbm: f64) {
        for node in &mut self.nodes {
            node.tx_power_dbm = rng.gen_range(min_dbm..=max_dbm);
        }
    }
}

/// Converts a target density (nodes per square kilometer) and node count into
/// the area in square meters of the square deployment region that realizes it.
///
/// ```
/// use scream_topology::density_to_area_m2;
/// // 64 nodes at 1000 nodes/km^2 need 0.064 km^2 = 64_000 m^2.
/// assert!((density_to_area_m2(64, 1000.0) - 64_000.0).abs() < 1e-6);
/// ```
pub fn density_to_area_m2(node_count: usize, density_per_km2: f64) -> f64 {
    assert!(
        density_per_km2 > 0.0,
        "density must be positive, got {density_per_km2}"
    );
    node_count as f64 / density_per_km2 * 1.0e6
}

/// Builder for planned square-grid deployments with homogeneous power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridDeployment {
    columns: usize,
    rows: usize,
    step_m: f64,
    tx_power_dbm: f64,
}

impl GridDeployment {
    /// A `columns x rows` grid with the given lattice step in meters and a
    /// default transmit power of 20 dBm (100 mW, a typical mesh router).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the step is not positive.
    pub fn new(columns: usize, rows: usize, step_m: f64) -> Self {
        assert!(columns > 0 && rows > 0, "grid dimensions must be positive");
        assert!(
            step_m.is_finite() && step_m > 0.0,
            "grid step must be positive, got {step_m}"
        );
        Self {
            columns,
            rows,
            step_m,
            tx_power_dbm: 20.0,
        }
    }

    /// A square `side x side` grid sized so that the overall node density is
    /// `density_per_km2` nodes per square kilometer — the configuration swept
    /// in Figure 6 of the paper.
    pub fn with_density(side: usize, density_per_km2: f64) -> Self {
        let n = side * side;
        let area = density_to_area_m2(n, density_per_km2);
        // n nodes on a side x side lattice span (side-1)*step in each axis; we
        // size the step so the bounding region area (one step of margin around
        // the lattice keeps density consistent) equals the target area.
        let step = (area / n as f64).sqrt();
        Self::new(side, side, step)
    }

    /// Sets the homogeneous transmit power in dBm.
    pub fn tx_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Lattice step in meters.
    pub fn step_m(&self) -> f64 {
        self.step_m
    }

    /// Builds the deployment. Node ids are assigned in row-major order.
    pub fn build(&self) -> Deployment {
        let mut nodes = Vec::with_capacity(self.columns * self.rows);
        for row in 0..self.rows {
            for col in 0..self.columns {
                let id = NodeId::new((row * self.columns + col) as u32);
                let pos = Point2::new(col as f64 * self.step_m, row as f64 * self.step_m);
                nodes.push(NodeInfo::new(id, pos, self.tx_power_dbm));
            }
        }
        let region = Rect::new(
            Point2::ORIGIN,
            Point2::new(
                (self.columns - 1) as f64 * self.step_m,
                (self.rows - 1) as f64 * self.step_m,
            ),
        );
        Deployment::from_contiguous_nodes(nodes, region, DeploymentKind::Grid)
    }
}

/// Builder for unplanned deployments: nodes placed uniformly at random in a
/// square region, optionally with heterogeneous transmit powers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformDeployment {
    node_count: usize,
    region_side_m: f64,
    tx_power_dbm: f64,
    power_spread_db: f64,
}

impl UniformDeployment {
    /// `node_count` nodes uniform in a `region_side_m x region_side_m` square,
    /// homogeneous 20 dBm transmit power.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero or the side length is not positive.
    pub fn new(node_count: usize, region_side_m: f64) -> Self {
        assert!(node_count > 0, "node count must be positive");
        assert!(
            region_side_m.is_finite() && region_side_m > 0.0,
            "region side must be positive, got {region_side_m}"
        );
        Self {
            node_count,
            region_side_m,
            tx_power_dbm: 20.0,
            power_spread_db: 0.0,
        }
    }

    /// `node_count` nodes in a square region sized for the target density
    /// (nodes per square kilometer) — the configuration swept in Figure 7.
    pub fn with_density(node_count: usize, density_per_km2: f64) -> Self {
        let area = density_to_area_m2(node_count, density_per_km2);
        Self::new(node_count, area.sqrt())
    }

    /// Sets the mean transmit power in dBm.
    pub fn tx_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Makes transmit powers heterogeneous: each node's power is drawn
    /// uniformly from `mean ± spread/2` dB (the paper's unplanned scenario
    /// uses heterogeneous powers).
    pub fn heterogeneous_power(mut self, spread_db: f64) -> Self {
        assert!(spread_db >= 0.0, "power spread must be non-negative");
        self.power_spread_db = spread_db;
        self
    }

    /// Builds the deployment using the supplied random number generator.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Deployment {
        let side = self.region_side_m;
        let nodes = (0..self.node_count)
            .map(|i| {
                let pos = Point2::new(rng.gen_range(0.0..=side), rng.gen_range(0.0..=side));
                let power = if self.power_spread_db > 0.0 {
                    rng.gen_range(
                        self.tx_power_dbm - self.power_spread_db / 2.0
                            ..=self.tx_power_dbm + self.power_spread_db / 2.0,
                    )
                } else {
                    self.tx_power_dbm
                };
                NodeInfo::new(NodeId::new(i as u32), pos, power)
            })
            .collect();
        Deployment::from_contiguous_nodes(nodes, Rect::square(side), DeploymentKind::UniformRandom)
    }

    /// Builds deployments until one whose unit-disk graph at `range_m` is
    /// connected is found, trying at most `max_attempts` times.
    ///
    /// The paper's analysis assumes a (strongly) connected communication
    /// graph; at realistic densities disconnected draws are rare but possible.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] if no connected draw was found.
    pub fn build_connected<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        range_m: f64,
        max_attempts: usize,
    ) -> Result<Deployment, TopologyError> {
        let builder = crate::graph::UnitDiskGraphBuilder::new(range_m);
        let mut last_unreachable = self.node_count;
        for _ in 0..max_attempts.max(1) {
            let d = self.build(rng);
            let g = builder.build(&d);
            if g.is_connected() {
                return Ok(d);
            }
            last_unreachable = g.unreachable_from(NodeId::new(0));
        }
        Err(TopologyError::Disconnected {
            unreachable: last_unreachable,
        })
    }
}

/// Builder approximating the *infinite density* model of Section IV-B3 with a
/// very fine lattice: for every node, every distance within communication
/// range and every direction, some node exists nearby.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InfiniteDensityDeployment {
    region_side_m: f64,
    lattice_step_m: f64,
    tx_power_dbm: f64,
}

impl InfiniteDensityDeployment {
    /// Fills a square region of the given side with a lattice of the given
    /// (small) step.
    ///
    /// # Panics
    ///
    /// Panics if parameters are not positive or the implied node count
    /// exceeds one million (guarding against accidental memory blow-up).
    pub fn new(region_side_m: f64, lattice_step_m: f64) -> Self {
        assert!(region_side_m > 0.0 && lattice_step_m > 0.0);
        let per_side = (region_side_m / lattice_step_m).floor() as usize + 1;
        assert!(
            per_side * per_side <= 1_000_000,
            "infinite-density lattice would have {} nodes; use a coarser step",
            per_side * per_side
        );
        Self {
            region_side_m,
            lattice_step_m,
            tx_power_dbm: 20.0,
        }
    }

    /// Sets the homogeneous transmit power in dBm.
    pub fn tx_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Builds the dense lattice deployment.
    pub fn build(&self) -> Deployment {
        let per_side = (self.region_side_m / self.lattice_step_m).floor() as usize + 1;
        let grid = GridDeployment::new(per_side, per_side, self.lattice_step_m)
            .tx_power_dbm(self.tx_power_dbm);
        let mut d = grid.build();
        d.kind = DeploymentKind::InfiniteDensity;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn grid_has_row_major_positions() {
        let d = GridDeployment::new(3, 2, 10.0).build();
        assert_eq!(d.len(), 6);
        assert_eq!(d.position(NodeId::new(0)), Point2::new(0.0, 0.0));
        assert_eq!(d.position(NodeId::new(2)), Point2::new(20.0, 0.0));
        assert_eq!(d.position(NodeId::new(3)), Point2::new(0.0, 10.0));
        assert_eq!(d.position(NodeId::new(5)), Point2::new(20.0, 10.0));
        assert_eq!(d.kind(), DeploymentKind::Grid);
    }

    #[test]
    fn grid_region_spans_the_lattice() {
        let d = GridDeployment::new(8, 8, 250.0).build();
        assert_eq!(d.region().width(), 7.0 * 250.0);
        assert!(d.node_ids().all(|id| d.region().contains(d.position(id))));
    }

    #[test]
    fn grid_with_density_hits_target_density_approximately() {
        let d = GridDeployment::with_density(8, 1000.0).build();
        // Region is the lattice bounding box, which is (side-1)^2 steps, so the
        // realized density is a bit above target; it must be within 2x.
        let realized = d.density_per_km2();
        assert!((1000.0..=2000.0).contains(&realized), "density {realized}");
    }

    #[test]
    fn corner_nodes_of_grid_are_the_four_corners() {
        let d = GridDeployment::new(8, 8, 100.0).build();
        let corners = d.corner_nodes();
        assert_eq!(
            corners,
            vec![
                NodeId::new(0),
                NodeId::new(7),
                NodeId::new(56),
                NodeId::new(63)
            ]
        );
    }

    #[test]
    fn set_gateways_flags_only_requested_nodes() {
        let mut d = GridDeployment::new(4, 4, 100.0).build();
        d.set_gateways(&[NodeId::new(0), NodeId::new(15)]).unwrap();
        assert_eq!(d.gateways(), vec![NodeId::new(0), NodeId::new(15)]);
        d.set_gateways(&[NodeId::new(5)]).unwrap();
        assert_eq!(d.gateways(), vec![NodeId::new(5)]);
    }

    #[test]
    fn set_gateways_rejects_duplicates_and_unknown_ids() {
        let mut d = GridDeployment::new(2, 2, 100.0).build();
        assert!(matches!(
            d.set_gateways(&[NodeId::new(0), NodeId::new(0)]),
            Err(TopologyError::DuplicateGateway(_))
        ));
        assert!(matches!(
            d.set_gateways(&[NodeId::new(99)]),
            Err(TopologyError::UnknownNode { .. })
        ));
    }

    #[test]
    fn uniform_deployment_is_reproducible_from_seed() {
        let builder = UniformDeployment::new(50, 1000.0);
        let a = builder.build(&mut ChaCha8Rng::seed_from_u64(7));
        let b = builder.build(&mut ChaCha8Rng::seed_from_u64(7));
        let c = builder.build(&mut ChaCha8Rng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_deployment_stays_in_region() {
        let d = UniformDeployment::new(200, 500.0).build(&mut ChaCha8Rng::seed_from_u64(1));
        assert!(d.node_ids().all(|id| d.region().contains(d.position(id))));
        assert_eq!(d.kind(), DeploymentKind::UniformRandom);
    }

    #[test]
    fn heterogeneous_power_spread_is_respected() {
        let d = UniformDeployment::new(100, 1000.0)
            .tx_power_dbm(20.0)
            .heterogeneous_power(10.0)
            .build(&mut ChaCha8Rng::seed_from_u64(3));
        let powers: Vec<f64> = d.nodes().iter().map(|n| n.tx_power_dbm).collect();
        assert!(powers.iter().all(|&p| (15.0..=25.0).contains(&p)));
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 1.0,
            "powers should actually vary, spread={}",
            max - min
        );
    }

    #[test]
    fn density_to_area_matches_definition() {
        let area = density_to_area_m2(64, 25_000.0);
        let d =
            UniformDeployment::with_density(64, 25_000.0).build(&mut ChaCha8Rng::seed_from_u64(0));
        assert!((d.region().area() - area).abs() < 1e-6);
        assert!((d.density_per_km2() - 25_000.0).abs() < 1.0);
    }

    #[test]
    fn build_connected_returns_connected_topology() {
        let builder = UniformDeployment::with_density(64, 10_000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let range = 120.0;
        let d = builder.build_connected(&mut rng, range, 50).unwrap();
        let g = crate::graph::UnitDiskGraphBuilder::new(range).build(&d);
        assert!(g.is_connected());
    }

    #[test]
    fn build_connected_fails_for_hopeless_range() {
        let builder = UniformDeployment::new(50, 10_000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let err = builder.build_connected(&mut rng, 1.0, 3).unwrap_err();
        assert!(matches!(err, TopologyError::Disconnected { .. }));
    }

    #[test]
    fn infinite_density_lattice_is_dense() {
        let d = InfiniteDensityDeployment::new(100.0, 5.0).build();
        assert_eq!(d.kind(), DeploymentKind::InfiniteDensity);
        assert_eq!(d.len(), 21 * 21);
    }

    #[test]
    #[should_panic(expected = "coarser step")]
    fn infinite_density_guards_against_blowup() {
        let _ = InfiniteDensityDeployment::new(10_000.0, 1.0);
    }

    #[test]
    fn from_positions_assigns_contiguous_ids() {
        let d = Deployment::from_positions(
            &[Point2::new(0.0, 0.0), Point2::new(50.0, 0.0)],
            17.0,
            Rect::square(50.0),
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.tx_power_dbm(NodeId::new(1)), 17.0);
        assert_eq!(d.kind(), DeploymentKind::Custom);
    }

    #[test]
    fn from_nodes_rejects_non_contiguous_ids() {
        let nodes = vec![NodeInfo::new(NodeId::new(1), Point2::ORIGIN, 20.0)];
        let err =
            Deployment::from_nodes(nodes, Rect::square(1.0), DeploymentKind::Custom).unwrap_err();
        assert!(matches!(err, TopologyError::InvalidParameter(_)));
    }

    #[test]
    fn empty_deployment_is_rejected() {
        let err =
            Deployment::from_nodes(vec![], Rect::square(1.0), DeploymentKind::Custom).unwrap_err();
        assert_eq!(err, TopologyError::EmptyDeployment);
    }

    #[test]
    fn nearest_node_picks_closest() {
        let d = GridDeployment::new(3, 3, 100.0).build();
        assert_eq!(d.nearest_node(Point2::new(10.0, 10.0)), NodeId::new(0));
        assert_eq!(d.nearest_node(Point2::new(190.0, 190.0)), NodeId::new(8));
    }

    #[test]
    fn randomize_tx_power_changes_each_node_within_bounds() {
        let mut d = GridDeployment::new(4, 4, 100.0).build();
        d.randomize_tx_power(&mut ChaCha8Rng::seed_from_u64(5), 10.0, 30.0);
        assert!(d
            .nodes()
            .iter()
            .all(|n| (10.0..=30.0).contains(&n.tx_power_dbm)));
    }
}
