//! Planar geometry primitives used by deployments and propagation models.
//!
//! All distances are in meters. The paper's analysis (Section IV-B) reasons
//! about closed planar regions, their Euclidean diameter and square-grid
//! convexity; this module provides the concrete types those arguments are
//! checked against in `scream-analysis`.

use serde::{Deserialize, Serialize};

/// A point in the two-dimensional Euclidean plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Euclidean distance to `other`, in meters.
    ///
    /// ```
    /// use scream_topology::Point2;
    /// let d = Point2::new(0.0, 0.0).distance(Point2::new(3.0, 4.0));
    /// assert!((d - 5.0).abs() < 1e-12);
    /// ```
    pub fn distance(&self, other: Point2) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other`, in square meters.
    pub fn distance_squared(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment between `self` and `other`.
    pub fn midpoint(&self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Translates the point by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Point2 {
        Point2::new(self.x + dx, self.y + dy)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (f64, f64) {
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

impl std::fmt::Display for Point2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, used as the deployment region.
///
/// The paper's evaluation varies node density by changing the deployment
/// area while holding the node count at 64 (Section VI-A); [`Rect`] is the
/// region type those deployments are drawn in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner (lower-left).
    pub min: Point2,
    /// Maximum corner (upper-right).
    pub max: Point2,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics if `max.x < min.x` or `max.y < min.y`.
    pub fn new(min: Point2, max: Point2) -> Self {
        assert!(
            max.x >= min.x && max.y >= min.y,
            "rectangle corners are inverted: min={min}, max={max}"
        );
        Self { min, max }
    }

    /// A square with its lower-left corner at the origin and the given side
    /// length in meters.
    pub fn square(side: f64) -> Self {
        Rect::new(Point2::ORIGIN, Point2::new(side, side))
    }

    /// The unit square `[0, 1]^2` used by the asymptotic analysis in
    /// Section IV-B2 of the paper.
    pub fn unit_square() -> Self {
        Rect::square(1.0)
    }

    /// Width of the rectangle in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle in square meters.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Euclidean diameter of the region (Definition 11 in the paper): the
    /// maximum distance between any two contained points, i.e. the diagonal.
    pub fn diameter(&self) -> f64 {
        self.min.distance(self.max)
    }

    /// Returns `true` if the point lies inside the rectangle (inclusive of
    /// the boundary).
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Center of the rectangle.
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// The four corners in counter-clockwise order starting from `min`.
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.min,
            Point2::new(self.max.x, self.min.y),
            self.max,
            Point2::new(self.min.x, self.max.y),
        ]
    }

    /// Clamps a point to lie inside the rectangle.
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Whether an axis-aligned rectangle is *square-grid convex*
    /// (Definition 10 in the paper) with respect to a lattice of step `s`
    /// aligned with the axes.
    ///
    /// For any two interior lattice points of an axis-aligned rectangle, both
    /// monotone staircase lattice paths of the connecting segment stay within
    /// the rectangle — provided the rectangle is actually tiled by the
    /// lattice, i.e. its width and height are (integer) multiples of the
    /// step. A rectangle that ends mid-cell leaves boundary lattice cells
    /// only partially covered, so the staircase argument of Theorem 2 does
    /// not apply to it; this method reports that case as `false`.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_step` is not finite and positive.
    pub fn is_square_grid_convex(&self, lattice_step: f64) -> bool {
        assert!(
            lattice_step.is_finite() && lattice_step > 0.0,
            "lattice step must be finite and positive, got {lattice_step}"
        );
        let tiles = |extent: f64| {
            let cells = extent / lattice_step;
            (cells - cells.round()).abs() <= 1e-9 * cells.round().max(1.0)
        };
        tiles(self.width()) && tiles(self.height())
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point2::new(1.5, -2.0);
        let b = Point2::new(-4.0, 7.25);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point2::ORIGIN;
        let b = Point2::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_squared(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 6.0);
        assert_eq!(a.midpoint(b), Point2::new(1.0, 3.0));
    }

    #[test]
    fn point_tuple_conversions_roundtrip() {
        let p = Point2::new(2.5, -1.0);
        let t: (f64, f64) = p.into();
        assert_eq!(Point2::from(t), p);
    }

    #[test]
    fn rect_dimensions_and_area() {
        let r = Rect::new(Point2::new(1.0, 2.0), Point2::new(4.0, 6.0));
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert!((r.diameter() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rect_contains_boundary_and_interior() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(r.contains(Point2::new(10.0, 10.0)));
        assert!(r.contains(Point2::new(5.0, 5.0)));
        assert!(!r.contains(Point2::new(10.01, 5.0)));
        assert!(!r.contains(Point2::new(-0.01, 5.0)));
    }

    #[test]
    fn rect_clamp_moves_outside_points_to_boundary() {
        let r = Rect::square(10.0);
        assert_eq!(r.clamp(Point2::new(-5.0, 20.0)), Point2::new(0.0, 10.0));
        assert_eq!(r.clamp(Point2::new(3.0, 4.0)), Point2::new(3.0, 4.0));
    }

    #[test]
    fn rect_center_and_corners() {
        let r = Rect::square(2.0);
        assert_eq!(r.center(), Point2::new(1.0, 1.0));
        let corners = r.corners();
        assert_eq!(corners[0], Point2::new(0.0, 0.0));
        assert_eq!(corners[2], Point2::new(2.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point2::new(1.0, 1.0), Point2::new(0.0, 0.0));
    }

    #[test]
    fn unit_square_has_unit_area_and_sqrt2_diameter() {
        let r = Rect::unit_square();
        assert_eq!(r.area(), 1.0);
        assert!((r.diameter() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn axis_aligned_rectangles_are_square_grid_convex() {
        assert!(Rect::square(100.0).is_square_grid_convex(10.0));
    }

    #[test]
    fn misaligned_lattice_steps_are_not_square_grid_convex() {
        // 100 m sides are not tiled by a 7 m lattice (100/7 is not integer).
        assert!(!Rect::square(100.0).is_square_grid_convex(7.0));
        // Nor by a step larger than the rectangle itself.
        assert!(!Rect::square(100.0).is_square_grid_convex(150.0));
        // A non-square rectangle needs both extents to be multiples.
        let r = Rect::new(Point2::ORIGIN, Point2::new(30.0, 45.0));
        assert!(r.is_square_grid_convex(15.0));
        assert!(!r.is_square_grid_convex(10.0));
    }

    #[test]
    #[should_panic(expected = "lattice step")]
    fn non_positive_lattice_steps_are_rejected() {
        let _ = Rect::square(10.0).is_square_grid_convex(0.0);
    }
}
