//! Error types for topology construction.

use crate::node::NodeId;

/// Errors produced while building deployments, graphs or routing forests.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The deployment contains no nodes.
    EmptyDeployment,
    /// A referenced node id is out of range for the deployment.
    UnknownNode {
        /// The offending id.
        id: NodeId,
        /// Number of nodes in the deployment.
        node_count: usize,
    },
    /// The communication graph is not connected, so no routing forest
    /// reaching every node from the gateways exists.
    Disconnected {
        /// Number of nodes unreachable from any gateway.
        unreachable: usize,
    },
    /// No gateways were supplied when building a routing forest.
    NoGateways,
    /// A gateway id was listed more than once.
    DuplicateGateway(NodeId),
    /// The demand vector length does not match the number of nodes.
    DemandLengthMismatch {
        /// Number of demands supplied.
        demands: usize,
        /// Number of nodes in the deployment.
        nodes: usize,
    },
    /// An invalid parameter was supplied (non-positive range, zero nodes, ...).
    InvalidParameter(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::EmptyDeployment => write!(f, "deployment contains no nodes"),
            TopologyError::UnknownNode { id, node_count } => {
                write!(f, "node {id} does not exist (deployment has {node_count} nodes)")
            }
            TopologyError::Disconnected { unreachable } => write!(
                f,
                "communication graph is disconnected: {unreachable} node(s) unreachable from the gateways"
            ),
            TopologyError::NoGateways => write!(f, "no gateway nodes were specified"),
            TopologyError::DuplicateGateway(id) => {
                write!(f, "gateway {id} listed more than once")
            }
            TopologyError::DemandLengthMismatch { demands, nodes } => write!(
                f,
                "demand vector has {demands} entries but the deployment has {nodes} nodes"
            ),
            TopologyError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_relevant_entity() {
        let e = TopologyError::UnknownNode {
            id: NodeId::new(9),
            node_count: 4,
        };
        assert!(e.to_string().contains("n9"));
        assert!(e.to_string().contains('4'));

        let e = TopologyError::Disconnected { unreachable: 3 };
        assert!(e.to_string().contains('3'));

        let e = TopologyError::DemandLengthMismatch {
            demands: 5,
            nodes: 7,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('7'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&TopologyError::NoGateways);
    }
}
