//! Per-node traffic demands and their aggregation along the routing forest.
//!
//! Each mesh node generates some number of packets per scheduling period that
//! must reach its gateway (the paper draws per-node demands uniformly from
//! `[1, 10]`, Section VI-A). Because routing follows a forest, the aggregated
//! demand on the edge owned by node `u` equals the sum of the demands
//! generated in the subtree rooted at `u` — exactly the quantity the
//! schedulers must satisfy with `demand(e)` slots.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::node::NodeId;
use crate::routing::{Link, RoutingForest};

/// Configuration for randomly generated per-node demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DemandConfig {
    /// Minimum per-node demand (inclusive), in packets per period.
    pub min: u32,
    /// Maximum per-node demand (inclusive), in packets per period.
    pub max: u32,
}

impl DemandConfig {
    /// The paper's configuration: uniform in `[1, 10]`.
    pub const PAPER: DemandConfig = DemandConfig { min: 1, max: 10 };

    /// Unit demand on every node (the simplified scenario the paper
    /// criticizes prior work for assuming).
    pub const UNIT: DemandConfig = DemandConfig { min: 1, max: 1 };

    /// Creates a configuration with the given inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `min == 0` (zero-demand nodes are expressed by
    /// making the node a gateway or by building the vector explicitly).
    pub fn new(min: u32, max: u32) -> Self {
        assert!(min <= max, "demand bounds are inverted: [{min}, {max}]");
        assert!(min > 0, "minimum demand must be at least 1");
        Self { min, max }
    }
}

impl Default for DemandConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Per-node generated traffic demands, in packets per scheduling period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandVector {
    demands: Vec<u32>,
}

impl DemandVector {
    /// Wraps an explicit demand vector (`demands[i]` is the demand generated
    /// at node `i`).
    pub fn from_vec(demands: Vec<u32>) -> Self {
        Self { demands }
    }

    /// Generates random demands for `node_count` nodes using the supplied
    /// configuration and RNG. Gateways listed in `gateways` get demand 0
    /// (they sink traffic rather than generating upstream traffic).
    pub fn generate<R: Rng + ?Sized>(
        node_count: usize,
        config: DemandConfig,
        gateways: &[NodeId],
        rng: &mut R,
    ) -> Self {
        let mut demands: Vec<u32> = (0..node_count)
            .map(|_| rng.gen_range(config.min..=config.max))
            .collect();
        for g in gateways {
            if g.index() < node_count {
                demands[g.index()] = 0;
            }
        }
        Self { demands }
    }

    /// Demand generated at `node`.
    pub fn demand(&self, node: NodeId) -> u32 {
        self.demands[node.index()]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// Returns `true` if the vector covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Sum of all generated demands.
    pub fn total(&self) -> u64 {
        self.demands.iter().map(|&d| d as u64).sum()
    }

    /// Raw access to the demand values.
    pub fn as_slice(&self) -> &[u32] {
        &self.demands
    }
}

/// Aggregated demands on the tree edges of a routing forest.
///
/// `LinkDemands` is the actual scheduling input: every link `e` must be
/// allocated `demand(e)` slots by a feasible schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkDemands {
    /// `aggregated[v]` is the demand on the edge owned by node `v`
    /// (0 for gateways).
    aggregated: Vec<u64>,
    links: Vec<Link>,
}

impl LinkDemands {
    /// Aggregates per-node demands along the routing forest: the demand on
    /// the edge owned by node `u` is the sum of generated demands over the
    /// subtree rooted at `u`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DemandLengthMismatch`] if the demand vector
    /// does not cover exactly the forest's nodes.
    pub fn aggregate(
        forest: &RoutingForest,
        demands: &DemandVector,
    ) -> Result<Self, TopologyError> {
        let n = forest.node_count();
        if demands.len() != n {
            return Err(TopologyError::DemandLengthMismatch {
                demands: demands.len(),
                nodes: n,
            });
        }
        // Propagate each node's generated demand up every edge on its route.
        let mut aggregated = vec![0u64; n];
        for v in (0..n as u32).map(NodeId::new) {
            let d = demands.demand(v) as u64;
            if d == 0 {
                continue;
            }
            let mut current = v;
            loop {
                aggregated[current.index()] += d;
                match forest.parent(current) {
                    Some(p) => current = p,
                    None => break,
                }
            }
        }
        // The accumulation above also adds to gateway entries; gateways own
        // no edge, so zero them out.
        for &g in forest.gateways() {
            aggregated[g.index()] = 0;
        }
        let links = forest.tree_edges().collect();
        Ok(Self { aggregated, links })
    }

    /// Builds link demands directly from an arbitrary link set with explicit
    /// per-link demands (the paper notes the protocols apply to arbitrary
    /// link sets, not only forests). Links must have distinct heads.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if two links share a head
    /// node (the node↔edge mapping requires unique owners).
    pub fn from_links(
        node_count: usize,
        link_demands: &[(Link, u64)],
    ) -> Result<Self, TopologyError> {
        Self::build_from_links(node_count, link_demands, true)
    }

    /// Like [`from_links`](Self::from_links) but *without* the unique-owner
    /// guard: links sharing a head node are all kept, and the shared
    /// aggregated entry holds the last demand written (the representation
    /// stores one demand per owning head, so distinct demands on a shared
    /// head cannot be expressed).
    ///
    /// Such an instance violates the paper's one-uplink-per-node model; this
    /// constructor exists so downstream defensive checks — the distributed
    /// runtime's `ConflictingLinkOwnership` rejection — can be exercised, and
    /// for experiments that feed deliberately malformed instances to the
    /// verifier.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if a link endpoint is out of
    /// range.
    pub fn from_links_unchecked(
        node_count: usize,
        link_demands: &[(Link, u64)],
    ) -> Result<Self, TopologyError> {
        Self::build_from_links(node_count, link_demands, false)
    }

    /// Shared body of [`from_links`](Self::from_links) and
    /// [`from_links_unchecked`](Self::from_links_unchecked); the two differ
    /// only in whether the unique-owner guard is enforced.
    fn build_from_links(
        node_count: usize,
        link_demands: &[(Link, u64)],
        enforce_unique_owner: bool,
    ) -> Result<Self, TopologyError> {
        let mut aggregated = vec![0u64; node_count];
        let mut links = Vec::with_capacity(link_demands.len());
        for &(link, demand) in link_demands {
            if link.head.index() >= node_count || link.tail.index() >= node_count {
                return Err(TopologyError::UnknownNode {
                    id: if link.head.index() >= node_count {
                        link.head
                    } else {
                        link.tail
                    },
                    node_count,
                });
            }
            if enforce_unique_owner && aggregated[link.head.index()] != 0 {
                return Err(TopologyError::InvalidParameter(format!(
                    "node {} owns more than one link",
                    link.head
                )));
            }
            if demand == 0 {
                continue;
            }
            aggregated[link.head.index()] = demand;
            links.push(link);
        }
        links.sort_unstable();
        Ok(Self { aggregated, links })
    }

    /// Aggregated demand on the edge owned by `node` (0 for gateways and for
    /// nodes that own no link).
    pub fn demand_of(&self, node: NodeId) -> u64 {
        self.aggregated[node.index()]
    }

    /// Aggregated demand on `link`, if `link` is one of the scheduled links.
    pub fn demand_of_link(&self, link: Link) -> Option<u64> {
        self.links
            .contains(&link)
            .then(|| self.aggregated[link.head.index()])
    }

    /// The links to be scheduled, ordered by owner id.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.aggregated.len()
    }

    /// Total traffic demand `TD`: the sum of aggregated demands over all
    /// links. This is the quantity appearing in the complexity bound of
    /// Theorem 5 and the length of the *serialized* (linear) schedule that
    /// Figures 6 and 7 normalize against.
    pub fn total_demand(&self) -> u64 {
        self.links
            .iter()
            .map(|l| self.aggregated[l.head.index()])
            .sum()
    }

    /// Links with non-zero demand, paired with their demand.
    pub fn demanded_links(&self) -> impl Iterator<Item = (Link, u64)> + '_ {
        self.links
            .iter()
            .map(move |&l| (l, self.aggregated[l.head.index()]))
            .filter(|&(_, d)| d > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::GridDeployment;
    use crate::graph::UnitDiskGraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line_forest(n: usize) -> RoutingForest {
        let mut g = crate::graph::Graph::new(n, crate::graph::GraphKind::Undirected);
        for i in 0..n - 1 {
            g.add_edge(NodeId::new(i as u32), NodeId::new(i as u32 + 1))
                .unwrap();
        }
        RoutingForest::shortest_path(&g, &[NodeId::new(0)], 0).unwrap()
    }

    #[test]
    fn demand_config_paper_bounds() {
        assert_eq!(DemandConfig::PAPER.min, 1);
        assert_eq!(DemandConfig::PAPER.max, 10);
        assert_eq!(DemandConfig::default(), DemandConfig::PAPER);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn demand_config_rejects_inverted_bounds() {
        let _ = DemandConfig::new(5, 2);
    }

    #[test]
    fn generated_demands_respect_bounds_and_zero_gateways() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let d = DemandVector::generate(64, DemandConfig::PAPER, &[NodeId::new(0)], &mut rng);
        assert_eq!(d.len(), 64);
        assert_eq!(d.demand(NodeId::new(0)), 0);
        for v in (1..64).map(NodeId::new) {
            assert!((1..=10).contains(&d.demand(v)));
        }
        assert!(d.total() >= 63 && d.total() <= 630);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = DemandVector::generate(
            32,
            DemandConfig::PAPER,
            &[],
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        let b = DemandVector::generate(
            32,
            DemandConfig::PAPER,
            &[],
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn line_aggregation_accumulates_subtree_demands() {
        // Line 0 - 1 - 2 - 3 rooted at 0 with unit demands: the edge owned by
        // node 1 carries the demand of nodes 1, 2 and 3.
        let forest = line_forest(4);
        let demands = DemandVector::from_vec(vec![0, 1, 1, 1]);
        let link_demands = LinkDemands::aggregate(&forest, &demands).unwrap();
        assert_eq!(link_demands.demand_of(NodeId::new(1)), 3);
        assert_eq!(link_demands.demand_of(NodeId::new(2)), 2);
        assert_eq!(link_demands.demand_of(NodeId::new(3)), 1);
        assert_eq!(link_demands.demand_of(NodeId::new(0)), 0);
        assert_eq!(link_demands.total_demand(), 6);
    }

    #[test]
    fn aggregation_conserves_flow_at_every_node() {
        // At every non-gateway node: outgoing demand = generated + sum of
        // children's outgoing demands.
        let d = GridDeployment::new(6, 6, 100.0).build();
        let g = UnitDiskGraphBuilder::new(100.0).build(&d);
        let gws = d.corner_nodes();
        let forest = RoutingForest::shortest_path(&g, &gws, 7).unwrap();
        let demands = DemandVector::generate(
            36,
            DemandConfig::PAPER,
            &gws,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        let agg = LinkDemands::aggregate(&forest, &demands).unwrap();
        for v in (0..36).map(NodeId::new) {
            if forest.is_gateway(v) {
                continue;
            }
            let children_sum: u64 = forest.children(v).iter().map(|&c| agg.demand_of(c)).sum();
            assert_eq!(
                agg.demand_of(v),
                demands.demand(v) as u64 + children_sum,
                "flow conservation violated at {v}"
            );
        }
    }

    #[test]
    fn gateway_inflow_equals_total_generated_demand() {
        let d = GridDeployment::new(8, 8, 100.0).build();
        let g = UnitDiskGraphBuilder::new(100.0).build(&d);
        let gws = d.corner_nodes();
        let forest = RoutingForest::shortest_path(&g, &gws, 3).unwrap();
        let demands = DemandVector::generate(
            64,
            DemandConfig::PAPER,
            &gws,
            &mut ChaCha8Rng::seed_from_u64(2),
        );
        let agg = LinkDemands::aggregate(&forest, &demands).unwrap();
        // Sum of demands on edges whose tail is a gateway equals the total
        // generated demand.
        let inflow: u64 = agg
            .demanded_links()
            .filter(|(l, _)| gws.contains(&l.tail))
            .map(|(_, d)| d)
            .sum();
        assert_eq!(inflow, demands.total());
    }

    #[test]
    fn aggregate_rejects_length_mismatch() {
        let forest = line_forest(4);
        let demands = DemandVector::from_vec(vec![1, 2]);
        assert!(matches!(
            LinkDemands::aggregate(&forest, &demands),
            Err(TopologyError::DemandLengthMismatch { .. })
        ));
    }

    #[test]
    fn from_links_builds_arbitrary_link_sets() {
        let l1 = Link::new(NodeId::new(1), NodeId::new(0));
        let l2 = Link::new(NodeId::new(2), NodeId::new(3));
        let ld = LinkDemands::from_links(4, &[(l1, 5), (l2, 2)]).unwrap();
        assert_eq!(ld.demand_of_link(l1), Some(5));
        assert_eq!(ld.demand_of_link(l2), Some(2));
        assert_eq!(
            ld.demand_of_link(Link::new(NodeId::new(3), NodeId::new(0))),
            None
        );
        assert_eq!(ld.total_demand(), 7);
        assert_eq!(ld.links().len(), 2);
    }

    #[test]
    fn from_links_rejects_duplicate_heads_and_unknown_nodes() {
        let l1 = Link::new(NodeId::new(1), NodeId::new(0));
        let l2 = Link::new(NodeId::new(1), NodeId::new(2));
        assert!(matches!(
            LinkDemands::from_links(3, &[(l1, 5), (l2, 2)]),
            Err(TopologyError::InvalidParameter(_))
        ));
        let bad = Link::new(NodeId::new(9), NodeId::new(0));
        assert!(matches!(
            LinkDemands::from_links(3, &[(bad, 1)]),
            Err(TopologyError::UnknownNode { .. })
        ));
    }

    #[test]
    fn from_links_unchecked_admits_shared_heads() {
        // The guarded constructor rejects the shared head; the unchecked one
        // keeps both links (the runtime's ConflictingLinkOwnership check is
        // the consumer-side defense this enables testing).
        let l1 = Link::new(NodeId::new(1), NodeId::new(0));
        let l2 = Link::new(NodeId::new(1), NodeId::new(2));
        assert!(LinkDemands::from_links(3, &[(l1, 5), (l2, 2)]).is_err());
        let ld = LinkDemands::from_links_unchecked(3, &[(l1, 5), (l2, 2)]).unwrap();
        assert_eq!(ld.links().len(), 2);
        // One demand cell per owning head: the last write wins for both.
        assert_eq!(ld.demand_of_link(l1), Some(2));
        assert_eq!(ld.demand_of_link(l2), Some(2));
        assert_eq!(ld.demanded_links().count(), 2);
        // Out-of-range endpoints are still rejected.
        let bad = Link::new(NodeId::new(9), NodeId::new(0));
        assert!(matches!(
            LinkDemands::from_links_unchecked(3, &[(bad, 1)]),
            Err(TopologyError::UnknownNode { .. })
        ));
    }

    #[test]
    fn zero_demand_links_are_dropped() {
        let l1 = Link::new(NodeId::new(1), NodeId::new(0));
        let l2 = Link::new(NodeId::new(2), NodeId::new(0));
        let ld = LinkDemands::from_links(3, &[(l1, 0), (l2, 3)]).unwrap();
        assert_eq!(ld.links().len(), 1);
        assert_eq!(ld.demanded_links().count(), 1);
    }
}
