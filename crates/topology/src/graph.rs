//! Communication and sensitivity graphs, plus the graph algorithms used by
//! the SCREAM protocols and their analysis.
//!
//! The paper distinguishes the *communication graph* `G = (V, E)` (links that
//! exist in the absence of interference) from the *sensitivity graph*
//! `G_S = (V, E_S)` (Definition 1: `(u, v) ∈ E_S` iff `v` can detect channel
//! activity when only `u` transmits). The SCREAM primitive floods one hop of
//! `G_S` per scream slot, so its required duration is the *interference
//! diameter* `ID(G_S)` (Definition 2) — the maximum hop distance between any
//! pair of nodes.

use serde::{Deserialize, Serialize};

use crate::deploy::Deployment;
use crate::error::TopologyError;
use crate::node::NodeId;

/// Whether a [`Graph`] is directed or undirected.
///
/// The communication graph is undirected (unidirectional links are discarded
/// because link-layer ACKs are required, Section II); the sensitivity graph is
/// directed in general but becomes undirected under the equal-carrier-sense
///-range assumption of Section IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphKind {
    /// Every edge `(u, v)` implies the reverse edge `(v, u)`.
    Undirected,
    /// Edges are one-way.
    Directed,
}

/// A graph over the nodes of a deployment, stored as adjacency lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    kind: GraphKind,
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph (no edges) over `n` nodes.
    pub fn new(n: usize, kind: GraphKind) -> Self {
        Self {
            kind,
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Whether the graph is directed or undirected.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges. For undirected graphs each edge is counted once.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds an edge from `u` to `v`. For undirected graphs the reverse edge
    /// is added implicitly. Duplicate edges and self-loops are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if either endpoint is out of
    /// range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), TopologyError> {
        let n = self.node_count();
        for id in [u, v] {
            if id.index() >= n {
                return Err(TopologyError::UnknownNode { id, node_count: n });
            }
        }
        self.insert_edge(u, v);
        Ok(())
    }

    /// Adds an edge whose endpoints the caller guarantees are in range, e.g.
    /// builders iterating node indices `0..n` of this very graph. Public
    /// counterpart of [`Self::insert_edge`] for those callers, so in-range
    /// insertion does not force an `expect` on an error that cannot occur
    /// (P1). Out-of-range endpoints are a caller bug, checked in debug builds.
    pub fn add_edge_unchecked(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(
            u.index() < self.node_count() && v.index() < self.node_count(),
            "add_edge_unchecked endpoints out of range: ({u}, {v}) with {} nodes",
            self.node_count()
        );
        self.insert_edge(u, v);
    }

    /// Edge insertion for callers that guarantee both endpoints are in range
    /// (pruned copies, transposes, builders iterating `0..n`). Keeps the
    /// duplicate/self-loop handling of [`Self::add_edge`] without forcing an
    /// `expect` on an error that cannot occur (P1).
    fn insert_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v || self.has_edge(u, v) {
            return;
        }
        self.adjacency[u.index()].push(v);
        if self.kind == GraphKind::Undirected {
            self.adjacency[v.index()].push(u);
        }
        self.edge_count += 1;
    }

    /// A copy of this graph with the given edges removed (fault pruning).
    ///
    /// Each pair removes the edge between its endpoints regardless of
    /// orientation in an undirected graph; pairs naming absent edges or
    /// out-of-range nodes are ignored, so a stale fault list is harmless.
    /// Node count and ids are preserved — pruning never reindexes.
    pub fn without_edges(&self, dead: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let dead: Vec<(NodeId, NodeId)> = dead.into_iter().collect();
        let is_dead = |u: NodeId, v: NodeId| {
            dead.iter().any(|&(a, b)| {
                (a, b) == (u, v) || (self.kind == GraphKind::Undirected && (a, b) == (v, u))
            })
        };
        let mut pruned = Self::new(self.node_count(), self.kind);
        for (u, v) in self.edges() {
            if !is_dead(u, v) {
                pruned.insert_edge(u, v);
            }
        }
        pruned
    }

    /// A copy of this graph with the given nodes isolated (fault pruning):
    /// every edge incident to a dead node is dropped, but the node itself
    /// keeps its id so downstream indexing stays valid. Out-of-range ids are
    /// ignored.
    pub fn without_nodes(&self, dead: &[NodeId]) -> Self {
        let mut pruned = Self::new(self.node_count(), self.kind);
        for (u, v) in self.edges() {
            if !dead.contains(&u) && !dead.contains(&v) {
                pruned.insert_edge(u, v);
            }
        }
        pruned
    }

    /// Returns `true` if an edge from `u` to `v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency
            .get(u.index())
            .map(|nbrs| nbrs.contains(&v))
            .unwrap_or(false)
    }

    /// Out-neighbors of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[u.index()]
    }

    /// Degree (number of out-neighbors) of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u.index()].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// Iterator over all edges. For undirected graphs each edge appears once,
    /// with the smaller id first.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(move |(u, nbrs)| {
                let u = NodeId::new(u as u32);
                nbrs.iter()
                    .copied()
                    .filter(move |&v| self.kind == GraphKind::Directed || u < v)
                    .map(move |v| (u, v))
            })
    }

    /// Average node degree, i.e. the *neighbor density* `ρ(G)` of
    /// Definition 6 in the paper.
    pub fn neighbor_density(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        total as f64 / self.node_count() as f64
    }

    /// Breadth-first hop distances from `source` to every node.
    ///
    /// Unreachable nodes get `usize::MAX`.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<usize> {
        let n = self.node_count();
        let mut dist = vec![usize::MAX; n];
        if source.index() >= n {
            return dist;
        }
        let mut queue = std::collections::VecDeque::new();
        dist[source.index()] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            for &v in self.neighbors(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Hop distance from `u` to `v`, or `None` if `v` is unreachable.
    pub fn hop_distance(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let d = self.bfs_distances(u)[v.index()];
        (d != usize::MAX).then_some(d)
    }

    /// Whether every node is reachable from every other node.
    ///
    /// For undirected graphs this is ordinary connectivity; for directed
    /// graphs it is strong connectivity (checked by running a forward BFS
    /// from node 0 and a BFS from node 0 in the transposed graph).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let start = NodeId::new(0);
        let forward_ok = self.bfs_distances(start).iter().all(|&d| d != usize::MAX);
        if !forward_ok {
            return false;
        }
        match self.kind {
            GraphKind::Undirected => true,
            GraphKind::Directed => {
                let t = self.transposed();
                t.bfs_distances(start).iter().all(|&d| d != usize::MAX)
            }
        }
    }

    /// Number of nodes unreachable from `source`.
    pub fn unreachable_from(&self, source: NodeId) -> usize {
        self.bfs_distances(source)
            .iter()
            .filter(|&&d| d == usize::MAX)
            .count()
    }

    /// The transposed graph (edges reversed). For undirected graphs this is
    /// a clone.
    pub fn transposed(&self) -> Graph {
        match self.kind {
            GraphKind::Undirected => self.clone(),
            GraphKind::Directed => {
                let mut t = Graph::new(self.node_count(), GraphKind::Directed);
                for (u, v) in self.edges() {
                    t.insert_edge(v, u);
                }
                t
            }
        }
    }

    /// The hop diameter of the graph: the maximum finite hop distance between
    /// any ordered pair of nodes, or `None` if the graph is not (strongly)
    /// connected.
    ///
    /// Applied to the sensitivity graph this is exactly the *interference
    /// diameter* `ID(G_S)` of Definition 2, which lower-bounds the number of
    /// scream slots `K` needed for the SCREAM primitive to implement a
    /// network-wide OR.
    pub fn diameter(&self) -> Option<usize> {
        if !self.is_connected() {
            return None;
        }
        let mut best = 0usize;
        for u in self.nodes() {
            let far = self
                .bfs_distances(u)
                .into_iter()
                .filter(|&d| d != usize::MAX)
                .max()
                .unwrap_or(0);
            best = best.max(far);
        }
        Some(best)
    }

    /// Interference diameter as defined in the paper: the hop diameter, with
    /// disconnected graphs mapping to infinity (represented as `usize::MAX`).
    pub fn interference_diameter(&self) -> usize {
        self.diameter().unwrap_or(usize::MAX)
    }

    /// Returns `true` if `other` has every edge of `self` (i.e. `self` is a
    /// subgraph of `other` over the same node set). Used to check the paper's
    /// observation that the sensitivity graph is a super-graph of the
    /// communication graph.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        if self.node_count() != other.node_count() {
            return false;
        }
        self.edges().all(|(u, v)| {
            other.has_edge(u, v) && (other.kind == GraphKind::Directed || other.has_edge(v, u))
        })
    }

    /// Minimum hop distance between two *links* (Definition 3): the minimum
    /// hop distance between any endpoint of `a` and any endpoint of `b`.
    pub fn link_hop_distance(&self, a: (NodeId, NodeId), b: (NodeId, NodeId)) -> Option<usize> {
        let mut best: Option<usize> = None;
        for &u in &[a.0, a.1] {
            let dist = self.bfs_distances(u);
            for &v in &[b.0, b.1] {
                let d = dist[v.index()];
                if d != usize::MAX {
                    best = Some(best.map_or(d, |b| b.min(d)));
                }
            }
        }
        best
    }
}

/// Builds a communication graph by connecting every pair of nodes within a
/// fixed communication range (a *unit-disk* graph).
///
/// This is the geometric graph model used throughout Section IV-B of the
/// paper (where the carrier-sense range is assumed equal to the communication
/// range `r`, making the sensitivity graph coincide with the communication
/// graph). For SINR-derived communication graphs with heterogeneous powers,
/// see `scream-netsim`'s `RadioEnvironment::communication_graph`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitDiskGraphBuilder {
    range_m: f64,
}

impl UnitDiskGraphBuilder {
    /// Creates a builder with the given communication range in meters.
    ///
    /// # Panics
    ///
    /// Panics if the range is not strictly positive and finite.
    pub fn new(range_m: f64) -> Self {
        assert!(
            range_m.is_finite() && range_m > 0.0,
            "communication range must be positive and finite, got {range_m}"
        );
        Self { range_m }
    }

    /// The configured range in meters.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Builds the undirected unit-disk graph over the deployment's nodes.
    pub fn build(&self, deployment: &Deployment) -> Graph {
        let n = deployment.len();
        let mut g = Graph::new(n, GraphKind::Undirected);
        let r2 = self.range_m * self.range_m;
        for i in 0..n {
            let pi = deployment.position(NodeId::new(i as u32));
            for j in (i + 1)..n {
                let pj = deployment.position(NodeId::new(j as u32));
                if pi.distance_squared(pj) <= r2 {
                    g.insert_edge(NodeId::new(i as u32), NodeId::new(j as u32));
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::GridDeployment;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n, GraphKind::Undirected);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(NodeId::new(i as u32), NodeId::new(i as u32 + 1))
                .unwrap();
        }
        g
    }

    #[test]
    fn without_edges_prunes_either_orientation_and_keeps_ids() {
        let g = path_graph(4);
        // The dead pair is given tail-first; the undirected graph must still
        // drop the edge, and absent pairs are ignored.
        let pruned = g.without_edges([
            (NodeId::new(2), NodeId::new(1)),
            (NodeId::new(0), NodeId::new(3)),
        ]);
        assert_eq!(pruned.node_count(), 4);
        assert_eq!(pruned.edge_count(), 2);
        assert!(pruned.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!pruned.has_edge(NodeId::new(1), NodeId::new(2)));
        assert!(!pruned.is_connected());
        // The original is untouched.
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn without_nodes_isolates_but_never_reindexes() {
        let g = path_graph(5);
        let pruned = g.without_nodes(&[NodeId::new(2)]);
        assert_eq!(pruned.node_count(), 5);
        assert_eq!(pruned.edge_count(), 2);
        assert_eq!(pruned.degree(NodeId::new(2)), 0);
        assert!(pruned.has_edge(NodeId::new(3), NodeId::new(4)));
        assert!(!pruned.is_connected());
    }

    #[test]
    fn empty_graph_is_connected_with_zero_diameter() {
        let g = Graph::new(0, GraphKind::Undirected);
        assert!(g.is_connected());
        assert!(g.is_empty());
        assert_eq!(g.neighbor_density(), 0.0);
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::new(1, GraphKind::Undirected);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
        assert_eq!(g.interference_diameter(), 0);
    }

    #[test]
    fn add_edge_rejects_unknown_nodes() {
        let mut g = Graph::new(3, GraphKind::Undirected);
        let err = g.add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert!(matches!(err, TopologyError::UnknownNode { .. }));
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_ignored() {
        let mut g = Graph::new(3, GraphKind::Undirected);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(1), NodeId::new(0)).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(2)).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(2)), 0);
    }

    #[test]
    fn undirected_edges_are_symmetric() {
        let mut g = Graph::new(2, GraphKind::Undirected);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn directed_edges_are_one_way() {
        let mut g = Graph::new(2, GraphKind::Directed);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn path_graph_distances_and_diameter() {
        let g = path_graph(5);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.hop_distance(NodeId::new(0), NodeId::new(4)), Some(4));
        assert_eq!(g.hop_distance(NodeId::new(2), NodeId::new(2)), Some(0));
    }

    #[test]
    fn disconnected_graph_has_infinite_interference_diameter() {
        let mut g = path_graph(4);
        // Add an isolated node.
        g = {
            let mut h = Graph::new(5, GraphKind::Undirected);
            for (u, v) in g.edges() {
                h.add_edge(u, v).unwrap();
            }
            h
        };
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.interference_diameter(), usize::MAX);
        assert_eq!(g.unreachable_from(NodeId::new(0)), 1);
    }

    #[test]
    fn directed_cycle_is_strongly_connected_but_chain_is_not() {
        let mut cycle = Graph::new(3, GraphKind::Directed);
        cycle.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        cycle.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        cycle.add_edge(NodeId::new(2), NodeId::new(0)).unwrap();
        assert!(cycle.is_connected());
        assert_eq!(cycle.diameter(), Some(2));

        let mut chain = Graph::new(3, GraphKind::Directed);
        chain.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        chain.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        assert!(!chain.is_connected());
    }

    #[test]
    fn neighbor_density_counts_average_degree() {
        let g = path_graph(4); // degrees 1,2,2,1 -> average 1.5
        assert!((g.neighbor_density() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_yields_each_undirected_edge_once() {
        let g = path_graph(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn transposed_directed_graph_reverses_edges() {
        let mut g = Graph::new(2, GraphKind::Directed);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let t = g.transposed();
        assert!(t.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!t.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn subgraph_relation_holds_for_supersets() {
        let small = path_graph(4);
        let mut big = path_graph(4);
        big.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        assert!(small.is_subgraph_of(&big));
        assert!(!big.is_subgraph_of(&small));
        assert!(small.is_subgraph_of(&small));
    }

    #[test]
    fn link_hop_distance_uses_closest_endpoints() {
        let g = path_graph(6);
        let a = (NodeId::new(0), NodeId::new(1));
        let b = (NodeId::new(4), NodeId::new(5));
        assert_eq!(g.link_hop_distance(a, b), Some(3));
        assert_eq!(g.link_hop_distance(a, a), Some(0));
    }

    #[test]
    fn unit_disk_graph_on_grid_connects_lattice_neighbors_only() {
        let d = GridDeployment::new(4, 4, 100.0).build();
        let g = UnitDiskGraphBuilder::new(100.0).build(&d);
        assert!(g.is_connected());
        // Interior nodes have 4 neighbors, corners 2, edges 3.
        let degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
        assert_eq!(*degrees.iter().max().unwrap(), 4);
        assert_eq!(*degrees.iter().min().unwrap(), 2);
        // Diagonal neighbors (distance ~141m) must not be connected.
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(5)));
    }

    #[test]
    fn unit_disk_grid_diameter_is_manhattan_diameter() {
        let d = GridDeployment::new(4, 4, 100.0).build();
        let g = UnitDiskGraphBuilder::new(100.0).build(&d);
        // Manhattan distance corner to corner of a 4x4 grid: 3 + 3 = 6 hops.
        assert_eq!(g.diameter(), Some(6));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn unit_disk_builder_rejects_nonpositive_range() {
        let _ = UnitDiskGraphBuilder::new(0.0);
    }
}
