//! Routing forests towards the gateways and the node↔edge association used
//! by the distributed schedulers.
//!
//! Traffic in the mesh is routed along reverse trees rooted at the gateways
//! (Section II): each non-gateway node joins the tree of the gateway at
//! minimum hop distance, breaking ties randomly. The edge connecting a node
//! to its parent is "owned" by the deeper node (the child), which is the node
//! in charge of allocating slots for it; this gives the one-to-one mapping
//! between non-root nodes and edges that the PDD/FDD protocols rely on.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::graph::Graph;
use crate::node::NodeId;

/// A directed link `head -> tail` along which data packets flow (the ACK
/// flows `tail -> head` in the second sub-slot).
///
/// In a routing forest the head is the child (deeper) node and the tail is
/// its parent; the head owns the link for scheduling purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting endpoint (the child in the routing tree).
    pub head: NodeId,
    /// Receiving endpoint (the parent in the routing tree).
    pub tail: NodeId,
}

impl Link {
    /// Creates a link from head (transmitter) to tail (receiver).
    pub const fn new(head: NodeId, tail: NodeId) -> Self {
        Self { head, tail }
    }

    /// Returns `true` if `node` is one of the two endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.head == node || self.tail == node
    }

    /// Returns `true` if the two links share an endpoint. Links sharing an
    /// endpoint can never be scheduled in the same slot (a half-duplex radio
    /// cannot transmit and receive simultaneously).
    pub fn shares_endpoint(&self, other: &Link) -> bool {
        self.touches(other.head) || self.touches(other.tail)
    }

    /// The reverse link (ACK direction).
    pub fn reversed(&self) -> Link {
        Link::new(self.tail, self.head)
    }
}

impl std::fmt::Display for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}", self.head, self.tail)
    }
}

/// Struct-of-arrays storage for a list of [`Link`]s: two contiguous `u32`
/// buffers instead of a `Vec<Link>` of id pairs.
///
/// At million-link scale the array-of-structs layout wastes cache lines when
/// an algorithm touches only one endpoint per link (the spatial ledger scans
/// heads and tails separately), and per-entity maps keyed by `Link` cost a
/// hash per probe. `FlatLinks` keeps heads and tails in separate flat
/// buffers; index `i` in both buffers describes the same link, so the index
/// doubles as a stable dense link id for side tables (`Vec<f64>` gain or
/// demand caches indexed by link id, no maps).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatLinks {
    heads: Vec<u32>,
    tails: Vec<u32>,
}

impl FlatLinks {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates empty storage with room for `capacity` links.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heads: Vec::with_capacity(capacity),
            tails: Vec::with_capacity(capacity),
        }
    }

    /// Builds flat storage from a slice of links, preserving order.
    pub fn from_links(links: &[Link]) -> Self {
        Self {
            heads: links.iter().map(|l| l.head.0).collect(),
            tails: links.iter().map(|l| l.tail.0).collect(),
        }
    }

    /// Appends a link, returning its dense index.
    pub fn push(&mut self, link: Link) -> usize {
        let index = self.heads.len();
        self.heads.push(link.head.0);
        self.tails.push(link.tail.0);
        index
    }

    /// The link at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> Link {
        Link::new(
            NodeId::new(self.heads[index]),
            NodeId::new(self.tails[index]),
        )
    }

    /// Number of links stored.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// Whether no links are stored.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// The head (transmitter) ids, one per link, in insertion order.
    pub fn heads(&self) -> &[u32] {
        &self.heads
    }

    /// The tail (receiver) ids, one per link, in insertion order.
    pub fn tails(&self) -> &[u32] {
        &self.tails
    }

    /// Iterates the stored links in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Link> + '_ {
        self.heads
            .iter()
            .zip(&self.tails)
            .map(|(&h, &t)| Link::new(NodeId::new(h), NodeId::new(t)))
    }

    /// Materializes the storage back into a `Vec<Link>`.
    pub fn to_links(&self) -> Vec<Link> {
        self.iter().collect()
    }

    /// Empties the storage without releasing its buffers.
    pub fn clear(&mut self) {
        self.heads.clear();
        self.tails.clear();
    }
}

impl FromIterator<Link> for FlatLinks {
    fn from_iter<I: IntoIterator<Item = Link>>(iter: I) -> Self {
        let mut flat = Self::new();
        for link in iter {
            flat.push(link);
        }
        flat
    }
}

/// A forest of reverse trees rooted at the gateway nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingForest {
    /// `parent[v]` is the parent of `v` on its route to a gateway, or `None`
    /// for gateways themselves.
    parent: Vec<Option<NodeId>>,
    /// `depth[v]` is the hop distance from `v` to its gateway (0 for
    /// gateways).
    depth: Vec<usize>,
    /// `root[v]` is the gateway that `v`'s tree is rooted at.
    root: Vec<NodeId>,
    gateways: Vec<NodeId>,
}

impl RoutingForest {
    /// Builds a shortest-path routing forest over `graph` rooted at
    /// `gateways`, breaking ties with a deterministic RNG seeded by `seed`
    /// (the paper breaks ties randomly).
    ///
    /// # Errors
    ///
    /// * [`TopologyError::NoGateways`] if `gateways` is empty;
    /// * [`TopologyError::DuplicateGateway`] for repeated gateway ids;
    /// * [`TopologyError::UnknownNode`] for out-of-range gateway ids;
    /// * [`TopologyError::Disconnected`] if some node cannot reach any
    ///   gateway.
    pub fn shortest_path(
        graph: &Graph,
        gateways: &[NodeId],
        seed: u64,
    ) -> Result<Self, TopologyError> {
        let (forest, unreachable) = Self::shortest_path_partial(graph, gateways, seed)?;
        if !unreachable.is_empty() {
            return Err(TopologyError::Disconnected {
                unreachable: unreachable.len(),
            });
        }
        Ok(forest)
    }

    /// Like [`shortest_path`](Self::shortest_path), but tolerates nodes that
    /// cannot reach any gateway (a faulted topology): the forest covers the
    /// reachable component and the cut-off nodes are returned alongside it,
    /// sorted by id. Cut-off nodes own no tree edge, appear in no
    /// [`flow_routes`](Self::flow_routes), and report `false` from
    /// [`is_reachable`](Self::is_reachable).
    ///
    /// # Errors
    ///
    /// The gateway-set errors of [`shortest_path`](Self::shortest_path)
    /// (`NoGateways`, `DuplicateGateway`, `UnknownNode`); disconnection is
    /// not an error here.
    pub fn shortest_path_partial(
        graph: &Graph,
        gateways: &[NodeId],
        seed: u64,
    ) -> Result<(Self, Vec<NodeId>), TopologyError> {
        let n = graph.node_count();
        if gateways.is_empty() {
            return Err(TopologyError::NoGateways);
        }
        let mut is_gateway = vec![false; n];
        for &g in gateways {
            if g.index() >= n {
                return Err(TopologyError::UnknownNode {
                    id: g,
                    node_count: n,
                });
            }
            if is_gateway[g.index()] {
                return Err(TopologyError::DuplicateGateway(g));
            }
            is_gateway[g.index()] = true;
        }

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut depth = vec![usize::MAX; n];
        let mut root = vec![NodeId::new(0); n];

        // Multi-source BFS from all gateways. To honor the random
        // tie-breaking rule, candidate parents at equal depth are collected
        // per node and one is chosen uniformly at random.
        let mut frontier: Vec<NodeId> = Vec::new();
        for &g in gateways {
            depth[g.index()] = 0;
            root[g.index()] = g;
            frontier.push(g);
        }
        let mut level = 0usize;
        while !frontier.is_empty() {
            level += 1;
            // Collect candidate parents for each node at the next level.
            // BTreeMap keeps the per-level node order (and hence the rng
            // consumption order) deterministic without an explicit sort.
            let mut candidates: std::collections::BTreeMap<NodeId, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for &u in &frontier {
                for &v in graph.neighbors(u) {
                    if depth[v.index()] == usize::MAX {
                        candidates.entry(v).or_default().push(u);
                    }
                }
            }
            let next_frontier: Vec<NodeId> = candidates.keys().copied().collect();
            for &v in &next_frontier {
                let parents = &candidates[&v];
                // Candidate lists are created non-empty (entry().push() above);
                // an empty one would just leave `v` to the unreachable check.
                let Some(&chosen) = parents.choose(&mut rng) else {
                    continue;
                };
                parent[v.index()] = Some(chosen);
                depth[v.index()] = level;
                root[v.index()] = root[chosen.index()];
            }
            frontier = next_frontier;
        }

        let unreachable: Vec<NodeId> = (0..n as u32)
            .map(NodeId::new)
            .filter(|v| depth[v.index()] == usize::MAX)
            .collect();

        Ok((
            Self {
                parent,
                depth,
                root,
                gateways: gateways.to_vec(),
            },
            unreachable,
        ))
    }

    /// Number of nodes covered by the forest.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// The gateway nodes (tree roots).
    pub fn gateways(&self) -> &[NodeId] {
        &self.gateways
    }

    /// Returns `true` if `node` is a gateway.
    pub fn is_gateway(&self, node: NodeId) -> bool {
        self.depth[node.index()] == 0
    }

    /// Returns `true` if `node` reaches a gateway through this forest.
    /// Always `true` for forests built by
    /// [`shortest_path`](Self::shortest_path); partial forests
    /// ([`shortest_path_partial`](Self::shortest_path_partial)) report
    /// `false` for the cut-off nodes.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.depth[node.index()] != usize::MAX
    }

    /// Parent of `node` in its routing tree, or `None` for gateways.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Hop distance from `node` to its gateway.
    pub fn depth(&self, node: NodeId) -> usize {
        self.depth[node.index()]
    }

    /// The gateway that `node` routes to.
    pub fn root_of(&self, node: NodeId) -> NodeId {
        self.root[node.index()]
    }

    /// The tree edge owned by `node` (the link from `node` to its parent),
    /// or `None` for gateways.
    pub fn link_of(&self, node: NodeId) -> Option<Link> {
        self.parent(node).map(|p| Link::new(node, p))
    }

    /// The node that owns `link` under the node↔edge mapping, if `link` is a
    /// tree edge of this forest.
    pub fn owner_of(&self, link: Link) -> Option<NodeId> {
        (self.parent(link.head) == Some(link.tail)).then_some(link.head)
    }

    /// Iterator over all tree edges (one per non-gateway node), ordered by
    /// owner id.
    pub fn tree_edges(&self) -> impl Iterator<Item = Link> + '_ {
        (0..self.node_count() as u32)
            .map(NodeId::new)
            .filter_map(move |v| self.link_of(v))
    }

    /// The route from `node` to its gateway, starting with `node`'s own link.
    pub fn route_to_gateway(&self, node: NodeId) -> Vec<Link> {
        let mut route = Vec::new();
        let mut current = node;
        while let Some(p) = self.parent(current) {
            route.push(Link::new(current, p));
            current = p;
        }
        route
    }

    /// One traffic flow source per non-gateway node: the node paired with
    /// its full route to the gateway (starting with the node's own link), in
    /// node-id order. This is the packet-level reading of the forest — every
    /// mesh node is a flow source whose packets traverse exactly these links
    /// — and the input the `scream-traffic` engine builds its flow sets
    /// from.
    pub fn flow_routes(&self) -> impl Iterator<Item = (NodeId, Vec<Link>)> + '_ {
        (0..self.node_count() as u32)
            .map(NodeId::new)
            .filter(|&v| self.is_reachable(v) && !self.is_gateway(v))
            .map(|v| (v, self.route_to_gateway(v)))
    }

    /// Children of `node` in its routing tree.
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.node_count() as u32)
            .map(NodeId::new)
            .filter(|&v| self.parent(v) == Some(node))
            .collect()
    }

    /// All nodes in the subtree rooted at `node` (including `node` itself).
    pub fn subtree(&self, node: NodeId) -> Vec<NodeId> {
        let mut result = vec![node];
        let mut stack = vec![node];
        while let Some(u) = stack.pop() {
            for c in self.children(u) {
                result.push(c);
                stack.push(c);
            }
        }
        result
    }

    /// Maximum depth over all nodes (the height of the tallest tree).
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::GridDeployment;
    use crate::graph::{GraphKind, UnitDiskGraphBuilder};

    fn grid_forest(side: usize) -> (Graph, RoutingForest) {
        let d = GridDeployment::new(side, side, 100.0).build();
        let g = UnitDiskGraphBuilder::new(100.0).build(&d);
        let gateways = vec![NodeId::new(0)];
        let f = RoutingForest::shortest_path(&g, &gateways, 1).unwrap();
        (g, f)
    }

    #[test]
    fn partial_forest_reports_cut_off_nodes_and_routes_the_rest() {
        // Path 0-1-2-3 with gateway 0; removing edge (1,2) strands {2, 3}.
        let mut g = Graph::new(4, GraphKind::Undirected);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3)] {
            g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let pruned = g.without_edges([(NodeId::new(1), NodeId::new(2))]);
        let gateways = vec![NodeId::new(0)];
        assert!(matches!(
            RoutingForest::shortest_path(&pruned, &gateways, 1),
            Err(TopologyError::Disconnected { unreachable: 2 })
        ));
        let (forest, cut_off) =
            RoutingForest::shortest_path_partial(&pruned, &gateways, 1).unwrap();
        assert_eq!(cut_off, vec![NodeId::new(2), NodeId::new(3)]);
        assert!(forest.is_reachable(NodeId::new(1)));
        assert!(!forest.is_reachable(NodeId::new(3)));
        assert!(forest.is_gateway(NodeId::new(0)));
        assert!(!forest.is_gateway(NodeId::new(2)), "cut off, not a root");
        let routes: Vec<_> = forest.flow_routes().collect();
        assert_eq!(routes.len(), 1, "only node 1 still has a route");
        assert_eq!(routes[0].0, NodeId::new(1));
        assert_eq!(forest.tree_edges().count(), 1);
    }

    #[test]
    fn link_endpoint_relations() {
        let a = Link::new(NodeId::new(1), NodeId::new(2));
        let b = Link::new(NodeId::new(2), NodeId::new(3));
        let c = Link::new(NodeId::new(4), NodeId::new(5));
        assert!(a.touches(NodeId::new(1)));
        assert!(!a.touches(NodeId::new(3)));
        assert!(a.shares_endpoint(&b));
        assert!(!a.shares_endpoint(&c));
        assert_eq!(a.reversed(), Link::new(NodeId::new(2), NodeId::new(1)));
    }

    #[test]
    fn forest_depth_matches_bfs_distance_to_nearest_gateway() {
        let (g, f) = grid_forest(4);
        let dist = g.bfs_distances(NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(f.depth(v), dist[v.index()]);
        }
    }

    #[test]
    fn forest_has_one_edge_per_non_gateway_node() {
        let (_, f) = grid_forest(4);
        assert_eq!(f.tree_edges().count(), 15);
        assert!(f.is_gateway(NodeId::new(0)));
        assert_eq!(f.parent(NodeId::new(0)), None);
        assert_eq!(f.link_of(NodeId::new(0)), None);
    }

    #[test]
    fn parent_is_always_one_hop_closer_to_gateway() {
        let (_, f) = grid_forest(5);
        for v in (0..25).map(NodeId::new) {
            if let Some(p) = f.parent(v) {
                assert_eq!(f.depth(p) + 1, f.depth(v));
            }
        }
    }

    #[test]
    fn routes_terminate_at_the_assigned_gateway() {
        let (_, f) = grid_forest(5);
        for v in (0..25).map(NodeId::new) {
            let route = f.route_to_gateway(v);
            assert_eq!(route.len(), f.depth(v));
            if let Some(last) = route.last() {
                assert_eq!(last.tail, f.root_of(v));
            }
        }
    }

    #[test]
    fn multi_gateway_forest_assigns_nearest_gateway() {
        let d = GridDeployment::new(8, 8, 100.0).build();
        let g = UnitDiskGraphBuilder::new(100.0).build(&d);
        let gateways = d.corner_nodes();
        let f = RoutingForest::shortest_path(&g, &gateways, 3).unwrap();
        assert_eq!(f.gateways(), &gateways[..]);
        // Node 9 (row 1, col 1) is closest to gateway 0.
        assert_eq!(f.root_of(NodeId::new(9)), NodeId::new(0));
        // Node 54 (row 6, col 6) is closest to gateway 63.
        assert_eq!(f.root_of(NodeId::new(54)), NodeId::new(63));
        // Depth of any node equals min distance over gateways.
        for v in g.nodes() {
            let min_d = gateways
                .iter()
                .map(|&gw| g.hop_distance(gw, v).unwrap())
                .min()
                .unwrap();
            assert_eq!(f.depth(v), min_d);
        }
    }

    #[test]
    fn tie_breaking_is_deterministic_per_seed() {
        let d = GridDeployment::new(6, 6, 100.0).build();
        let g = UnitDiskGraphBuilder::new(100.0).build(&d);
        let gws = d.corner_nodes();
        let f1 = RoutingForest::shortest_path(&g, &gws, 42).unwrap();
        let f2 = RoutingForest::shortest_path(&g, &gws, 42).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn owner_of_maps_tree_edges_back_to_their_head() {
        let (_, f) = grid_forest(4);
        for link in f.tree_edges() {
            assert_eq!(f.owner_of(link), Some(link.head));
            assert_eq!(f.owner_of(link.reversed()), None);
        }
    }

    #[test]
    fn subtree_contains_all_descendants() {
        let (_, f) = grid_forest(3);
        let all = f.subtree(NodeId::new(0));
        assert_eq!(all.len(), 9, "gateway subtree covers the whole tree");
        for v in (1..9).map(NodeId::new) {
            let sub = f.subtree(v);
            assert!(sub.contains(&v));
            // Every member of the subtree routes through v.
            for &m in &sub {
                assert!(
                    f.route_to_gateway(m).iter().any(|l| l.head == v) || m == v,
                    "node {m} in subtree of {v} should route through it"
                );
            }
        }
    }

    #[test]
    fn flow_routes_cover_every_non_gateway_node() {
        let (_, f) = grid_forest(4);
        let routes: Vec<(NodeId, Vec<Link>)> = f.flow_routes().collect();
        assert_eq!(routes.len(), 15, "one flow per non-gateway node");
        for (node, route) in &routes {
            assert!(!f.is_gateway(*node));
            assert_eq!(route, &f.route_to_gateway(*node));
            assert_eq!(route[0].head, *node, "routes start at the source");
            assert_eq!(
                route.last().unwrap().tail,
                f.root_of(*node),
                "routes end at the node's gateway"
            );
            // Contiguity: each hop hands over to the next.
            for pair in route.windows(2) {
                assert_eq!(pair[0].tail, pair[1].head);
            }
        }
        // Node-id order.
        let ids: Vec<u32> = routes.iter().map(|(n, _)| n.index() as u32).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn children_and_subtree_are_consistent() {
        let (_, f) = grid_forest(4);
        let total_children: usize = (0..16).map(|i| f.children(NodeId::new(i)).len()).sum();
        assert_eq!(
            total_children, 15,
            "every non-gateway node is someone's child"
        );
    }

    #[test]
    fn errors_on_no_or_bad_gateways() {
        let (g, _) = grid_forest(3);
        assert!(matches!(
            RoutingForest::shortest_path(&g, &[], 0),
            Err(TopologyError::NoGateways)
        ));
        assert!(matches!(
            RoutingForest::shortest_path(&g, &[NodeId::new(0), NodeId::new(0)], 0),
            Err(TopologyError::DuplicateGateway(_))
        ));
        assert!(matches!(
            RoutingForest::shortest_path(&g, &[NodeId::new(100)], 0),
            Err(TopologyError::UnknownNode { .. })
        ));
    }

    #[test]
    fn errors_on_disconnected_graph() {
        let g = Graph::new(3, GraphKind::Undirected);
        let err = RoutingForest::shortest_path(&g, &[NodeId::new(0)], 0).unwrap_err();
        assert!(matches!(
            err,
            TopologyError::Disconnected { unreachable: 2 }
        ));
    }

    #[test]
    fn max_depth_of_line_topology() {
        let mut g = Graph::new(5, GraphKind::Undirected);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1)).unwrap();
        }
        let f = RoutingForest::shortest_path(&g, &[NodeId::new(0)], 0).unwrap();
        assert_eq!(f.max_depth(), 4);
    }

    #[test]
    fn flat_links_round_trip_and_preserve_order() {
        let links: Vec<Link> = [(3u32, 0u32), (1, 0), (7, 4), (2, 5)]
            .iter()
            .map(|&(h, t)| Link::new(NodeId::new(h), NodeId::new(t)))
            .collect();
        let flat = FlatLinks::from_links(&links);
        assert_eq!(flat.len(), links.len());
        assert!(!flat.is_empty());
        assert_eq!(flat.heads(), &[3, 1, 7, 2]);
        assert_eq!(flat.tails(), &[0, 0, 4, 5]);
        assert_eq!(flat.to_links(), links);
        for (i, &link) in links.iter().enumerate() {
            assert_eq!(flat.get(i), link);
        }
        let collected: FlatLinks = links.iter().copied().collect();
        assert_eq!(collected, flat);
    }

    #[test]
    fn flat_links_push_and_clear_reuse_buffers() {
        let mut flat = FlatLinks::with_capacity(8);
        assert!(flat.is_empty());
        assert_eq!(flat.push(Link::new(NodeId::new(1), NodeId::new(0))), 0);
        assert_eq!(flat.push(Link::new(NodeId::new(2), NodeId::new(3))), 1);
        assert_eq!(flat.iter().len(), 2);
        flat.clear();
        assert!(flat.is_empty());
        assert_eq!(flat, FlatLinks::new());
    }
}
