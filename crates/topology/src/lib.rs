//! Node deployments, communication/sensitivity graphs, routing forests and
//! traffic demands for wireless mesh scheduling.
//!
//! This crate provides the *network-model* layer of the SCREAM reproduction
//! (Section II of the paper): where the mesh routers are placed, which links
//! exist in the absence of interference, how traffic demands are aggregated
//! along a routing forest towards the gateways, and the graph-theoretic
//! quantities (interference diameter, neighbor density) used by the analysis
//! in Section IV-B.
//!
//! # Quick example
//!
//! ```
//! use scream_topology::prelude::*;
//!
//! // 64 routers in an 8x8 planned grid, 4 gateways at the corners.
//! let deployment = GridDeployment::new(8, 8, 250.0).build();
//! let graph = UnitDiskGraphBuilder::new(260.0).build(&deployment);
//! assert!(graph.is_connected());
//!
//! let gateways = deployment.corner_nodes();
//! let forest = RoutingForest::shortest_path(&graph, &gateways, 42).unwrap();
//! assert_eq!(forest.tree_edges().count(), deployment.len() - gateways.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod demand;
pub mod deploy;
pub mod error;
pub mod geometry;
pub mod graph;
pub mod node;
pub mod routing;

pub use demand::{DemandConfig, DemandVector, LinkDemands};
pub use deploy::{
    density_to_area_m2, Deployment, DeploymentKind, GridDeployment, InfiniteDensityDeployment,
    UniformDeployment,
};
pub use error::TopologyError;
pub use geometry::{Point2, Rect};
pub use graph::{Graph, GraphKind, UnitDiskGraphBuilder};
pub use node::{NodeId, NodeInfo};
pub use routing::{FlatLinks, Link, RoutingForest};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::demand::{DemandConfig, DemandVector, LinkDemands};
    pub use crate::deploy::{
        density_to_area_m2, Deployment, DeploymentKind, GridDeployment, InfiniteDensityDeployment,
        UniformDeployment,
    };
    pub use crate::error::TopologyError;
    pub use crate::geometry::{Point2, Rect};
    pub use crate::graph::{Graph, GraphKind, UnitDiskGraphBuilder};
    pub use crate::node::{NodeId, NodeInfo};
    pub use crate::routing::{FlatLinks, Link, RoutingForest};
}
