//! Empirical verification of the SCREAM paper's analytical results.
//!
//! Section IV of the paper contains four analytical contributions besides the
//! protocols themselves. Each has a module here that checks it on concrete
//! instances:
//!
//! * [`diameter`] — the interference-diameter characterization (Theorems 2
//!   and 3): `ID(G) ≤ √2·diam(R)/r` for square-grid-convex grid deployments,
//!   `ID(G) = Θ(√(n/log n))` for random uniform deployments at the
//!   connectivity threshold, and the general `ID(G) = O(√(n/ρ))` trend.
//! * [`equivalence`] — the Theorem 4 argument that FDD recreates the
//!   centralized GreedyPhysical schedule (and hence inherits its
//!   approximation factor), checked schedule-by-schedule on random instances.
//! * [`complexity`] — the Theorem 5 bound `O(TD · ID(G) · n log n)` on the
//!   number of synchronized steps FDD executes, compared against the measured
//!   step counts of actual runs.
//! * the impossibility construction of Theorem 1 lives in
//!   `scream_core::impossibility` because it is part of the protocol crate's
//!   motivation; its empirical check is exercised from the integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod complexity;
pub mod diameter;
pub mod equivalence;

pub use complexity::{ComplexityObservation, ComplexityReport};
pub use diameter::{DiameterObservation, DiameterScenario};
pub use equivalence::{EquivalenceOutcome, EquivalenceReport};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::complexity::{ComplexityObservation, ComplexityReport};
    pub use crate::diameter::{DiameterObservation, DiameterScenario};
    pub use crate::equivalence::{EquivalenceOutcome, EquivalenceReport};
}
