//! Time-complexity accounting for FDD (Theorem 5).
//!
//! Theorem 5 bounds FDD's running time by `O(TD · ID(G) · n · log n)`
//! synchronized steps: at most `TD` rounds, each needing at most `n` active
//! trials, each trial costing a leader election of `ID(G) · log n` slots.
//! This module measures the actual number of synchronized steps of real runs
//! and relates them to the bound, giving the empirical counterpart of the
//! theorem (and the data for the `theory_complexity` binary).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scream_core::{DistributedScheduler, ProtocolConfig, ProtocolKind};
use scream_netsim::{PropagationModel, RadioEnvironment};
use scream_topology::{
    DemandConfig, DemandVector, GridDeployment, LinkDemands, NodeId, RoutingForest,
};

/// Measured step counts of one protocol run, next to the Theorem 5 bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexityObservation {
    /// Protocol variant that was run.
    pub protocol: String,
    /// Number of nodes `n`.
    pub node_count: usize,
    /// Total traffic demand `TD`.
    pub total_demand: u64,
    /// Interference diameter `ID(G)` used to size the SCREAM primitive.
    pub interference_diameter: usize,
    /// Total synchronized steps (SCREAM slots + handshake slots + barriers)
    /// the run executed.
    pub measured_steps: u64,
    /// The Theorem 5 bound `TD · ID(G) · n · log2(n)` evaluated for this
    /// instance.
    pub theorem_bound: f64,
}

impl ComplexityObservation {
    /// Ratio of measured steps to the bound; Theorem 5 promises this is `O(1)`
    /// (in practice far below 1 because most rounds finish early).
    pub fn utilization_of_bound(&self) -> f64 {
        // lint:allow(F1.eq, reason = "exact-zero guard before division; any nonzero bound is safe to divide by")
        if self.theorem_bound == 0.0 {
            0.0
        } else {
            self.measured_steps as f64 / self.theorem_bound
        }
    }

    /// Whether the measured step count respects the bound.
    pub fn within_bound(&self) -> bool {
        (self.measured_steps as f64) <= self.theorem_bound
    }
}

/// A batch of complexity observations over growing instance sizes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComplexityReport {
    /// One observation per instance.
    pub observations: Vec<ComplexityObservation>,
}

impl ComplexityReport {
    /// Measures FDD (and optionally PDD) on square grids of the given sides.
    pub fn on_grids(sides: &[usize], step_m: f64, include_pdd: bool, seed: u64) -> Self {
        let mut observations = Vec::new();
        for &side in sides {
            observations.push(Self::measure(side, step_m, ProtocolKind::Fdd, seed));
            if include_pdd {
                observations.push(Self::measure(
                    side,
                    step_m,
                    ProtocolKind::pdd_unchecked(0.6),
                    seed,
                ));
            }
        }
        Self { observations }
    }

    fn measure(side: usize, step_m: f64, kind: ProtocolKind, seed: u64) -> ComplexityObservation {
        let deployment = GridDeployment::new(side, side, step_m).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&deployment);
        let graph = env.communication_graph();
        let gateways: Vec<NodeId> = deployment.corner_nodes();
        let forest =
            RoutingForest::shortest_path(&graph, &gateways, seed).expect("grid is connected");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let demands =
            DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
        let link_demands = LinkDemands::aggregate(&forest, &demands).expect("sizes match");

        let id = env.interference_diameter();
        let config = ProtocolConfig::paper_default()
            .with_scream_slots(id.max(1))
            .with_seed(seed);
        let scheduler = DistributedScheduler::new(kind, config);
        let run = scheduler
            .run(&env, &link_demands)
            .expect("protocol completes on connected instances");

        let n = deployment.len();
        let td = link_demands.total_demand();
        let bound = td as f64 * id.max(1) as f64 * n as f64 * (n as f64).log2().max(1.0);
        ComplexityObservation {
            protocol: match kind {
                ProtocolKind::Fdd => "FDD".to_string(),
                ProtocolKind::Afdd => "AFDD".to_string(),
                ProtocolKind::Pdd { .. } => "PDD".to_string(),
            },
            node_count: n,
            total_demand: td,
            interference_diameter: id,
            measured_steps: run.timing.total_steps(),
            theorem_bound: bound,
        }
    }

    /// Whether every observation respects the Theorem 5 bound.
    pub fn all_within_bound(&self) -> bool {
        !self.observations.is_empty() && self.observations.iter().all(|o| o.within_bound())
    }

    /// The FDD observations only, in instance order.
    pub fn fdd_observations(&self) -> Vec<&ComplexityObservation> {
        self.observations
            .iter()
            .filter(|o| o.protocol == "FDD")
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_steps_respect_theorem_5_bound() {
        let report = ComplexityReport::on_grids(&[3, 4], 150.0, true, 7);
        assert_eq!(report.observations.len(), 4);
        assert!(report.all_within_bound(), "{:#?}", report.observations);
    }

    #[test]
    fn utilization_is_well_below_one_in_practice() {
        let report = ComplexityReport::on_grids(&[4], 150.0, false, 3);
        let fdd = report.fdd_observations();
        assert_eq!(fdd.len(), 1);
        assert!(fdd[0].utilization_of_bound() < 0.5);
        assert!(fdd[0].utilization_of_bound() > 0.0);
    }

    #[test]
    fn steps_grow_with_instance_size() {
        let report = ComplexityReport::on_grids(&[3, 5], 150.0, false, 11);
        let fdd = report.fdd_observations();
        assert!(fdd[1].measured_steps > fdd[0].measured_steps);
        assert!(fdd[1].theorem_bound > fdd[0].theorem_bound);
    }

    #[test]
    fn pdd_executes_fewer_steps_than_fdd() {
        let report = ComplexityReport::on_grids(&[4], 150.0, true, 13);
        let fdd = report
            .observations
            .iter()
            .find(|o| o.protocol == "FDD")
            .unwrap();
        let pdd = report
            .observations
            .iter()
            .find(|o| o.protocol == "PDD")
            .unwrap();
        assert!(pdd.measured_steps < fdd.measured_steps);
    }

    #[test]
    fn empty_report_is_not_vacuously_within_bound() {
        assert!(!ComplexityReport::default().all_within_bound());
    }
}
