//! FDD ≡ GreedyPhysical equivalence (Theorem 4).
//!
//! The approximation bound of the paper is inherited from the centralized
//! GreedyPhysical algorithm through a structural argument: FDD, run to
//! completion, produces exactly the schedule GreedyPhysical produces when it
//! considers edges in decreasing order of their head node's id. This module
//! provides a harness that checks the equivalence instance-by-instance and
//! summarizes the comparison (including how far PDD strays from the common
//! schedule), which is also what the `theory_complexity` and figure binaries
//! report.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scream_core::{DistributedScheduler, ProtocolConfig};
use scream_netsim::{PropagationModel, RadioEnvironment};
use scream_scheduling::{verify_schedule, EdgeOrdering, GreedyPhysical, ScheduleMetrics};
use scream_topology::{
    DemandConfig, DemandVector, Deployment, GridDeployment, LinkDemands, RoutingForest,
    UniformDeployment,
};

/// Outcome of comparing FDD against GreedyPhysical on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalenceOutcome {
    /// Number of nodes in the instance.
    pub node_count: usize,
    /// Number of orthogonal channels both schedulers ran with (1 is the
    /// paper's single shared channel).
    pub channel_count: usize,
    /// Total traffic demand of the instance.
    pub total_demand: u64,
    /// Length of the centralized GreedyPhysical schedule.
    pub centralized_length: usize,
    /// Length of the FDD schedule.
    pub fdd_length: usize,
    /// Distinct slot patterns in the centralized schedule's run-length form
    /// (its actual memory footprint; `centralized_length` can be arbitrarily
    /// larger under heavy demand).
    pub centralized_patterns: usize,
    /// Distinct slot patterns in the FDD schedule's run-length form.
    pub fdd_patterns: usize,
    /// Whether the two schedules are identical slot-by-slot.
    pub identical: bool,
    /// Whether both schedules passed feasibility + demand verification.
    pub both_valid: bool,
}

/// Aggregated result over a batch of random instances.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EquivalenceReport {
    /// Per-instance outcomes.
    pub outcomes: Vec<EquivalenceOutcome>,
}

impl EquivalenceReport {
    /// Checks the equivalence on `instances` random grid instances of
    /// `side × side` nodes (seeded deterministically from `base_seed`), on
    /// the single shared channel.
    pub fn on_grid_instances(side: usize, step_m: f64, instances: usize, base_seed: u64) -> Self {
        Self::on_grid_instances_with_channels(side, step_m, instances, base_seed, 1)
    }

    /// The channel-aware Theorem-4 check: both FDD and GreedyPhysical run
    /// with `channel_count` orthogonal channels on the same grid instances.
    /// The structural argument survives the channel dimension — FDD's
    /// channel-assignment phase first-fits exactly like the centralized
    /// `(slot, channel)` scan — so the schedules must stay identical,
    /// channel tags included.
    pub fn on_grid_instances_with_channels(
        side: usize,
        step_m: f64,
        instances: usize,
        base_seed: u64,
        channel_count: usize,
    ) -> Self {
        let outcomes = (0..instances)
            .filter_map(|i| {
                let seed = base_seed + i as u64;
                let deployment = GridDeployment::new(side, side, step_m).build();
                Self::compare(&deployment, seed, channel_count)
            })
            .collect();
        Self { outcomes }
    }

    /// Checks the equivalence on `instances` random uniform (unplanned)
    /// instances with heterogeneous transmit power, on the single shared
    /// channel.
    pub fn on_uniform_instances(
        node_count: usize,
        region_side_m: f64,
        instances: usize,
        base_seed: u64,
    ) -> Self {
        Self::on_uniform_instances_with_channels(node_count, region_side_m, instances, base_seed, 1)
    }

    /// The unplanned-topology variant of the channel-aware check.
    pub fn on_uniform_instances_with_channels(
        node_count: usize,
        region_side_m: f64,
        instances: usize,
        base_seed: u64,
        channel_count: usize,
    ) -> Self {
        let outcomes = (0..instances)
            .filter_map(|i| {
                let seed = base_seed + i as u64;
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let deployment = UniformDeployment::new(node_count, region_side_m)
                    .heterogeneous_power(6.0)
                    .build_connected(&mut rng, region_side_m / 4.0, 100)
                    .ok()?;
                Self::compare(&deployment, seed, channel_count)
            })
            .collect();
        Self { outcomes }
    }

    /// Runs the comparison on one deployment. Returns `None` if the SINR
    /// communication graph is disconnected (possible for unplanned draws with
    /// heterogeneous power, where one-way links are discarded), since no
    /// routing forest covering every node exists in that case.
    fn compare(
        deployment: &Deployment,
        seed: u64,
        channel_count: usize,
    ) -> Option<EquivalenceOutcome> {
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(scream_netsim::RadioConfig::mesh_default().with_channel_count(channel_count))
            .build(deployment);
        let graph = env.communication_graph();
        if !graph.is_connected() {
            return None;
        }
        let gateways = vec![deployment.corner_nodes()[0]];
        let forest = RoutingForest::shortest_path(&graph, &gateways, seed)
            .expect("the communication graph was just checked connected");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let demands =
            DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
        let link_demands = LinkDemands::aggregate(&forest, &demands)
            .expect("demand vector covers exactly the forest nodes");

        let centralized =
            GreedyPhysical::new(EdgeOrdering::DecreasingHeadId).schedule(&env, &link_demands);
        let config = ProtocolConfig::paper_default()
            .with_scream_slots(env.interference_diameter().max(1))
            .with_seed(seed);
        let fdd = DistributedScheduler::fdd()
            .with_config(config)
            .run(&env, &link_demands)
            .expect("FDD runs to completion on connected instances");

        let both_valid = verify_schedule(&env, &centralized, &link_demands).is_ok()
            && verify_schedule(&env, &fdd.schedule, &link_demands).is_ok();
        Some(EquivalenceOutcome {
            node_count: deployment.len(),
            channel_count,
            total_demand: link_demands.total_demand(),
            centralized_length: centralized.length(),
            fdd_length: fdd.schedule.length(),
            centralized_patterns: centralized.pattern_count(),
            fdd_patterns: fdd.schedule.pattern_count(),
            identical: fdd.schedule == centralized,
            both_valid,
        })
    }

    /// Whether every instance produced identical, valid schedules.
    pub fn all_equivalent(&self) -> bool {
        !self.outcomes.is_empty() && self.outcomes.iter().all(|o| o.identical && o.both_valid)
    }

    /// Fraction of instances on which the schedules were identical.
    pub fn equivalence_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.identical).count() as f64 / self.outcomes.len() as f64
    }
}

/// Compares PDD against the centralized schedule on one grid instance and
/// returns `(pdd_metrics, centralized_metrics)` — the per-instance data point
/// behind the "PDD is ~10 points worse" observation of Section VI-B.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidParameter`](scream_core::ProtocolError)
/// if `probability` is outside `(0, 1]`, propagated from
/// [`DistributedScheduler::pdd`].
pub fn pdd_vs_centralized(
    side: usize,
    step_m: f64,
    probability: f64,
    seed: u64,
) -> Result<(ScheduleMetrics, ScheduleMetrics), scream_core::ProtocolError> {
    // Validate the caller-supplied probability before any expensive work.
    let scheduler = DistributedScheduler::pdd(probability)?;
    let deployment = GridDeployment::new(side, side, step_m).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .build(&deployment);
    let graph = env.communication_graph();
    let gateways = deployment.corner_nodes();
    let forest = RoutingForest::shortest_path(&graph, &gateways, seed).expect("grid is connected");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let demands =
        DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).expect("sizes match");

    let centralized = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
    let config = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter().max(1))
        .with_seed(seed);
    let pdd = scheduler
        .with_config(config)
        .run(&env, &link_demands)
        .expect("PDD runs to completion on connected grid instances");
    Ok((
        ScheduleMetrics::compute(&pdd.schedule, &link_demands),
        ScheduleMetrics::compute(&centralized, &link_demands),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdd_equals_greedy_physical_on_grid_instances() {
        let report = EquivalenceReport::on_grid_instances(4, 150.0, 3, 10);
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.all_equivalent(), "outcomes: {:?}", report.outcomes);
        assert_eq!(report.equivalence_rate(), 1.0);
    }

    #[test]
    fn fdd_equals_greedy_physical_on_unplanned_instances() {
        let report = EquivalenceReport::on_uniform_instances(16, 600.0, 3, 42);
        assert!(!report.outcomes.is_empty());
        assert!(report.all_equivalent(), "outcomes: {:?}", report.outcomes);
        assert!(report.outcomes.iter().all(|o| o.channel_count == 1));
    }

    #[test]
    fn channel_aware_fdd_equals_channel_aware_greedy_physical() {
        // Theorem 4, extended by the channel dimension: the distributed
        // channel-assignment phase makes the same (slot, channel) first-fit
        // decisions as the centralized scan, so the equivalence survives at
        // every channel count.
        for channels in [2usize, 4] {
            let report =
                EquivalenceReport::on_grid_instances_with_channels(4, 150.0, 2, 21, channels);
            assert_eq!(report.outcomes.len(), 2);
            assert!(
                report.all_equivalent(),
                "C = {channels} outcomes: {:?}",
                report.outcomes
            );
            assert!(report.outcomes.iter().all(|o| o.channel_count == channels));
        }
        let unplanned = EquivalenceReport::on_uniform_instances_with_channels(16, 600.0, 2, 42, 2);
        assert!(!unplanned.outcomes.is_empty());
        assert!(unplanned.all_equivalent(), "{:?}", unplanned.outcomes);
    }

    #[test]
    fn multi_channel_instances_never_schedule_longer_than_single_channel() {
        let single = EquivalenceReport::on_grid_instances_with_channels(4, 150.0, 2, 33, 1);
        let dual = EquivalenceReport::on_grid_instances_with_channels(4, 150.0, 2, 33, 2);
        for (s, d) in single.outcomes.iter().zip(&dual.outcomes) {
            assert_eq!(s.total_demand, d.total_demand);
            assert!(d.centralized_length <= s.centralized_length);
            assert!(d.fdd_length <= s.fdd_length);
        }
    }

    #[test]
    fn empty_report_is_not_vacuously_equivalent() {
        let report = EquivalenceReport::default();
        assert!(!report.all_equivalent());
        assert_eq!(report.equivalence_rate(), 0.0);
    }

    #[test]
    fn pdd_improvement_does_not_exceed_centralized_by_much() {
        let (pdd, centralized) = pdd_vs_centralized(4, 150.0, 0.6, 5).unwrap();
        // PDD's schedule can never be shorter than the serialized bound allows
        // and in practice trails the centralized schedule.
        assert!(
            pdd_vs_centralized(4, 150.0, 1.5, 5).is_err(),
            "out-of-range probabilities propagate as errors, not panics"
        );
        assert!(pdd.length >= centralized.length);
        assert!(pdd.improvement_over_linear_pct <= centralized.improvement_over_linear_pct + 1e-9);
        assert!(centralized.improvement_over_linear_pct > 0.0);
    }
}
