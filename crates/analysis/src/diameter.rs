//! Interference-diameter characterization (Section IV-B, Theorems 2 and 3).
//!
//! The SCREAM primitive needs `K ≥ ID(G_S)` slots, so the paper bounds the
//! interference diameter for three deployment families of increasing density:
//! square grids (`ρ = Θ(1)`), random uniform deployments at the connectivity
//! threshold (`ρ = Θ(log n)`) and infinite-density deployments
//! (`ρ = Θ(n)`), observing `ID(G) = O(√(n/ρ))` throughout. This module
//! measures `ID(G)` on concrete instances and compares it against the bounds.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scream_topology::{
    Deployment, GridDeployment, NodeId, UniformDeployment, UnitDiskGraphBuilder,
};

/// Which deployment family an observation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiameterScenario {
    /// Square grid with range equal to the grid step (Theorem 2).
    SquareGrid,
    /// Uniform random deployment in the unit square with the
    /// connectivity-threshold range `r = √(ln n / (π n))` (Theorem 3).
    RandomUniform,
    /// Dense lattice approximating the infinite-density model
    /// (Section IV-B3).
    InfiniteDensity,
}

/// One measured instance: node count, neighbor density, measured interference
/// diameter and the theoretical bound it must respect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiameterObservation {
    /// The deployment family.
    pub scenario: DiameterScenario,
    /// Number of nodes.
    pub node_count: usize,
    /// Average node degree `ρ(G)` (Definition 6).
    pub neighbor_density: f64,
    /// Measured interference diameter `ID(G)`.
    pub interference_diameter: usize,
    /// The theoretical upper bound for this instance (Theorem 2 for grids,
    /// the cell-counting bound of Theorem 3 for uniform deployments, the
    /// `diam(R)/r` bound for infinite density).
    pub theoretical_bound: f64,
    /// The `√(n/ρ)` reference quantity the paper relates everything to.
    pub sqrt_n_over_rho: f64,
}

impl DiameterObservation {
    /// Whether the measured diameter respects its theoretical bound (allowing
    /// the +1 slack that comes from measuring hop counts on finite lattices
    /// whose boundary nodes are not exactly on the region boundary).
    pub fn respects_bound(&self) -> bool {
        (self.interference_diameter as f64) <= self.theoretical_bound + 1.0
    }

    /// Ratio of the measured diameter to `√(n/ρ)` — the paper's claim is that
    /// this ratio stays bounded by a constant across scenarios.
    pub fn ratio_to_sqrt_n_over_rho(&self) -> f64 {
        // lint:allow(F1.eq, reason = "exact-zero guard before division; any nonzero reference is safe to divide by")
        if self.sqrt_n_over_rho == 0.0 {
            0.0
        } else {
            self.interference_diameter as f64 / self.sqrt_n_over_rho
        }
    }

    /// Measures a `side × side` square-grid deployment with the communication
    /// range equal to the grid step, as in Theorem 2.
    pub fn square_grid(side: usize, step_m: f64) -> Self {
        let deployment = GridDeployment::new(side, side, step_m).build();
        let graph = UnitDiskGraphBuilder::new(step_m).build(&deployment);
        let diam = deployment.region().diameter();
        Self::from_measurement(
            DiameterScenario::SquareGrid,
            &deployment,
            graph.neighbor_density(),
            graph.interference_diameter(),
            // Theorem 2: ID(G) <= sqrt(2) * diam(R) / r.
            std::f64::consts::SQRT_2 * diam / step_m,
        )
    }

    /// Measures a uniform random deployment of `n` nodes in the unit square
    /// with a communication range at the connectivity threshold of Theorem 3,
    /// `r = √((ln n + c) / (π n))`. The theorem's asymptotic statement uses
    /// `c = 0`; at the finite sizes measured here a small positive `c` is
    /// needed for connected draws to be likely (the w.h.p. statement only
    /// kicks in asymptotically), which keeps `r = Θ(√(ln n / n))` and leaves
    /// the bound's structure unchanged. Draws are retried until the graph is
    /// connected.
    pub fn random_uniform(n: usize, seed: u64) -> Self {
        let r = ((f64::ln(n as f64) + 4.0) / (std::f64::consts::PI * n as f64)).sqrt();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Work in a 1000 m square so distances stay in meters.
        let side = 1000.0;
        let range = r * side;
        let deployment = UniformDeployment::new(n, side)
            .build_connected(&mut rng, range, 500)
            .expect("connectivity-threshold deployments should admit a connected draw");
        let graph = UnitDiskGraphBuilder::new(range).build(&deployment);
        // Theorem 3's constructive bound: the diagonal of the region crosses
        // at most diam(R) / (r / (2*sqrt(2))) = 2*sqrt(2)*sqrt(2)*side / r
        // occupied cells of side r/(2*sqrt(2)), i.e. 4*side/r hops.
        let bound = 4.0 * side / range;
        Self::from_measurement(
            DiameterScenario::RandomUniform,
            &deployment,
            graph.neighbor_density(),
            graph.interference_diameter(),
            bound,
        )
    }

    /// Measures a dense-lattice approximation of the infinite-density model:
    /// a fixed region filled with a lattice much finer than the communication
    /// range.
    pub fn infinite_density(region_side_m: f64, lattice_step_m: f64, range_m: f64) -> Self {
        let deployment =
            scream_topology::InfiniteDensityDeployment::new(region_side_m, lattice_step_m).build();
        let graph = UnitDiskGraphBuilder::new(range_m).build(&deployment);
        let diam = deployment.region().diameter();
        Self::from_measurement(
            DiameterScenario::InfiniteDensity,
            &deployment,
            graph.neighbor_density(),
            graph.interference_diameter(),
            // Tight bound for convex regions at infinite density: diam(R)/r,
            // plus the sqrt(2) lattice detour factor for the finite lattice
            // approximation.
            std::f64::consts::SQRT_2 * diam / range_m,
        )
    }

    fn from_measurement(
        scenario: DiameterScenario,
        deployment: &Deployment,
        neighbor_density: f64,
        interference_diameter: usize,
        theoretical_bound: f64,
    ) -> Self {
        let n = deployment.len();
        let sqrt_n_over_rho = if neighbor_density > 0.0 {
            (n as f64 / neighbor_density).sqrt()
        } else {
            f64::INFINITY
        };
        Self {
            scenario,
            node_count: n,
            neighbor_density,
            interference_diameter,
            theoretical_bound,
            sqrt_n_over_rho,
        }
    }
}

/// Convenience: the exact interference diameter of an arbitrary deployment
/// under a unit-disk sensitivity model with the given carrier-sense range.
pub fn measured_interference_diameter(deployment: &Deployment, cs_range_m: f64) -> usize {
    UnitDiskGraphBuilder::new(cs_range_m)
        .build(deployment)
        .interference_diameter()
}

/// Convenience: hop distance between two nodes of a deployment under the same
/// model (used by examples to size `K`).
pub fn measured_hop_distance(
    deployment: &Deployment,
    cs_range_m: f64,
    u: NodeId,
    v: NodeId,
) -> Option<usize> {
    UnitDiskGraphBuilder::new(cs_range_m)
        .build(deployment)
        .hop_distance(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_2_bound_holds_for_square_grids() {
        for side in [4usize, 8, 12, 16, 20] {
            let obs = DiameterObservation::square_grid(side, 100.0);
            assert!(
                obs.respects_bound(),
                "grid {side}x{side}: ID {} exceeds bound {:.2}",
                obs.interference_diameter,
                obs.theoretical_bound
            );
            // The bound is tight for squares: ID = 2(side-1) and the bound is
            // sqrt(2) * sqrt(2) * (side-1) = 2(side-1).
            assert_eq!(obs.interference_diameter, 2 * (side - 1));
            assert!((obs.theoretical_bound - 2.0 * (side as f64 - 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn grid_interference_diameter_scales_as_sqrt_n() {
        let small = DiameterObservation::square_grid(5, 100.0);
        let large = DiameterObservation::square_grid(20, 100.0);
        // n grows 16x, sqrt(n) grows 4x; ID should grow by roughly 4-5x.
        let ratio = large.interference_diameter as f64 / small.interference_diameter as f64;
        assert!(ratio > 3.0 && ratio < 6.0, "ratio {ratio}");
        // Neighbor density stays Θ(1) for grids.
        assert!(small.neighbor_density < 4.5 && large.neighbor_density < 4.5);
    }

    #[test]
    fn theorem_3_bound_holds_for_random_uniform_deployments() {
        for (n, seed) in [(64usize, 1u64), (128, 2), (256, 3)] {
            let obs = DiameterObservation::random_uniform(n, seed);
            assert!(
                obs.respects_bound(),
                "uniform n={n}: ID {} exceeds bound {:.2}",
                obs.interference_diameter,
                obs.theoretical_bound
            );
            // Density at the connectivity threshold is Θ(log n): well above
            // constant, well below n.
            assert!(obs.neighbor_density > 1.0);
            assert!(obs.neighbor_density < n as f64 / 2.0);
        }
    }

    #[test]
    fn infinite_density_diameter_is_independent_of_lattice_refinement() {
        let coarse = DiameterObservation::infinite_density(500.0, 50.0, 200.0);
        let fine = DiameterObservation::infinite_density(500.0, 25.0, 200.0);
        assert!(coarse.respects_bound());
        assert!(fine.respects_bound());
        // Refining the lattice multiplies n but leaves the diameter (almost)
        // unchanged: it is governed by diam(R)/r.
        assert!(fine.node_count > 3 * coarse.node_count);
        assert!(
            (fine.interference_diameter as i64 - coarse.interference_diameter as i64).abs() <= 1
        );
    }

    #[test]
    fn sqrt_n_over_rho_ratio_stays_bounded_across_scenarios() {
        // The paper's observed relation ID(G) = O(sqrt(n / rho)): the ratio
        // should stay below a modest constant for every scenario.
        let observations = vec![
            DiameterObservation::square_grid(8, 100.0),
            DiameterObservation::square_grid(16, 100.0),
            DiameterObservation::random_uniform(128, 5),
            DiameterObservation::random_uniform(256, 6),
            DiameterObservation::infinite_density(400.0, 40.0, 200.0),
        ];
        for obs in observations {
            let ratio = obs.ratio_to_sqrt_n_over_rho();
            assert!(
                ratio < 8.0,
                "{:?}: ID/{:.2} = {ratio:.2} is not O(1)-ish",
                obs.scenario,
                obs.sqrt_n_over_rho
            );
        }
    }

    #[test]
    fn denser_scenarios_have_smaller_relative_diameter() {
        let grid = DiameterObservation::square_grid(16, 100.0); // rho ~ 4
        let uniform = DiameterObservation::random_uniform(256, 7); // rho ~ log n
        let dense = DiameterObservation::infinite_density(400.0, 40.0, 200.0); // rho >> log n
                                                                               // Normalized by sqrt(n), the diameter shrinks as density grows.
        let norm =
            |o: &DiameterObservation| o.interference_diameter as f64 / (o.node_count as f64).sqrt();
        assert!(norm(&grid) > norm(&uniform));
        assert!(norm(&uniform) > norm(&dense));
    }

    #[test]
    fn helper_measurements_agree_with_graph_queries() {
        let d = GridDeployment::new(4, 4, 100.0).build();
        assert_eq!(measured_interference_diameter(&d, 100.0), 6);
        assert_eq!(
            measured_hop_distance(&d, 100.0, NodeId::new(0), NodeId::new(15)),
            Some(6)
        );
        assert_eq!(
            measured_hop_distance(&d, 100.0, NodeId::new(0), NodeId::new(0)),
            Some(0)
        );
    }
}
