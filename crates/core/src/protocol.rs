//! Protocol variants: PDD, FDD and the AFDD extension.

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;

/// Which distributed scheduling protocol a runtime executes.
///
/// All three variants share the same round structure (leader election, then
/// iterative slot construction guarded by handshakes and SCREAM vetoes); they
/// differ only in how the `SelectActive()` function chooses which dormant
/// nodes to try next (Section III-C/III-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Partially Deterministic Distributed protocol: every dormant node joins
    /// the active set independently with probability `probability` in each
    /// iteration. Faster than FDD (no per-step election) but the schedule is
    /// randomized and slightly longer on average.
    Pdd {
        /// Activation probability `p` (the paper evaluates 0.2, 0.6 and 0.8).
        probability: f64,
    },
    /// Fully Deterministic Distributed protocol: exactly one new node is
    /// selected per iteration, through a network-wide leader election over
    /// the dormant nodes. Provably recreates the centralized GreedyPhysical
    /// schedule (Theorem 4) and therefore inherits its approximation bound.
    Fdd,
    /// Adaptive FDD — mentioned but not specified in the paper's evaluation
    /// section; implemented here (see `DESIGN.md`) as FDD with a cheaper
    /// active-selection step: the next active node is still the highest-id
    /// dormant node, but the selection is announced with a single SCREAM
    /// invocation instead of a full `id_bits`-round election, modelling
    /// nodes caching the candidate order from previous rounds. The schedule
    /// is identical to FDD; only the execution time differs.
    Afdd,
}

impl ProtocolKind {
    /// PDD with the given activation probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if the probability is not
    /// in `(0, 1]` (NaN included) — library code must not panic on a
    /// caller-supplied parameter. Call sites with compile-time-constant
    /// probabilities (benches, figure binaries) can use
    /// [`pdd_unchecked`](Self::pdd_unchecked) instead.
    pub fn pdd(probability: f64) -> Result<Self, ProtocolError> {
        if probability > 0.0 && probability <= 1.0 {
            Ok(ProtocolKind::Pdd { probability })
        } else {
            Err(ProtocolError::InvalidParameter(format!(
                "PDD activation probability must be in (0, 1], got {probability}"
            )))
        }
    }

    /// PDD with the given activation probability, panicking on out-of-range
    /// values — the infallible variant for constant probabilities.
    ///
    /// # Panics
    ///
    /// Panics if the probability is not in `(0, 1]`.
    pub fn pdd_unchecked(probability: f64) -> Self {
        Self::pdd(probability).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The FDD protocol.
    pub fn fdd() -> Self {
        ProtocolKind::Fdd
    }

    /// The AFDD extension.
    pub fn afdd() -> Self {
        ProtocolKind::Afdd
    }

    /// Short human-readable name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            ProtocolKind::Pdd { probability } => format!("PDD(p={probability})"),
            ProtocolKind::Fdd => "FDD".to_string(),
            ProtocolKind::Afdd => "AFDD".to_string(),
        }
    }

    /// Whether the schedule this protocol produces is a deterministic
    /// function of the instance (FDD and AFDD) or depends on random
    /// activation draws (PDD).
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, ProtocolKind::Pdd { .. })
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_names() {
        assert_eq!(ProtocolKind::fdd().name(), "FDD");
        assert_eq!(ProtocolKind::afdd().name(), "AFDD");
        assert_eq!(ProtocolKind::pdd(0.2).unwrap().name(), "PDD(p=0.2)");
        assert_eq!(ProtocolKind::pdd_unchecked(0.2).to_string(), "PDD(p=0.2)");
    }

    #[test]
    fn determinism_flags() {
        assert!(ProtocolKind::fdd().is_deterministic());
        assert!(ProtocolKind::afdd().is_deterministic());
        assert!(!ProtocolKind::pdd_unchecked(0.5).is_deterministic());
    }

    #[test]
    fn out_of_range_probabilities_are_errors_not_panics() {
        for bad in [0.0, -0.3, 1.5, f64::NAN, f64::INFINITY] {
            let err = ProtocolKind::pdd(bad).unwrap_err();
            assert!(
                matches!(err, ProtocolError::InvalidParameter(_)),
                "expected InvalidParameter for {bad}, got {err:?}"
            );
            assert!(err.to_string().contains("probability"), "{err}");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn unchecked_constructor_still_panics_out_of_range() {
        let _ = ProtocolKind::pdd_unchecked(1.5);
    }

    #[test]
    fn probability_one_is_allowed() {
        // p = 1 makes PDD try every dormant node at once, a useful stress
        // case in tests.
        assert_eq!(
            ProtocolKind::pdd(1.0).unwrap(),
            ProtocolKind::Pdd { probability: 1.0 }
        );
    }
}
