//! Execution statistics of a distributed scheduling run.

use serde::{Deserialize, Serialize};

/// Counters describing how a PDD/FDD/AFDD run unfolded.
///
/// These are the quantities behind the complexity analysis of Theorem 5 and
/// the execution-time figures (Figures 8 and 9): the wall-clock cost of a run
/// is fully determined by the number of SCREAM slots, handshake steps and
/// synchronization barriers it executed, which in turn are determined by the
/// counters recorded here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of rounds executed (one slot is sealed per round).
    pub rounds: u64,
    /// Number of slot-construction iterations across all rounds (each
    /// iteration is one `SelectActive` + handshake + verification cycle).
    pub slot_iterations: u64,
    /// Number of full leader elections run (one per control hand-over, plus
    /// one per iteration for FDD).
    pub elections: u64,
    /// Number of SCREAM-primitive invocations of any kind.
    pub scream_invocations: u64,
    /// Number of two-way handshake time steps executed.
    pub handshake_steps: u64,
    /// Number of iterations in which a previously scheduled edge vetoed the
    /// tentative active set.
    pub vetoes: u64,
    /// Number of ACTIVE → TRIED transitions (active edges discarded from the
    /// slot under construction).
    pub tried_transitions: u64,
    /// Whether the run terminated normally with every demand satisfied.
    pub terminated: bool,
}

impl RunStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average number of iterations needed to seal a slot.
    pub fn iterations_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.slot_iterations as f64 / self.rounds as f64
        }
    }

    /// Fraction of active attempts that were discarded (TRIED) rather than
    /// allocated. A rough measure of how much work the randomized selection
    /// of PDD wastes compared to FDD.
    pub fn tried_fraction(&self) -> f64 {
        let attempts = self.tried_transitions + self.allocations_lower_bound();
        if attempts == 0 {
            0.0
        } else {
            self.tried_transitions as f64 / attempts as f64
        }
    }

    /// Lower bound on the number of successful allocations: every round
    /// allocates at least the controller's edge.
    fn allocations_lower_bound(&self) -> u64 {
        self.rounds
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} iterations, {} elections, {} screams, {} handshakes, {} vetoes, {} tried, terminated={}",
            self.rounds,
            self.slot_iterations,
            self.elections,
            self.scream_invocations,
            self.handshake_steps,
            self.vetoes,
            self.tried_transitions,
            self.terminated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios_handle_zero_denominators() {
        let s = RunStats::new();
        assert_eq!(s.iterations_per_round(), 0.0);
        assert_eq!(s.tried_fraction(), 0.0);
    }

    #[test]
    fn iterations_per_round_is_a_simple_ratio() {
        let s = RunStats {
            rounds: 4,
            slot_iterations: 10,
            ..RunStats::default()
        };
        assert!((s.iterations_per_round() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn tried_fraction_reflects_wasted_attempts() {
        let s = RunStats {
            rounds: 10,
            tried_transitions: 30,
            ..RunStats::default()
        };
        assert!((s.tried_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_the_headline_counters() {
        let s = RunStats {
            rounds: 3,
            elections: 5,
            terminated: true,
            ..RunStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("3 rounds"));
        assert!(text.contains("5 elections"));
        assert!(text.contains("terminated=true"));
    }
}
