//! Per-node protocol states (Figure 1 of the paper).

use serde::{Deserialize, Serialize};

/// The mutually exclusive states a node moves through while PDD or FDD
/// executes (Section III-C and Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeState {
    /// The node has not yet been picked into any active subset of the
    /// current slot.
    Dormant,
    /// Controller of the current slot (winner of the round's leader
    /// election); its edge is guaranteed a place in the slot.
    Control,
    /// The node's edge is tentatively included in the current slot and is
    /// being checked by the two-way handshake.
    Active,
    /// The node's edge has been confirmed into the current slot.
    Allocated,
    /// The node was active in this round but its handshake failed; it may be
    /// re-tried only in the next round.
    Tried,
    /// The node's demand has been fully satisfied.
    Complete,
    /// The whole algorithm has terminated (every node is complete).
    Terminate,
}

impl NodeState {
    /// Whether a node in this state transmits during the handshake time step
    /// of the current iteration.
    pub fn participates_in_handshake(self) -> bool {
        matches!(self, NodeState::Active | NodeState::Allocated | NodeState::Control)
    }

    /// Whether a node in this state holds veto power in the verification
    /// step (it was already part of the slot before the current actives were
    /// tried).
    pub fn has_veto_power(self) -> bool {
        matches!(self, NodeState::Allocated | NodeState::Control)
    }

    /// Whether a node in this state still has pending demand to schedule in
    /// future rounds (i.e. it competes in the next leader election).
    pub fn competes_for_control(self) -> bool {
        !matches!(self, NodeState::Complete | NodeState::Terminate)
    }

    /// Whether this is a terminal state for the whole protocol.
    pub fn is_terminal(self) -> bool {
        matches!(self, NodeState::Terminate)
    }
}

impl std::fmt::Display for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NodeState::Dormant => "DORMANT",
            NodeState::Control => "CONTROL",
            NodeState::Active => "ACTIVE",
            NodeState::Allocated => "ALLOCATED",
            NodeState::Tried => "TRIED",
            NodeState::Complete => "COMPLETE",
            NodeState::Terminate => "TERMINATE",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [NodeState; 7] = [
        NodeState::Dormant,
        NodeState::Control,
        NodeState::Active,
        NodeState::Allocated,
        NodeState::Tried,
        NodeState::Complete,
        NodeState::Terminate,
    ];

    #[test]
    fn handshake_participants_are_active_allocated_control() {
        let expected = [NodeState::Active, NodeState::Allocated, NodeState::Control];
        for s in ALL {
            assert_eq!(s.participates_in_handshake(), expected.contains(&s), "{s}");
        }
    }

    #[test]
    fn veto_power_is_limited_to_previously_scheduled_edges() {
        for s in ALL {
            assert_eq!(
                s.has_veto_power(),
                matches!(s, NodeState::Allocated | NodeState::Control),
                "{s}"
            );
        }
        // Active nodes never veto: a failed active handshake only discards
        // that active edge.
        assert!(!NodeState::Active.has_veto_power());
    }

    #[test]
    fn complete_and_terminate_do_not_compete_for_control() {
        assert!(!NodeState::Complete.competes_for_control());
        assert!(!NodeState::Terminate.competes_for_control());
        assert!(NodeState::Dormant.competes_for_control());
        assert!(NodeState::Tried.competes_for_control());
    }

    #[test]
    fn only_terminate_is_terminal() {
        for s in ALL {
            assert_eq!(s.is_terminal(), s == NodeState::Terminate);
        }
    }

    #[test]
    fn display_uses_the_paper_names() {
        assert_eq!(NodeState::Dormant.to_string(), "DORMANT");
        assert_eq!(NodeState::Control.to_string(), "CONTROL");
        assert_eq!(NodeState::Terminate.to_string(), "TERMINATE");
    }
}
