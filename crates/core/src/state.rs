//! Per-node protocol states (Figure 1 of the paper).

use serde::{Deserialize, Serialize};

/// The mutually exclusive states a node moves through while PDD or FDD
/// executes (Section III-C and Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeState {
    /// The node has not yet been picked into any active subset of the
    /// current slot.
    Dormant,
    /// Controller of the current slot (winner of the round's leader
    /// election); its edge is guaranteed a place in the slot.
    Control,
    /// The node's edge is tentatively included in the current slot and is
    /// being checked by the two-way handshake.
    Active,
    /// The node's edge has been confirmed into the current slot.
    Allocated,
    /// The node was active in this round but its handshake failed; it may be
    /// re-tried only in the next round.
    Tried,
    /// The node's demand has been fully satisfied.
    Complete,
    /// The whole algorithm has terminated (every node is complete).
    Terminate,
}

impl NodeState {
    // Note for readers of the paper's Figure 1: handshake participation
    // (CONTROL/ALLOCATED/ACTIVE transmit) and veto power (CONTROL/ALLOCATED
    // scream on a failed handshake) are no longer dispatched through
    // per-state predicates here — the runtime tracks the slot's confirmed
    // edges in a `SlotLedger` and prices tentative actives with
    // `SlotLedger::probe_claims`, which encodes exactly those two roles.

    /// Whether a node in this state still has pending demand to schedule in
    /// future rounds (i.e. it competes in the next leader election).
    pub fn competes_for_control(self) -> bool {
        !matches!(self, NodeState::Complete | NodeState::Terminate)
    }

    /// Whether this is a terminal state for the whole protocol.
    pub fn is_terminal(self) -> bool {
        matches!(self, NodeState::Terminate)
    }
}

impl std::fmt::Display for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NodeState::Dormant => "DORMANT",
            NodeState::Control => "CONTROL",
            NodeState::Active => "ACTIVE",
            NodeState::Allocated => "ALLOCATED",
            NodeState::Tried => "TRIED",
            NodeState::Complete => "COMPLETE",
            NodeState::Terminate => "TERMINATE",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [NodeState; 7] = [
        NodeState::Dormant,
        NodeState::Control,
        NodeState::Active,
        NodeState::Allocated,
        NodeState::Tried,
        NodeState::Complete,
        NodeState::Terminate,
    ];

    #[test]
    fn complete_and_terminate_do_not_compete_for_control() {
        assert!(!NodeState::Complete.competes_for_control());
        assert!(!NodeState::Terminate.competes_for_control());
        assert!(NodeState::Dormant.competes_for_control());
        assert!(NodeState::Tried.competes_for_control());
    }

    #[test]
    fn only_terminate_is_terminal() {
        for s in ALL {
            assert_eq!(s.is_terminal(), s == NodeState::Terminate);
        }
    }

    #[test]
    fn display_uses_the_paper_names() {
        assert_eq!(NodeState::Dormant.to_string(), "DORMANT");
        assert_eq!(NodeState::Control.to_string(), "CONTROL");
        assert_eq!(NodeState::Terminate.to_string(), "TERMINATE");
    }
}
