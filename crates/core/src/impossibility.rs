//! The impossibility of *localized* distributed scheduling under physical
//! interference (Theorem 1), made constructive.
//!
//! The theorem's proof sketch builds a line network in which a link `l` and a
//! far-away link `l'` are individually compatible with the links already
//! scheduled in a slot, but aggregate interference makes the slot infeasible
//! when both are added. A localized algorithm (one whose per-link decisions
//! only consult a constant-hop neighborhood) cannot distinguish the two
//! situations and can therefore produce an infeasible schedule.
//!
//! [`CounterExample`] constructs such an instance explicitly so tests and
//! examples can exhibit the failure, and [`LocalizedGreedy`] is the strawman
//! localized scheduler the construction defeats.

use serde::{Deserialize, Serialize};

use scream_netsim::{PropagationModel, RadioConfig, RadioEnvironment};
use scream_topology::{Deployment, Graph, Link, NodeId, Point2, Rect};

/// A concrete network and link pair realizing the construction in the proof
/// of Theorem 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterExample {
    /// The deployment (a long line of nodes).
    pub deployment: Deployment,
    /// The link `l` whose scheduling decision is under scrutiny.
    pub link_l: Link,
    /// The distant link `l'` outside any constant-hop neighborhood of `l`.
    pub link_l_prime: Link,
    /// The locality radius `k` (in hops) that the construction defeats.
    pub locality_hops: usize,
    /// SINR threshold used by the construction.
    pub sinr_threshold_db: f64,
}

impl CounterExample {
    /// Builds a counterexample defeating locality radius `k` (hops).
    ///
    /// The construction places `4k + 8` nodes on a line. The two candidate
    /// links sit at opposite ends — more than `k` hops apart — and the SINR
    /// threshold is tuned so that each link is feasible on its own (and
    /// together with nothing else) but the pair is infeasible when scheduled
    /// concurrently: each link's ACK receiver sits close enough to the other
    /// link's data transmitter that the *combined* interference and noise
    /// push the SINR just below the threshold, while either source alone
    /// stays above it.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn for_locality(k: usize) -> Self {
        assert!(k > 0, "locality radius must be at least one hop");
        // A line of nodes spaced so that consecutive nodes are well within
        // range (the communication graph is the line) but the two candidate
        // links are Θ(n) hops apart for any fixed k.
        let spacing = 150.0;
        let count = 4 * k + 8;
        let positions: Vec<Point2> = (0..count)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect();
        let region = Rect::new(
            Point2::ORIGIN,
            Point2::new((count - 1) as f64 * spacing, 1.0),
        );
        let deployment = Deployment::from_positions(&positions, 20.0, region)
            .expect("line construction is non-empty and contiguous");

        let last = (count - 1) as u32;
        Self {
            deployment,
            // Link l at the left end: node 1 transmits to node 0.
            link_l: Link::new(NodeId::new(1), NodeId::new(0)),
            // Link l' at the right end: node count-2 transmits to node count-1.
            link_l_prime: Link::new(NodeId::new(last - 1), NodeId::new(last)),
            locality_hops: k,
            sinr_threshold_db: Self::tuned_threshold(&positions, spacing),
        }
    }

    /// Chooses a SINR threshold strictly between the SINR each candidate link
    /// sees when scheduled alone and the SINR it sees when both are
    /// scheduled, so the construction is guaranteed to separate the two
    /// cases.
    fn tuned_threshold(positions: &[Point2], spacing: f64) -> f64 {
        let propagation = PropagationModel::log_distance(3.0);
        let noise_dbm = -100.0;
        let tx_dbm = 20.0;
        // Worst affected reception: the ACK of link l is transmitted by node 0
        // and received by node 1, while node count-2 (the data transmitter of
        // l') interferes from (count - 3) * spacing away.
        let n = positions.len();
        let signal_dbm = tx_dbm - propagation.path_loss_db(spacing);
        let interferer_distance = positions[1].distance(positions[n - 2]);
        let interference_dbm = tx_dbm - propagation.path_loss_db(interferer_distance);
        let noise_mw = 10f64.powf(noise_dbm / 10.0);
        let interference_mw = 10f64.powf(interference_dbm / 10.0);
        let signal_mw = 10f64.powf(signal_dbm / 10.0);
        let sinr_alone_db = 10.0 * (signal_mw / noise_mw).log10();
        let sinr_both_db = 10.0 * (signal_mw / (noise_mw + interference_mw)).log10();
        // Midpoint between the two regimes (in dB).
        (sinr_alone_db + sinr_both_db) / 2.0
    }

    /// The radio environment realizing the construction.
    pub fn environment(&self) -> RadioEnvironment {
        RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(
                RadioConfig::mesh_default()
                    .with_sinr_threshold_db(self.sinr_threshold_db)
                    .with_noise_floor_dbm(-100.0),
            )
            .build(&self.deployment)
    }

    /// Hop distance between the two candidate links in the communication
    /// graph (always greater than the locality radius).
    pub fn link_separation_hops(&self, graph: &Graph) -> usize {
        graph
            .link_hop_distance(
                (self.link_l.head, self.link_l.tail),
                (self.link_l_prime.head, self.link_l_prime.tail),
            )
            .unwrap_or(usize::MAX)
    }
}

/// A strawman *localized* scheduler: it adds a link to a slot whenever the
/// links already present within `k` hops of it leave it feasible, ignoring
/// everything farther away — precisely the class of algorithms Theorem 1
/// rules out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalizedGreedy {
    /// The locality radius in hops.
    pub locality_hops: usize,
}

impl LocalizedGreedy {
    /// Creates a localized scheduler with radius `k` hops.
    pub fn new(locality_hops: usize) -> Self {
        Self { locality_hops }
    }

    /// Decides — looking only at links within `k` hops of `candidate` —
    /// whether `candidate` may join the slot `existing`.
    pub fn admits(
        &self,
        env: &RadioEnvironment,
        graph: &Graph,
        existing: &[Link],
        candidate: Link,
    ) -> bool {
        let visible: Vec<Link> = existing
            .iter()
            .copied()
            .filter(|l| {
                graph
                    .link_hop_distance((l.head, l.tail), (candidate.head, candidate.tail))
                    .is_some_and(|d| d <= self.locality_hops)
            })
            .collect();
        env.can_add_to_slot(&visible, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_links_are_individually_feasible_but_jointly_infeasible() {
        for k in [1usize, 2, 3] {
            let ce = CounterExample::for_locality(k);
            let env = ce.environment();
            assert!(
                env.slot_feasible(&[ce.link_l]),
                "l alone must be feasible (k={k})"
            );
            assert!(
                env.slot_feasible(&[ce.link_l_prime]),
                "l' alone must be feasible (k={k})"
            );
            assert!(
                !env.slot_feasible(&[ce.link_l, ce.link_l_prime]),
                "l and l' together must be infeasible (k={k})"
            );
        }
    }

    #[test]
    fn the_links_are_outside_each_others_locality() {
        let k = 2;
        let ce = CounterExample::for_locality(k);
        let env = ce.environment();
        let graph = env.communication_graph();
        assert!(graph.is_connected());
        assert!(ce.link_separation_hops(&graph) > k);
    }

    #[test]
    fn a_localized_greedy_scheduler_builds_an_infeasible_slot() {
        // Both endpoints run the same localized rule; each admits its link
        // because the other is invisible, and the resulting slot violates the
        // physical model — the constructive content of Theorem 1.
        let k = 2;
        let ce = CounterExample::for_locality(k);
        let env = ce.environment();
        let graph = env.communication_graph();
        let alg = LocalizedGreedy::new(k);

        let mut slot: Vec<Link> = Vec::new();
        assert!(alg.admits(&env, &graph, &slot, ce.link_l));
        slot.push(ce.link_l);
        assert!(
            alg.admits(&env, &graph, &slot, ce.link_l_prime),
            "the localized rule cannot see link l and admits l'"
        );
        slot.push(ce.link_l_prime);
        assert!(!env.slot_feasible(&slot), "the produced slot is infeasible");
    }

    #[test]
    fn a_global_rule_rejects_the_second_link() {
        let ce = CounterExample::for_locality(2);
        let env = ce.environment();
        assert!(!env.can_add_to_slot(&[ce.link_l], ce.link_l_prime));
    }

    #[test]
    fn construction_scales_with_the_locality_radius() {
        let small = CounterExample::for_locality(1);
        let large = CounterExample::for_locality(5);
        assert!(large.deployment.len() > small.deployment.len());
        assert_eq!(large.locality_hops, 5);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_locality_is_rejected() {
        let _ = CounterExample::for_locality(0);
    }
}
