//! Leader election on top of the SCREAM primitive (Section III-B).
//!
//! Every node has a unique id; the election selects the *highest* id among
//! the candidates by iterating over the id bits from the most significant
//! downwards. In each iteration the candidates whose current bit is 1 (and
//! who have not been voted out) scream; the network-wide OR tells everyone
//! whether any such candidate exists, and candidates whose bit is 0 are voted
//! out whenever it does. After `id_bits` iterations exactly one candidate —
//! the one with the highest id — survives.
//!
//! Cost: `id_bits` SCREAM invocations, i.e. `O(K · log n)` slots.

use scream_netsim::ProtocolTiming;
use scream_topology::NodeId;

use crate::scream::ScreamChannel;

/// The distributed leader-election procedure.
///
/// The struct is stateless; it exists so the procedure has a home for its
/// documentation and can be mocked/extended (e.g. the AFDD variant reuses it
/// over restricted candidate sets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaderElection;

impl LeaderElection {
    /// Creates the election procedure.
    pub fn new() -> Self {
        Self
    }

    /// Number of bits used to represent ids for an `n`-node network
    /// (`id_bits` in the paper's pseudocode).
    pub fn id_bits(node_count: usize) -> u32 {
        NodeId::id_bits(node_count)
    }

    /// Runs one election among the nodes flagged in `candidates`
    /// (`candidates[i] == true` means node `i` competes; all other nodes
    /// participate passively, relaying screams).
    ///
    /// Returns the winner — the highest-id candidate — or `None` if there are
    /// no candidates. The SCREAM slots consumed are charged to `timing`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates.len()` differs from the channel's node count.
    pub fn elect(
        &self,
        channel: &ScreamChannel<'_>,
        candidates: &[bool],
        timing: &mut ProtocolTiming,
    ) -> Option<NodeId> {
        assert_eq!(
            candidates.len(),
            channel.node_count(),
            "leader election needs one candidacy flag per node"
        );
        let n = candidates.len();
        let bits = Self::id_bits(n);
        // votedout[i] starts false for candidates; non-candidates are treated
        // as permanently voted out (they only relay).
        let mut votedout: Vec<bool> = candidates.iter().map(|&c| !c).collect();

        for j in (0..bits).rev() {
            let screams: Vec<bool> = (0..n)
                .map(|i| !votedout[i] && NodeId::new(i as u32).bit(j))
                .collect();
            let result = channel.network_or(&screams, timing);
            // `result` is identical at every node when K >= ID; a node only
            // needs its own entry, which is what a real deployment would use.
            for i in 0..n {
                if !votedout[i] && !NodeId::new(i as u32).bit(j) && result[i] {
                    votedout[i] = true;
                }
            }
        }

        let survivors: Vec<NodeId> = (0..n)
            .filter(|&i| !votedout[i])
            .map(|i| NodeId::new(i as u32))
            .collect();
        debug_assert!(
            survivors.len() <= 1,
            "more than one survivor after leader election: {survivors:?}"
        );
        survivors.into_iter().next()
    }

    /// Total number of SCREAM slots one election costs on `channel`.
    pub fn slot_cost(&self, channel: &ScreamChannel<'_>) -> u64 {
        Self::id_bits(channel.node_count()) as u64 * channel.scream_slots() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProtocolConfig, ScreamFidelity};
    use scream_netsim::{PropagationModel, RadioEnvironment};
    use scream_topology::GridDeployment;

    fn grid_env(side: usize, spacing: f64) -> RadioEnvironment {
        let d = GridDeployment::new(side, side, spacing).build();
        RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d)
    }

    fn channel(env: &RadioEnvironment, fidelity: ScreamFidelity) -> ScreamChannel<'_> {
        let id = env.interference_diameter();
        ScreamChannel::new(
            env,
            &ProtocolConfig::paper_default()
                .with_scream_slots(id.max(1))
                .with_fidelity(fidelity),
        )
        .unwrap()
    }

    #[test]
    fn elects_the_highest_id_candidate() {
        let env = grid_env(4, 150.0);
        let ch = channel(&env, ScreamFidelity::Ideal);
        let mut t = ProtocolTiming::new();
        let mut candidates = vec![false; 16];
        for i in [3usize, 7, 11] {
            candidates[i] = true;
        }
        assert_eq!(
            LeaderElection::new().elect(&ch, &candidates, &mut t),
            Some(NodeId::new(11))
        );
    }

    #[test]
    fn single_candidate_wins_and_no_candidate_returns_none() {
        let env = grid_env(3, 150.0);
        let ch = channel(&env, ScreamFidelity::Ideal);
        let mut t = ProtocolTiming::new();
        let mut candidates = vec![false; 9];
        candidates[4] = true;
        assert_eq!(
            LeaderElection::new().elect(&ch, &candidates, &mut t),
            Some(NodeId::new(4))
        );
        assert_eq!(LeaderElection::new().elect(&ch, &[false; 9], &mut t), None);
    }

    #[test]
    fn all_candidates_yields_the_maximum_id() {
        let env = grid_env(4, 150.0);
        let ch = channel(&env, ScreamFidelity::Ideal);
        let mut t = ProtocolTiming::new();
        assert_eq!(
            LeaderElection::new().elect(&ch, &[true; 16], &mut t),
            Some(NodeId::new(15))
        );
    }

    #[test]
    fn physical_and_ideal_fidelity_elect_the_same_leader() {
        let env = grid_env(4, 150.0);
        let ideal = channel(&env, ScreamFidelity::Ideal);
        let physical = channel(&env, ScreamFidelity::Physical);
        let mut t = ProtocolTiming::new();
        for seedish in 0..8u32 {
            let candidates: Vec<bool> = (0..16).map(|i| (i * 7 + seedish) % 3 == 0).collect();
            assert_eq!(
                LeaderElection::new().elect(&ideal, &candidates, &mut t),
                LeaderElection::new().elect(&physical, &candidates, &mut t),
                "divergence for candidate pattern {seedish}"
            );
        }
    }

    #[test]
    fn election_cost_is_id_bits_times_k() {
        let env = grid_env(4, 150.0);
        let ch = channel(&env, ScreamFidelity::Ideal);
        let mut t = ProtocolTiming::new();
        let expected = LeaderElection::new().slot_cost(&ch);
        LeaderElection::new().elect(&ch, &[true; 16], &mut t);
        assert_eq!(t.scream_slots, expected);
        // 16 nodes -> 4 id bits.
        assert_eq!(expected, 4 * ch.scream_slots() as u64);
    }

    #[test]
    fn repeated_elections_with_shrinking_candidate_sets_enumerate_ids_in_decreasing_order() {
        // This is exactly how FDD walks through the nodes.
        let env = grid_env(3, 150.0);
        let ch = channel(&env, ScreamFidelity::Ideal);
        let mut t = ProtocolTiming::new();
        let mut candidates = vec![true; 9];
        let mut order = Vec::new();
        while let Some(winner) = LeaderElection::new().elect(&ch, &candidates, &mut t) {
            order.push(winner.0);
            candidates[winner.index()] = false;
        }
        assert_eq!(order, (0..9u32).rev().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "candidacy flag per node")]
    fn wrong_candidate_vector_length_panics() {
        let env = grid_env(3, 150.0);
        let ch = channel(&env, ScreamFidelity::Ideal);
        let mut t = ProtocolTiming::new();
        let _ = LeaderElection::new().elect(&ch, &[true; 4], &mut t);
    }
}
