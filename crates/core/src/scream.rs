//! The SCREAM primitive: a collision-resilient network-wide boolean OR.
//!
//! Every node holds a boolean `var`; after the primitive runs for `K` slots,
//! every node knows `var(1) ∨ var(2) ∨ … ∨ var(n)`. A node whose value (or
//! relayed value) is `true` *screams* — transmits `SMBytes` — in every
//! remaining slot; all other nodes listen and start relaying as soon as they
//! detect any channel activity. Because detection is energy-based carrier
//! sensing, simultaneous screams only reinforce each other, which is what
//! makes the primitive deterministic in time and resilient to collisions
//! (Section III-A; validated on motes in Section V and in `scream-mote`).
//!
//! Correctness requires `K ≥ ID(G_S)`: the OR value spreads at most one hop
//! of the sensitivity graph per slot.

use scream_netsim::{ProtocolTiming, RadioEnvironment};
use scream_topology::NodeId;

use crate::config::{ProtocolConfig, ScreamFidelity};
use crate::error::ProtocolError;

/// A configured SCREAM channel bound to a radio environment.
///
/// The channel knows how many slots each invocation runs for (`K`), how the
/// flood is simulated ([`ScreamFidelity`]) and the sensitivity structure of
/// the network, and it accounts every slot it executes into a
/// [`ProtocolTiming`] tally.
#[derive(Debug, Clone)]
pub struct ScreamChannel<'a> {
    env: &'a RadioEnvironment,
    scream_slots: usize,
    fidelity: ScreamFidelity,
    interference_diameter: usize,
}

impl<'a> ScreamChannel<'a> {
    /// Creates a channel, verifying that `K` scream slots are enough for the
    /// network-wide OR to be correct on this environment.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::DisconnectedSensitivityGraph`] if the sensitivity
    ///   graph is not strongly connected (no finite `K` works);
    /// * [`ProtocolError::ScreamSlotsTooSmall`] if `K < ID(G_S)`;
    /// * [`ProtocolError::InvalidParameter`] if the configuration is invalid.
    pub fn new(env: &'a RadioEnvironment, config: &ProtocolConfig) -> Result<Self, ProtocolError> {
        config.validate()?;
        let id = env.interference_diameter();
        if id == usize::MAX {
            return Err(ProtocolError::DisconnectedSensitivityGraph);
        }
        if config.scream_slots < id {
            return Err(ProtocolError::ScreamSlotsTooSmall {
                configured: config.scream_slots,
                interference_diameter: id,
            });
        }
        Ok(Self {
            env,
            scream_slots: config.scream_slots,
            fidelity: config.fidelity,
            interference_diameter: id,
        })
    }

    /// Creates a channel without checking `K` against the interference
    /// diameter. With `K < ID(G_S)` and [`ScreamFidelity::Physical`] the OR
    /// result will be wrong for distant nodes — exactly the failure mode the
    /// paper's correctness condition rules out. Exposed for experiments and
    /// tests that demonstrate that failure.
    pub fn new_unchecked(
        env: &'a RadioEnvironment,
        scream_slots: usize,
        fidelity: ScreamFidelity,
    ) -> Self {
        Self {
            env,
            scream_slots,
            fidelity,
            interference_diameter: env.interference_diameter(),
        }
    }

    /// Number of slots each invocation runs for (`K`).
    pub fn scream_slots(&self) -> usize {
        self.scream_slots
    }

    /// The interference diameter of the underlying sensitivity graph.
    pub fn interference_diameter(&self) -> usize {
        self.interference_diameter
    }

    /// The simulation fidelity in force.
    pub fn fidelity(&self) -> ScreamFidelity {
        self.fidelity
    }

    /// Number of nodes on the channel.
    pub fn node_count(&self) -> usize {
        self.env.node_count()
    }

    /// Runs one invocation of the SCREAM primitive.
    ///
    /// `initial[i]` is node `i`'s local `var`; the returned vector is each
    /// node's view of the network-wide OR after `K` slots. Nodes not listed
    /// participate passively (relay-only), as required by the paper.
    ///
    /// The `K` executed slots are charged to `timing`.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the number of nodes.
    pub fn network_or(&self, initial: &[bool], timing: &mut ProtocolTiming) -> Vec<bool> {
        assert_eq!(
            initial.len(),
            self.env.node_count(),
            "SCREAM needs one boolean per node"
        );
        timing.add_scream_slots(self.scream_slots as u64);
        match self.fidelity {
            ScreamFidelity::Ideal => {
                let any = initial.iter().any(|&v| v);
                vec![any; initial.len()]
            }
            ScreamFidelity::Physical => self.flood(initial),
        }
    }

    /// Physical-layer simulation of the flood: in every slot the current
    /// relay set transmits and every silent node performs energy detection
    /// against the aggregate received power.
    fn flood(&self, initial: &[bool]) -> Vec<bool> {
        let n = initial.len();
        let mut relay = initial.to_vec();
        for _slot in 0..self.scream_slots {
            let transmitters: Vec<NodeId> = (0..n as u32)
                .map(NodeId::new)
                .filter(|id| relay[id.index()])
                .collect();
            if transmitters.is_empty() {
                break;
            }
            let mut next = relay.clone();
            for listener in 0..n {
                if relay[listener] {
                    continue;
                }
                if self
                    .env
                    .carrier_sense(NodeId::new(listener as u32), &transmitters)
                {
                    next[listener] = true;
                }
            }
            relay = next;
        }
        relay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scream_netsim::PropagationModel;
    use scream_topology::GridDeployment;

    fn line_env(count: usize, spacing: f64) -> RadioEnvironment {
        let d = GridDeployment::new(count, 1, spacing).build();
        RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d)
    }

    fn timing() -> ProtocolTiming {
        ProtocolTiming::new()
    }

    #[test]
    fn construction_checks_k_against_interference_diameter() {
        let env = line_env(6, 150.0);
        let id = env.interference_diameter();
        assert!((2..usize::MAX).contains(&id));

        let ok = ScreamChannel::new(&env, &ProtocolConfig::paper_default().with_scream_slots(id));
        assert!(ok.is_ok());
        let too_small = ScreamChannel::new(
            &env,
            &ProtocolConfig::paper_default().with_scream_slots(id - 1),
        );
        assert!(matches!(
            too_small,
            Err(ProtocolError::ScreamSlotsTooSmall { .. })
        ));
    }

    #[test]
    fn disconnected_network_is_rejected() {
        // Two nodes 100 km apart cannot even carrier-sense each other.
        let env = line_env(2, 100_000.0);
        let err = ScreamChannel::new(&env, &ProtocolConfig::paper_default()).unwrap_err();
        assert_eq!(err, ProtocolError::DisconnectedSensitivityGraph);
    }

    #[test]
    fn ideal_or_matches_boolean_or() {
        let env = line_env(5, 150.0);
        let config = ProtocolConfig::paper_default().with_scream_slots(10);
        let ch = ScreamChannel::new(&env, &config).unwrap();
        let mut t = timing();
        assert_eq!(
            ch.network_or(&[false, false, true, false, false], &mut t),
            vec![true; 5]
        );
        assert_eq!(ch.network_or(&[false; 5], &mut t), vec![false; 5]);
    }

    #[test]
    fn physical_flood_reaches_everyone_when_k_is_large_enough() {
        let env = line_env(8, 150.0);
        let id = env.interference_diameter();
        let config = ProtocolConfig::paper_default()
            .with_scream_slots(id)
            .with_fidelity(ScreamFidelity::Physical);
        let ch = ScreamChannel::new(&env, &config).unwrap();
        let mut t = timing();
        // A single screamer at one end must be heard by the far end.
        let mut initial = vec![false; 8];
        initial[0] = true;
        assert_eq!(ch.network_or(&initial, &mut t), vec![true; 8]);
        // No screamer: everyone stays false.
        assert_eq!(ch.network_or(&[false; 8], &mut t), vec![false; 8]);
    }

    #[test]
    fn physical_flood_with_insufficient_k_misses_distant_nodes() {
        let env = line_env(8, 150.0);
        let id = env.interference_diameter();
        assert!(
            id >= 3,
            "line of 8 nodes should have a multi-hop sensitivity graph"
        );
        let ch = ScreamChannel::new_unchecked(&env, 1, ScreamFidelity::Physical);
        let mut t = timing();
        let mut initial = vec![false; 8];
        initial[0] = true;
        let result = ch.network_or(&initial, &mut t);
        assert!(result[1], "direct sensitivity neighbors hear one slot");
        assert!(
            !result[7],
            "the far end cannot learn the OR in a single slot (K < ID)"
        );
    }

    #[test]
    fn physical_and_ideal_agree_when_the_precondition_holds() {
        let env = line_env(7, 140.0);
        let id = env.interference_diameter();
        let physical = ScreamChannel::new(
            &env,
            &ProtocolConfig::paper_default()
                .with_scream_slots(id)
                .with_fidelity(ScreamFidelity::Physical),
        )
        .unwrap();
        let ideal = ScreamChannel::new(
            &env,
            &ProtocolConfig::paper_default()
                .with_scream_slots(id)
                .with_fidelity(ScreamFidelity::Ideal),
        )
        .unwrap();
        let mut t = timing();
        for start in 0..7 {
            let mut initial = vec![false; 7];
            initial[start] = true;
            assert_eq!(
                physical.network_or(&initial, &mut t),
                ideal.network_or(&initial, &mut t),
                "divergence for screamer {start}"
            );
        }
    }

    #[test]
    fn every_invocation_costs_k_scream_slots() {
        let env = line_env(5, 150.0);
        let config = ProtocolConfig::paper_default().with_scream_slots(7);
        let ch = ScreamChannel::new(&env, &config).unwrap();
        let mut t = timing();
        ch.network_or(&[false; 5], &mut t);
        ch.network_or(&[true, false, false, false, false], &mut t);
        assert_eq!(t.scream_slots, 14);
    }

    #[test]
    #[should_panic(expected = "one boolean per node")]
    fn wrong_input_length_panics() {
        let env = line_env(4, 150.0);
        let ch = ScreamChannel::new(&env, &ProtocolConfig::paper_default()).unwrap();
        let mut t = timing();
        let _ = ch.network_or(&[true; 3], &mut t);
    }

    #[test]
    fn accessors_report_configuration() {
        let env = line_env(5, 150.0);
        let config = ProtocolConfig::paper_default().with_scream_slots(9);
        let ch = ScreamChannel::new(&env, &config).unwrap();
        assert_eq!(ch.scream_slots(), 9);
        assert_eq!(ch.node_count(), 5);
        assert_eq!(ch.fidelity(), ScreamFidelity::Ideal);
        assert!(ch.interference_diameter() <= 9);
    }
}
