//! Error types for the distributed protocols.

use scream_topology::NodeId;

/// Errors produced while configuring or running PDD/FDD.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The configured number of SCREAM slots `K` is smaller than the
    /// network's interference diameter, so the SCREAM primitive cannot
    /// implement a network-wide OR and the protocols would compute wrong
    /// results.
    ScreamSlotsTooSmall {
        /// The configured `K`.
        configured: usize,
        /// The interference diameter `ID(G_S)` of the sensitivity graph.
        interference_diameter: usize,
    },
    /// The sensitivity graph is not strongly connected (infinite interference
    /// diameter), so no finite `K` makes SCREAM correct.
    DisconnectedSensitivityGraph,
    /// The number of nodes in the demand instance does not match the radio
    /// environment.
    NodeCountMismatch {
        /// Nodes in the radio environment.
        environment: usize,
        /// Nodes covered by the demand instance.
        demands: usize,
    },
    /// A protocol parameter is outside its valid range.
    InvalidParameter(String),
    /// Two demanded links share a head node. The paper's model gives every
    /// node exactly one owned uplink; the runtime keys its per-node demand
    /// state by the owning head, so a shared head would silently alias two
    /// links' demands onto one counter and drop traffic. The run refuses the
    /// instance instead of corrupting state.
    ConflictingLinkOwnership {
        /// The node that owns more than one demanded link.
        node: NodeId,
    },
    /// The protocol would exceed its safety bound on rounds without having
    /// satisfied all demands (this indicates an infeasible instance, e.g. a
    /// demanded link that cannot meet the SINR threshold even alone). The
    /// check fires *before* another round is constructed, so a limit of `k`
    /// permits exactly `k` full rounds and the error reports the progress
    /// made up to the abort.
    RoundLimitExceeded {
        /// The round bound that was hit.
        limit: u64,
        /// Rounds fully executed before the abort (always equal to `limit`
        /// when the error comes from a run).
        rounds_executed: u64,
        /// Demands still unsatisfied when the limit was reached.
        unsatisfied_links: usize,
        /// Slots of the partial schedule built before the abort (one per
        /// executed round).
        slots_built: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::ScreamSlotsTooSmall {
                configured,
                interference_diameter,
            } => write!(
                f,
                "K = {configured} SCREAM slots is below the interference diameter {interference_diameter}; the network-wide OR would be incorrect"
            ),
            ProtocolError::DisconnectedSensitivityGraph => write!(
                f,
                "the sensitivity graph is not strongly connected: the interference diameter is infinite"
            ),
            ProtocolError::NodeCountMismatch {
                environment,
                demands,
            } => write!(
                f,
                "radio environment has {environment} nodes but the demand instance covers {demands}"
            ),
            ProtocolError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ProtocolError::ConflictingLinkOwnership { node } => write!(
                f,
                "node {node} owns more than one demanded link; the model allows one uplink per node"
            ),
            ProtocolError::RoundLimitExceeded {
                limit,
                rounds_executed,
                unsatisfied_links,
                slots_built,
            } => write!(
                f,
                "round limit {limit} reached after {rounds_executed} round(s) ({slots_built} slot(s) built) with {unsatisfied_links} link(s) still unsatisfied"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_relevant_numbers() {
        let e = ProtocolError::ScreamSlotsTooSmall {
            configured: 3,
            interference_diameter: 7,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('7'));

        let e = ProtocolError::NodeCountMismatch {
            environment: 64,
            demands: 32,
        };
        assert!(e.to_string().contains("64") && e.to_string().contains("32"));

        let e = ProtocolError::RoundLimitExceeded {
            limit: 1000,
            rounds_executed: 1000,
            unsatisfied_links: 2,
            slots_built: 1000,
        };
        assert!(e.to_string().contains("1000") && e.to_string().contains('2'));

        let e = ProtocolError::ConflictingLinkOwnership {
            node: NodeId::new(7),
        };
        assert!(e.to_string().contains("n7"), "{e}");
        assert!(e.to_string().contains("one uplink"), "{e}");
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&ProtocolError::DisconnectedSensitivityGraph);
    }
}
