//! Error types for the distributed protocols.

/// Errors produced while configuring or running PDD/FDD.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The configured number of SCREAM slots `K` is smaller than the
    /// network's interference diameter, so the SCREAM primitive cannot
    /// implement a network-wide OR and the protocols would compute wrong
    /// results.
    ScreamSlotsTooSmall {
        /// The configured `K`.
        configured: usize,
        /// The interference diameter `ID(G_S)` of the sensitivity graph.
        interference_diameter: usize,
    },
    /// The sensitivity graph is not strongly connected (infinite interference
    /// diameter), so no finite `K` makes SCREAM correct.
    DisconnectedSensitivityGraph,
    /// The number of nodes in the demand instance does not match the radio
    /// environment.
    NodeCountMismatch {
        /// Nodes in the radio environment.
        environment: usize,
        /// Nodes covered by the demand instance.
        demands: usize,
    },
    /// A protocol parameter is outside its valid range.
    InvalidParameter(String),
    /// The protocol exceeded its safety bound on rounds without satisfying
    /// all demands (this indicates an infeasible instance, e.g. a demanded
    /// link that cannot meet the SINR threshold even alone).
    RoundLimitExceeded {
        /// The round bound that was hit.
        limit: u64,
        /// Demands still unsatisfied when the limit was reached.
        unsatisfied_links: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::ScreamSlotsTooSmall {
                configured,
                interference_diameter,
            } => write!(
                f,
                "K = {configured} SCREAM slots is below the interference diameter {interference_diameter}; the network-wide OR would be incorrect"
            ),
            ProtocolError::DisconnectedSensitivityGraph => write!(
                f,
                "the sensitivity graph is not strongly connected: the interference diameter is infinite"
            ),
            ProtocolError::NodeCountMismatch {
                environment,
                demands,
            } => write!(
                f,
                "radio environment has {environment} nodes but the demand instance covers {demands}"
            ),
            ProtocolError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ProtocolError::RoundLimitExceeded {
                limit,
                unsatisfied_links,
            } => write!(
                f,
                "round limit {limit} exceeded with {unsatisfied_links} link(s) still unsatisfied"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_relevant_numbers() {
        let e = ProtocolError::ScreamSlotsTooSmall {
            configured: 3,
            interference_diameter: 7,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('7'));

        let e = ProtocolError::NodeCountMismatch {
            environment: 64,
            demands: 32,
        };
        assert!(e.to_string().contains("64") && e.to_string().contains("32"));

        let e = ProtocolError::RoundLimitExceeded {
            limit: 1000,
            unsatisfied_links: 2,
        };
        assert!(e.to_string().contains("1000") && e.to_string().contains('2'));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&ProtocolError::DisconnectedSensitivityGraph);
    }
}
