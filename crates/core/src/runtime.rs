//! The distributed scheduling runtime: a faithful synchronous simulation of
//! the PDD/FDD/AFDD round structure over a radio environment.
//!
//! The runtime executes the protocols exactly as specified in Section III:
//! rounds of leader election and iterative slot construction, with every
//! handshake outcome taken from the SINR physics of the environment and every
//! network-wide OR executed through the [`ScreamChannel`]. Every synchronized
//! step is charged to a [`ProtocolTiming`] tally so that the wall-clock
//! execution time of a run (Figures 8 and 9) can be reported alongside the
//! schedule it computed (Figures 6 and 7).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scream_netsim::{
    ChannelId, ChannelSlotLedger, ProtocolTiming, RadioEnvironment, SimTime, SlotTiming,
};
use scream_scheduling::{FrameService, Schedule, ScheduleMetrics, SlotPattern};
use scream_topology::{Link, LinkDemands};

use crate::config::ProtocolConfig;
use crate::election::LeaderElection;
use crate::error::ProtocolError;
use crate::protocol::ProtocolKind;
use crate::scream::ScreamChannel;
use crate::state::NodeState;
use crate::stats::RunStats;

/// A distributed scheduler: a protocol variant plus its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedScheduler {
    kind: ProtocolKind,
    config: ProtocolConfig,
}

impl DistributedScheduler {
    /// Creates a scheduler for the given protocol with the given
    /// configuration.
    pub fn new(kind: ProtocolKind, config: ProtocolConfig) -> Self {
        Self { kind, config }
    }

    /// FDD with the paper's default configuration.
    pub fn fdd() -> Self {
        Self::new(ProtocolKind::Fdd, ProtocolConfig::paper_default())
    }

    /// PDD with activation probability `p` and the paper's default
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if the probability is not
    /// in `(0, 1]` (propagated from [`ProtocolKind::pdd`]).
    pub fn pdd(probability: f64) -> Result<Self, ProtocolError> {
        Ok(Self::new(
            ProtocolKind::pdd(probability)?,
            ProtocolConfig::paper_default(),
        ))
    }

    /// AFDD with the paper's default configuration.
    pub fn afdd() -> Self {
        Self::new(ProtocolKind::Afdd, ProtocolConfig::paper_default())
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// The protocol variant.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The configuration in force.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Executes the protocol on the given radio environment and demand
    /// instance, returning the computed schedule together with its timing and
    /// statistics.
    ///
    /// # Channels
    ///
    /// The runtime is channel-aware: when the environment provides several
    /// orthogonal channels (bounded further by
    /// [`ProtocolConfig::max_channels`]), each round's slot is built as a set
    /// of `(channel, link)` claims. The controller opens the slot on channel
    /// 0 and announces a channel-assignment phase; every newly activated edge
    /// then first-fits into the cheapest channel whose handshake it completes
    /// ([`ChannelSlotLedger::probe_claims`] — per-channel SINR plus the
    /// one-radio-per-node cross-channel table). Because the handshake
    /// outcome is local physics, a successful claim must announce which
    /// channel it took: every allocation is charged `⌈log₂ C⌉` extra SCREAM
    /// invocations (one per channel-id bit), exactly like the per-bit
    /// elections, and each iteration's handshake step spans one sub-slot per
    /// channel (a one-radio node probes the channels sequentially).
    ///
    /// With one channel the claims degenerate to the single-channel probe,
    /// the announcement costs zero bits and the run is byte-for-byte the
    /// pre-channel runtime — schedule, [`ProtocolTiming`] and [`RunStats`] —
    /// which is retained as [`run_single_channel`](Self::run_single_channel)
    /// and pinned by the `single_channel_runtime_reduction_is_exact` property
    /// test.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::NodeCountMismatch`] if the demand instance does not
    ///   cover the environment's nodes;
    /// * [`ProtocolError::ConflictingLinkOwnership`] if two demanded links
    ///   share a head node (each node owns at most one uplink in the paper's
    ///   model; aliasing them would silently drop demand);
    /// * [`ProtocolError::ScreamSlotsTooSmall`] /
    ///   [`ProtocolError::DisconnectedSensitivityGraph`] if the SCREAM
    ///   precondition `K ≥ ID(G_S)` cannot be met;
    /// * [`ProtocolError::RoundLimitExceeded`] if the configured round limit
    ///   is reached with demands still unsatisfied — checked *before* each
    ///   round, so a limit of `k` permits exactly `k` full rounds and the
    ///   error carries the progress made.
    pub fn run(
        &self,
        env: &RadioEnvironment,
        demands: &LinkDemands,
    ) -> Result<DistributedRun, ProtocolError> {
        self.config.validate()?;
        if env.node_count() != demands.node_count() {
            return Err(ProtocolError::NodeCountMismatch {
                environment: env.node_count(),
                demands: demands.node_count(),
            });
        }
        let channel = ScreamChannel::new(env, &self.config)?;
        let n = env.node_count();
        let slot_timing = SlotTiming::derive(
            env.config(),
            self.config.scream_bytes,
            self.config.clock_skew,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let election = LeaderElection::new();
        let id_bits = LeaderElection::id_bits(n) as u64;

        let (link_of, mut remaining) = per_node_links(demands)?;
        let round_limit = self.config.round_limit(demands.total_demand());
        let channel_count = self.config.effective_channels(env.channel_count());
        let channel_bits = channel_announcement_bits(channel_count);

        let mut timing = ProtocolTiming::new();
        let mut stats = RunStats::new();
        let mut schedule = Schedule::new();
        let mut controller: Option<usize> = None;
        // One multi-channel interference ledger reused (cleared, not
        // reallocated) across every round's slot construction.
        let mut ledger = ChannelSlotLedger::new(env, channel_count);

        loop {
            if controller.is_none() {
                // A new controller must be elected among the nodes that still
                // have pending demand; completed nodes participate passively.
                timing.add_sync_step();
                let candidates: Vec<bool> = remaining.iter().map(|&r| r > 0).collect();
                let winner = election.elect(&channel, &candidates, &mut timing);
                stats.elections += 1;
                stats.scream_invocations += id_bits;

                // Termination detection: the winner (if any) screams; if the
                // OR comes back false, every node learns that no demand is
                // left and the algorithm terminates.
                timing.add_sync_step();
                let mut exists = vec![false; n];
                if let Some(w) = winner {
                    exists[w.index()] = true;
                }
                let any_controller = channel.network_or(&exists, &mut timing)[0];
                stats.scream_invocations += 1;
                if !any_controller {
                    break;
                }
                controller = winner.map(|w| w.index());
            }
            let ctrl = controller.expect("controller is set when the loop body runs");

            // The round limit is checked before the round is constructed, so
            // a limit of k permits exactly k full rounds and no partially
            // applied work is ever discarded.
            if stats.rounds >= round_limit {
                return Err(ProtocolError::RoundLimitExceeded {
                    limit: round_limit,
                    rounds_executed: stats.rounds,
                    unsatisfied_links: remaining.iter().filter(|&&r| r > 0).count(),
                    slots_built: schedule.length(),
                });
            }

            // ---- GreedyScheduleSlot (one round, one slot) ----
            let mut state: Vec<NodeState> = (0..n)
                .map(|i| {
                    if i == ctrl {
                        NodeState::Control
                    } else if remaining[i] > 0 {
                        NodeState::Dormant
                    } else {
                        NodeState::Complete
                    }
                })
                .collect();

            // Multi-channel interference ledger for the slot under
            // construction: the controller opens the slot on channel 0 (a
            // fresh slot's cheapest channel) and announces the claim.
            ledger.clear();
            ledger.assign(
                ChannelId::ZERO,
                link_of[ctrl].expect("the controller has pending demand"),
            );
            charge_channel_announcement(channel_bits, &channel, &mut timing, &mut stats);

            loop {
                stats.slot_iterations += 1;

                // SelectActive: the only place the three protocol variants
                // differ.
                let actives = self.select_active(
                    &state,
                    &channel,
                    &election,
                    &mut rng,
                    &mut timing,
                    &mut stats,
                );
                for &a in &actives {
                    state[a] = NodeState::Active;
                }

                // Handshake time step: every CONTROL/ALLOCATED/ACTIVE edge
                // performs its two-way handshake concurrently. The
                // channel-assignment phase first-fits each tentative edge
                // into the cheapest channel whose handshake survives —
                // per-channel SINR against the scheduled edges and the other
                // tentatives, plus the half-duplex screen across channels
                // (one radio per node); a channel whose scheduled edges are
                // disturbed vetoes its sub-phase and admits no claim. The
                // phase spans one handshake sub-slot per channel — its
                // sub-phase structure is fixed in advance, since a one-radio
                // node cannot probe two channels at once and nobody can know
                // globally that claims resolved early — so the iteration is
                // charged C handshake slots, exactly one at C = 1.
                timing.add_sync_step();
                for _ in 0..channel_count {
                    timing.add_handshake_slot();
                }
                stats.handshake_steps += channel_count as u64;
                let active_links: Vec<Link> = actives
                    .iter()
                    .map(|&i| link_of[i].expect("active nodes have pending demand"))
                    .collect();
                let probe = ledger.probe_claims(&active_links);

                // Verification time step: previously scheduled edges hold
                // veto power — if any of them failed its handshake on its
                // channel, it SCREAMs; the claims of a vetoed channel have
                // already withdrawn.
                timing.add_sync_step();
                let vetoed = !probe.existing_ok;
                // The veto travels by SCREAM: one network-wide OR either way.
                let mut veto_flags = vec![false; n];
                veto_flags[ctrl] = vetoed;
                let vetoed = channel.network_or(&veto_flags, &mut timing)[0];
                stats.scream_invocations += 1;
                if vetoed {
                    stats.vetoes += 1;
                    scream_obs::counter_add("runtime.vetoes", 1);
                }
                for (idx, &i) in actives.iter().enumerate() {
                    match probe.assignments[idx] {
                        Some(claimed) => {
                            state[i] = NodeState::Allocated;
                            ledger.assign(claimed, active_links[idx]);
                            charge_channel_announcement(
                                channel_bits,
                                &channel,
                                &mut timing,
                                &mut stats,
                            );
                        }
                        None => {
                            state[i] = NodeState::Tried;
                            stats.tried_transitions += 1;
                        }
                    }
                }

                // stillActives check: dormant nodes scream so that everyone
                // learns whether another iteration is needed.
                timing.add_sync_step();
                let dormant_flags: Vec<bool> =
                    (0..n).map(|i| state[i] == NodeState::Dormant).collect();
                let still_actives = channel.network_or(&dormant_flags, &mut timing)[0];
                stats.scream_invocations += 1;
                if !still_actives {
                    break;
                }
            }

            // Seal the slot: the controller's edge plus every allocated edge
            // with its claimed channel — exactly the ledger's contents. At
            // C = 1 every entry sits on channel 0, so the pattern stores no
            // channel tags and the representation is the single-channel one.
            let entries: Vec<(ChannelId, Link)> = ledger.assignments().collect();
            for (_, link) in &entries {
                let i = link.head.index();
                remaining[i] = remaining[i].saturating_sub(1);
            }
            let sealed_links = entries.len() as u64;
            schedule.push_pattern_run(SlotPattern::from_entries(entries), 1);
            stats.rounds += 1;
            scream_obs::set_round(stats.rounds);
            scream_obs::set_slot(schedule.length() as u64);
            scream_obs::counter_add("runtime.rounds", 1);
            scream_obs::counter_add("runtime.claims", sealed_links);
            scream_obs::event("runtime.round", &[("claims", sealed_links)]);

            // Control-release check: the controller screams iff its demand is
            // now satisfied, releasing control for the next round.
            timing.add_sync_step();
            let mut release = vec![false; n];
            release[ctrl] = remaining[ctrl] == 0;
            let released = channel.network_or(&release, &mut timing)[0];
            stats.scream_invocations += 1;
            if released {
                controller = None;
            }
        }

        stats.terminated = remaining.iter().all(|&r| r == 0);
        Ok(DistributedRun {
            kind: self.kind,
            schedule,
            timing,
            slot_timing,
            stats,
        })
    }

    /// The pre-channel-aware runtime: identical to [`run`](Self::run) except
    /// that every claim goes through the single-channel
    /// [`SlotLedger`](scream_netsim::SlotLedger) and any extra channels the
    /// environment provides are ignored.
    ///
    /// Kept (like `GreedyPhysical::schedule_per_unit` and `FromScratch` for
    /// the ledger) as the reduction baseline: the
    /// `single_channel_runtime_reduction_is_exact` property test pins that
    /// [`run`](Self::run) on a single-channel environment reproduces this
    /// baseline byte for byte — schedule, timing and statistics.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_single_channel(
        &self,
        env: &RadioEnvironment,
        demands: &LinkDemands,
    ) -> Result<DistributedRun, ProtocolError> {
        self.config.validate()?;
        if env.node_count() != demands.node_count() {
            return Err(ProtocolError::NodeCountMismatch {
                environment: env.node_count(),
                demands: demands.node_count(),
            });
        }
        let channel = ScreamChannel::new(env, &self.config)?;
        let n = env.node_count();
        let slot_timing = SlotTiming::derive(
            env.config(),
            self.config.scream_bytes,
            self.config.clock_skew,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let election = LeaderElection::new();
        let id_bits = LeaderElection::id_bits(n) as u64;

        let (link_of, mut remaining) = per_node_links(demands)?;
        let round_limit = self.config.round_limit(demands.total_demand());

        let mut timing = ProtocolTiming::new();
        let mut stats = RunStats::new();
        let mut schedule = Schedule::new();
        let mut controller: Option<usize> = None;
        // One interference ledger reused (cleared, not reallocated) across
        // every round's slot construction.
        let mut ledger = env.open_slot_ledger();

        loop {
            if controller.is_none() {
                // A new controller must be elected among the nodes that still
                // have pending demand; completed nodes participate passively.
                timing.add_sync_step();
                let candidates: Vec<bool> = remaining.iter().map(|&r| r > 0).collect();
                let winner = election.elect(&channel, &candidates, &mut timing);
                stats.elections += 1;
                stats.scream_invocations += id_bits;

                // Termination detection: the winner (if any) screams; if the
                // OR comes back false, every node learns that no demand is
                // left and the algorithm terminates.
                timing.add_sync_step();
                let mut exists = vec![false; n];
                if let Some(w) = winner {
                    exists[w.index()] = true;
                }
                let any_controller = channel.network_or(&exists, &mut timing)[0];
                stats.scream_invocations += 1;
                if !any_controller {
                    break;
                }
                controller = winner.map(|w| w.index());
            }
            let ctrl = controller.expect("controller is set when the loop body runs");

            // Same round-limit boundary as `run`: checked before the round.
            if stats.rounds >= round_limit {
                return Err(ProtocolError::RoundLimitExceeded {
                    limit: round_limit,
                    rounds_executed: stats.rounds,
                    unsatisfied_links: remaining.iter().filter(|&&r| r > 0).count(),
                    slots_built: schedule.length(),
                });
            }

            // ---- GreedyScheduleSlot (one round, one slot) ----
            let mut state: Vec<NodeState> = (0..n)
                .map(|i| {
                    if i == ctrl {
                        NodeState::Control
                    } else if remaining[i] > 0 {
                        NodeState::Dormant
                    } else {
                        NodeState::Complete
                    }
                })
                .collect();

            // Interference ledger for the slot under construction: the
            // controller's edge plus every allocated edge, with cumulative
            // per-receiver interference cached so each iteration's handshake
            // and veto checks cost O((k + a) · a) instead of O((k + a)²).
            ledger.clear();
            ledger.assign(link_of[ctrl].expect("the controller has pending demand"));

            loop {
                stats.slot_iterations += 1;

                // SelectActive: the only place the three protocol variants
                // differ.
                let actives = self.select_active(
                    &state,
                    &channel,
                    &election,
                    &mut rng,
                    &mut timing,
                    &mut stats,
                );
                for &a in &actives {
                    state[a] = NodeState::Active;
                }

                // Handshake time step: every CONTROL/ALLOCATED/ACTIVE edge
                // performs its two-way handshake concurrently. The ledger
                // prices the tentative active edges against the already
                // scheduled ones (and each other) in one batched probe.
                timing.add_sync_step();
                timing.add_handshake_slot();
                stats.handshake_steps += 1;
                let active_links: Vec<Link> = actives
                    .iter()
                    .map(|&i| link_of[i].expect("active nodes have pending demand"))
                    .collect();
                // `probe_claims` = SINR handshakes + the half-duplex screen:
                // an active edge touching a node already busy in this slot
                // cannot complete a handshake, which the SINR checks alone
                // miss (the exclusion rule skips a busy shared node). See
                // the regression test
                // `half_duplex_is_enforced_at_low_sinr_thresholds`.
                let probe = ledger.probe_claims(&active_links);

                // Verification time step: previously scheduled edges hold
                // veto power — if any of them failed its handshake, it
                // SCREAMs and every tentative active edge withdraws.
                timing.add_sync_step();
                let vetoed = !probe.existing_ok;
                // The veto travels by SCREAM: one network-wide OR either way.
                let mut veto_flags = vec![false; n];
                veto_flags[ctrl] = vetoed;
                let vetoed = channel.network_or(&veto_flags, &mut timing)[0];
                stats.scream_invocations += 1;
                if vetoed {
                    stats.vetoes += 1;
                    scream_obs::counter_add("runtime.vetoes", 1);
                }
                for (idx, &i) in actives.iter().enumerate() {
                    if vetoed || !probe.tentative_ok[idx] {
                        state[i] = NodeState::Tried;
                        stats.tried_transitions += 1;
                    } else {
                        state[i] = NodeState::Allocated;
                        ledger.assign(active_links[idx]);
                    }
                }

                // stillActives check: dormant nodes scream so that everyone
                // learns whether another iteration is needed.
                timing.add_sync_step();
                let dormant_flags: Vec<bool> =
                    (0..n).map(|i| state[i] == NodeState::Dormant).collect();
                let still_actives = channel.network_or(&dormant_flags, &mut timing)[0];
                stats.scream_invocations += 1;
                if !still_actives {
                    break;
                }
            }

            // Seal the slot: the controller's edge plus every allocated edge
            // — exactly the ledger's contents.
            let slot_links: Vec<Link> = ledger.links().to_vec();
            for link in &slot_links {
                let i = link.head.index();
                remaining[i] = remaining[i].saturating_sub(1);
            }
            let sealed_links = slot_links.len() as u64;
            schedule.push_slot(slot_links);
            stats.rounds += 1;
            scream_obs::set_round(stats.rounds);
            scream_obs::set_slot(schedule.length() as u64);
            scream_obs::counter_add("runtime.rounds", 1);
            scream_obs::counter_add("runtime.claims", sealed_links);
            scream_obs::event("runtime.round", &[("claims", sealed_links)]);

            // Control-release check: the controller screams iff its demand is
            // now satisfied, releasing control for the next round.
            timing.add_sync_step();
            let mut release = vec![false; n];
            release[ctrl] = remaining[ctrl] == 0;
            let released = channel.network_or(&release, &mut timing)[0];
            stats.scream_invocations += 1;
            if released {
                controller = None;
            }
        }

        stats.terminated = remaining.iter().all(|&r| r == 0);
        Ok(DistributedRun {
            kind: self.kind,
            schedule,
            timing,
            slot_timing,
            stats,
        })
    }

    /// The `SelectActive()` function of Section III: PDD activates each
    /// dormant node independently with probability `p`; FDD elects the
    /// highest-id dormant node through a full leader election; AFDD announces
    /// the highest-id dormant node with a single SCREAM (see `DESIGN.md`).
    fn select_active(
        &self,
        state: &[NodeState],
        channel: &ScreamChannel<'_>,
        election: &LeaderElection,
        rng: &mut ChaCha8Rng,
        timing: &mut ProtocolTiming,
        stats: &mut RunStats,
    ) -> Vec<usize> {
        let n = state.len();
        let dormant: Vec<usize> = (0..n).filter(|&i| state[i] == NodeState::Dormant).collect();
        match self.kind {
            ProtocolKind::Pdd { probability } => dormant
                .into_iter()
                .filter(|_| rng.gen_bool(probability))
                .collect(),
            ProtocolKind::Fdd => {
                let candidates: Vec<bool> =
                    (0..n).map(|i| state[i] == NodeState::Dormant).collect();
                let winner = election.elect(channel, &candidates, timing);
                stats.elections += 1;
                stats.scream_invocations += LeaderElection::id_bits(n) as u64;
                winner.map(|w| vec![w.index()]).unwrap_or_default()
            }
            ProtocolKind::Afdd => {
                // One SCREAM announces whether any dormant node remains; the
                // identity of the highest-id dormant node is known to all from
                // cached candidate order (our interpretation of AFDD).
                let flags: Vec<bool> = (0..n).map(|i| state[i] == NodeState::Dormant).collect();
                let _ = channel.network_or(&flags, timing);
                stats.scream_invocations += 1;
                dormant
                    .into_iter()
                    .max()
                    .map(|i| vec![i])
                    .unwrap_or_default()
            }
        }
    }
}

/// Builds the per-node view of the demand instance — the link each node owns
/// and its remaining demand — rejecting instances where two demanded links
/// share a head node: the paper's model is one owned uplink per node, and
/// aliasing both links onto one counter would silently drop demand (while
/// `stats.terminated` could still read true).
fn per_node_links(demands: &LinkDemands) -> Result<(Vec<Option<Link>>, Vec<u64>), ProtocolError> {
    let n = demands.node_count();
    let mut link_of: Vec<Option<Link>> = vec![None; n];
    let mut remaining: Vec<u64> = vec![0; n];
    for (link, demand) in demands.demanded_links() {
        let i = link.head.index();
        if link_of[i].is_some() {
            return Err(ProtocolError::ConflictingLinkOwnership { node: link.head });
        }
        link_of[i] = Some(link);
        remaining[i] = demand;
    }
    Ok((link_of, remaining))
}

/// Number of SCREAM bits an allocation spends announcing which of `channels`
/// orthogonal channels it claimed: `⌈log₂ C⌉`, i.e. zero on the single shared
/// channel.
fn channel_announcement_bits(channels: usize) -> u64 {
    if channels <= 1 {
        0
    } else {
        (channels - 1).ilog2() as u64 + 1
    }
}

/// Charges one channel announcement — `bits` SCREAM invocations of `K` slots
/// each, mirroring the per-bit cost of the elections — to the tallies. A
/// no-op at `C = 1` (`bits == 0`), which is part of the exact single-channel
/// reduction.
fn charge_channel_announcement(
    bits: u64,
    channel: &ScreamChannel<'_>,
    timing: &mut ProtocolTiming,
    stats: &mut RunStats,
) {
    if bits == 0 {
        return;
    }
    timing.add_scream_slots(bits * channel.scream_slots() as u64);
    stats.scream_invocations += bits;
    scream_obs::counter_add("runtime.announcement_bits", bits);
}

/// The result of one distributed scheduling run.
///
/// Not serde-deserializable because [`Schedule`] is not (its canonical
/// run-length invariant must be established by construction); serialize the
/// run and re-execute, or rebuild the schedule via `Schedule::from_runs`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DistributedRun {
    /// The protocol variant that produced this run.
    pub kind: ProtocolKind,
    /// The computed STDMA schedule.
    pub schedule: Schedule,
    /// Counts of synchronized steps executed by the protocol.
    pub timing: ProtocolTiming,
    /// The per-step durations used to convert `timing` to wall-clock time.
    pub slot_timing: SlotTiming,
    /// Execution statistics (rounds, elections, vetoes, ...).
    pub stats: RunStats,
}

impl DistributedRun {
    /// Wall-clock execution time of the protocol run — the quantity plotted
    /// in Figures 8 and 9 of the paper.
    pub fn execution_time(&self) -> SimTime {
        self.timing.execution_time(&self.slot_timing)
    }

    /// Execution time in seconds.
    pub fn execution_secs(&self) -> f64 {
        self.execution_time().as_secs_f64()
    }

    /// Schedule-quality metrics for the demand instance this run was executed
    /// on — the quantities plotted in Figures 6 and 7.
    pub fn metrics(&self, demands: &LinkDemands) -> ScheduleMetrics {
        ScheduleMetrics::compute(&self.schedule, demands)
    }

    /// The computed schedule read as a repeating TDMA frame: per-link service
    /// windows and shares, indexed from the run-length representation. This
    /// is the hand-off from protocol execution to packet-level evaluation —
    /// feed it straight into a `scream_traffic::TrafficEngine` to measure
    /// the distributed schedule under sustained load.
    pub fn frame_service(&self) -> FrameService {
        FrameService::from_schedule(&self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScreamFidelity;
    use scream_netsim::{ClockSkewConfig, PropagationModel, RadioEnvironment};
    use scream_scheduling::{verify_schedule, EdgeOrdering, GreedyPhysical};
    use scream_topology::{
        DemandConfig, DemandVector, Deployment, GridDeployment, NodeId, RoutingForest,
        UniformDeployment,
    };

    /// Builds a complete small instance: deployment, environment, demands.
    fn grid_instance(
        side: usize,
        step: f64,
        seed: u64,
    ) -> (Deployment, RadioEnvironment, LinkDemands) {
        let d = GridDeployment::new(side, side, step).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        let gws = d.corner_nodes();
        let forest = RoutingForest::shortest_path(&graph, &gws, seed).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
        let ld = LinkDemands::aggregate(&forest, &demands).unwrap();
        (d, env, ld)
    }

    fn config_for(env: &RadioEnvironment) -> ProtocolConfig {
        ProtocolConfig::paper_default().with_scream_slots(env.interference_diameter().max(1))
    }

    #[test]
    fn fdd_satisfies_demands_with_feasible_slots() {
        let (_, env, ld) = grid_instance(4, 150.0, 1);
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        verify_schedule(&env, &run.schedule, &ld).unwrap();
        assert!(run.stats.terminated);
        assert_eq!(run.stats.rounds as usize, run.schedule.length());
    }

    #[test]
    fn fdd_recreates_the_centralized_greedy_physical_schedule() {
        // Theorem 4: FDD computes exactly the schedule of GreedyPhysical with
        // edges ordered by decreasing head id.
        for seed in [1u64, 3, 7] {
            let (_, env, ld) = grid_instance(4, 160.0, seed);
            let centralized =
                GreedyPhysical::new(EdgeOrdering::DecreasingHeadId).schedule(&env, &ld);
            let distributed = DistributedScheduler::fdd()
                .with_config(config_for(&env))
                .run(&env, &ld)
                .unwrap();
            assert_eq!(
                distributed.schedule, centralized,
                "FDD diverged from GreedyPhysical for seed {seed}"
            );
        }
    }

    #[test]
    fn frame_service_exposes_the_run_as_a_tdma_frame() {
        // The packet-level hand-off: the frame index of a distributed run
        // serves every demanded link for exactly its demand's worth of slots
        // per frame (the schedule satisfies demands exactly, so shares are
        // demand(e) / length).
        let (_, env, ld) = grid_instance(4, 150.0, 1);
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let frame = run.frame_service();
        assert_eq!(frame.frame_slots() as usize, run.schedule.length());
        for (link, demand) in ld.demanded_links() {
            assert_eq!(
                frame.service_slots(link),
                demand,
                "frame serves {link} once per demanded slot"
            );
            assert!(frame.service_share(link) > 0.0);
        }
    }

    #[test]
    fn afdd_schedule_equals_fdd_but_runs_faster() {
        let (_, env, ld) = grid_instance(4, 150.0, 2);
        let fdd = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let afdd = DistributedScheduler::afdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(fdd.schedule, afdd.schedule);
        assert!(afdd.execution_time() < fdd.execution_time());
    }

    #[test]
    fn pdd_produces_valid_schedules_for_all_paper_probabilities() {
        let (_, env, ld) = grid_instance(4, 150.0, 5);
        for p in [0.2, 0.6, 0.8] {
            let run = DistributedScheduler::pdd(p)
                .expect("PDD activation probability is in (0, 1]")
                .with_config(config_for(&env))
                .run(&env, &ld)
                .unwrap();
            verify_schedule(&env, &run.schedule, &ld)
                .unwrap_or_else(|e| panic!("PDD(p={p}) produced an invalid schedule: {e}"));
            assert!(run.stats.terminated);
        }
    }

    #[test]
    fn pdd_is_never_better_than_its_own_serialized_bound_and_usually_close_to_fdd() {
        let (_, env, ld) = grid_instance(4, 150.0, 11);
        let fdd = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let pdd = DistributedScheduler::pdd(0.6)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        assert!(pdd.schedule.length() as u64 <= ld.total_demand());
        // PDD cannot beat the per-round greedy packing of FDD by much; allow
        // it to be better by chance but never by more than one slot, and
        // never more than 60% longer.
        assert!(pdd.schedule.length() + 1 >= fdd.schedule.length());
        assert!(pdd.schedule.length() as f64 <= fdd.schedule.length() as f64 * 1.6);
    }

    #[test]
    fn fdd_is_deterministic_across_seeds_and_pdd_is_not() {
        let (_, env, ld) = grid_instance(4, 150.0, 13);
        let fdd_a = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_seed(1))
            .run(&env, &ld)
            .unwrap();
        let fdd_b = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_seed(2))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(fdd_a.schedule, fdd_b.schedule);

        let pdd_a = DistributedScheduler::pdd(0.3)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env).with_seed(1))
            .run(&env, &ld)
            .unwrap();
        let pdd_b = DistributedScheduler::pdd(0.3)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env).with_seed(2))
            .run(&env, &ld)
            .unwrap();
        // Same seed must reproduce exactly; different seeds generally differ
        // in schedule or at least in iteration counts.
        let pdd_a2 = DistributedScheduler::pdd(0.3)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env).with_seed(1))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(pdd_a.schedule, pdd_a2.schedule);
        assert!(
            pdd_a.schedule != pdd_b.schedule || pdd_a.stats != pdd_b.stats,
            "different seeds should change a randomized run"
        );
    }

    #[test]
    fn physical_and_ideal_scream_fidelity_agree_on_the_schedule() {
        let (_, env, ld) = grid_instance(3, 150.0, 3);
        let ideal = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_fidelity(ScreamFidelity::Ideal))
            .run(&env, &ld)
            .unwrap();
        let physical = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_fidelity(ScreamFidelity::Physical))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(ideal.schedule, physical.schedule);
        assert_eq!(ideal.timing, physical.timing);
    }

    #[test]
    fn execution_time_grows_with_scream_size_interference_diameter_and_skew() {
        let (_, env, ld) = grid_instance(4, 150.0, 4);
        let base_cfg = config_for(&env);
        let base = DistributedScheduler::fdd()
            .with_config(base_cfg)
            .run(&env, &ld)
            .unwrap();

        let bigger_scream = DistributedScheduler::fdd()
            .with_config(base_cfg.with_scream_bytes(60))
            .run(&env, &ld)
            .unwrap();
        assert!(bigger_scream.execution_time() > base.execution_time());

        let larger_k = DistributedScheduler::fdd()
            .with_config(base_cfg.with_scream_slots(base_cfg.scream_slots * 4))
            .run(&env, &ld)
            .unwrap();
        assert!(larger_k.execution_time() > base.execution_time());

        let skewed = DistributedScheduler::fdd()
            .with_config(base_cfg.with_clock_skew(ClockSkewConfig::new(SimTime::from_millis(1))))
            .run(&env, &ld)
            .unwrap();
        assert!(skewed.execution_time() > base.execution_time());
        // The schedule itself is unaffected by any of these knobs.
        assert_eq!(bigger_scream.schedule, base.schedule);
        assert_eq!(larger_k.schedule, base.schedule);
        assert_eq!(skewed.schedule, base.schedule);
    }

    #[test]
    fn pdd_runs_faster_than_fdd_on_the_same_instance() {
        let (_, env, ld) = grid_instance(4, 150.0, 6);
        let fdd = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let pdd = DistributedScheduler::pdd(0.6)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        assert!(
            pdd.execution_time() < fdd.execution_time(),
            "PDD ({}) should be faster than FDD ({})",
            pdd.execution_time(),
            fdd.execution_time()
        );
    }

    #[test]
    fn half_duplex_is_enforced_at_low_sinr_thresholds() {
        // Regression test for the endpoint-sharing loophole: on a chain
        // u -> v -> w, the SINR interferer-exclusion rule skips the shared
        // node v in both directions, so at a low threshold (β = 6 dB, the
        // paper-scenario setting) both handshakes "pass" even though v would
        // have to transmit and receive simultaneously. The runtime's
        // half-duplex screen must reject the second claim, keeping the FDD
        // schedule verifiable and equal to GreedyPhysical (Theorem 4).
        let d = GridDeployment::new(6, 1, 150.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(scream_netsim::RadioConfig::mesh_default().with_sinr_threshold_db(6.0))
            .build(&d);
        let chain = [
            (Link::new(NodeId::new(2), NodeId::new(1)), 2u64),
            (Link::new(NodeId::new(1), NodeId::new(0)), 2),
        ];
        // Without the screen, both links pass their handshakes concurrently.
        let both = [chain[0].0, chain[1].0];
        assert!(env.handshake_ok(chain[0].0, &both));
        assert!(env.handshake_ok(chain[1].0, &both));
        assert!(!scream_scheduling::SlotFeasibility::slot_feasible(
            &env, &both
        ));

        let ld = LinkDemands::from_links(6, &chain).unwrap();
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        verify_schedule(&env, &run.schedule, &ld).unwrap();
        let centralized = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        assert_eq!(run.schedule, centralized);
        assert!(run.schedule.runs().all(|(slot, _)| slot.len() == 1));
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let (_, env, _) = grid_instance(3, 150.0, 1);
        let wrong =
            LinkDemands::from_links(4, &[(Link::new(NodeId::new(1), NodeId::new(0)), 1)]).unwrap();
        let err = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &wrong)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::NodeCountMismatch { .. }));
    }

    #[test]
    fn insufficient_scream_slots_are_rejected() {
        let (_, env, ld) = grid_instance(5, 200.0, 1);
        let id = env.interference_diameter();
        assert!(id > 1);
        let err = DistributedScheduler::fdd()
            .with_config(ProtocolConfig::paper_default().with_scream_slots(1))
            .run(&env, &ld)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::ScreamSlotsTooSmall { .. }));
    }

    #[test]
    fn round_limit_aborts_a_run() {
        let (_, env, ld) = grid_instance(4, 150.0, 8);
        let err = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_max_rounds(1))
            .run(&env, &ld)
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::RoundLimitExceeded { limit: 1, .. }
        ));
    }

    #[test]
    fn round_limit_boundary_is_exact_and_reports_progress() {
        // `with_max_rounds(k)` permits exactly k full rounds: the number of
        // rounds the unbounded run needs must succeed, one fewer must fail —
        // before constructing the final round, with the progress attached.
        let (_, env, ld) = grid_instance(4, 150.0, 8);
        let unbounded = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let rounds_needed = unbounded.stats.rounds;
        assert!(rounds_needed > 1, "the instance must need several rounds");

        let exact = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_max_rounds(rounds_needed))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(exact.schedule, unbounded.schedule);
        assert!(exact.stats.terminated);

        let err = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_max_rounds(rounds_needed - 1))
            .run(&env, &ld)
            .unwrap_err();
        match err {
            ProtocolError::RoundLimitExceeded {
                limit,
                rounds_executed,
                unsatisfied_links,
                slots_built,
            } => {
                assert_eq!(limit, rounds_needed - 1);
                assert_eq!(rounds_executed, rounds_needed - 1);
                assert_eq!(slots_built as u64, rounds_needed - 1);
                assert!(
                    unsatisfied_links > 0,
                    "aborting before the final round must leave demand unsatisfied"
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn conflicting_link_ownership_is_rejected_not_aliased() {
        // Two demanded links sharing head node 1: the guarded constructor
        // refuses the instance, and a runtime handed one anyway (via the
        // unchecked constructor) must reject it instead of silently aliasing
        // both demands onto one per-node counter and dropping traffic.
        let d = GridDeployment::new(4, 1, 150.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let shared_head = [
            (Link::new(NodeId::new(1), NodeId::new(0)), 2u64),
            (Link::new(NodeId::new(1), NodeId::new(2)), 2),
        ];
        assert!(LinkDemands::from_links(4, &shared_head).is_err());
        let ld = LinkDemands::from_links_unchecked(4, &shared_head).unwrap();
        let err = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap_err();
        assert_eq!(
            err,
            ProtocolError::ConflictingLinkOwnership {
                node: NodeId::new(1)
            }
        );
        // The retained single-channel baseline applies the same defense.
        let err = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run_single_channel(&env, &ld)
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::ConflictingLinkOwnership { .. }
        ));
    }

    /// Builds a grid instance whose radio config provides `channels`
    /// orthogonal channels (the deployment, demands and gains are the same
    /// for every channel count).
    fn channel_grid_instance(
        side: usize,
        step: f64,
        seed: u64,
        channels: usize,
    ) -> (RadioEnvironment, LinkDemands) {
        let d = GridDeployment::new(side, side, step).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(scream_netsim::RadioConfig::mesh_default().with_channel_count(channels))
            .build(&d);
        let graph = env.communication_graph();
        let gws = d.corner_nodes();
        let forest = RoutingForest::shortest_path(&graph, &gws, seed).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
        let ld = LinkDemands::aggregate(&forest, &demands).unwrap();
        (env, ld)
    }

    #[test]
    fn channel_aware_fdd_matches_channel_aware_greedy_physical() {
        // Theorem 4, extended: on a multi-channel environment FDD recreates
        // the channel-aware GreedyPhysical schedule exactly — channel tags
        // included — and the run verifies under the per-channel rules.
        for channels in [2usize, 4] {
            for seed in [1u64, 7] {
                let (env, ld) = channel_grid_instance(4, 160.0, seed, channels);
                let centralized =
                    GreedyPhysical::new(EdgeOrdering::DecreasingHeadId).schedule(&env, &ld);
                let run = DistributedScheduler::fdd()
                    .with_config(config_for(&env))
                    .run(&env, &ld)
                    .unwrap();
                verify_schedule(&env, &run.schedule, &ld).unwrap();
                assert_eq!(
                    run.schedule, centralized,
                    "channel-aware FDD diverged for seed {seed}, C = {channels}"
                );
                assert!(run.stats.terminated);
            }
        }
    }

    #[test]
    fn multi_channel_run_shortens_the_schedule() {
        let (env1, ld) = channel_grid_instance(4, 150.0, 3, 1);
        let (env2, ld2) = channel_grid_instance(4, 150.0, 3, 2);
        assert_eq!(ld, ld2, "the instance draw is channel-independent");
        let single = DistributedScheduler::fdd()
            .with_config(config_for(&env1))
            .run(&env1, &ld)
            .unwrap();
        let dual = DistributedScheduler::fdd()
            .with_config(config_for(&env2))
            .run(&env2, &ld)
            .unwrap();
        verify_schedule(&env2, &dual.schedule, &ld).unwrap();
        assert!(dual.schedule.length() <= single.schedule.length());
        assert!(dual.schedule.channels_used() >= 1);
        assert!(dual.stats.terminated);
    }

    #[test]
    fn channel_announcements_cost_log2_c_scream_bits_per_allocation() {
        // Two far-apart links already share every slot on one channel, so
        // the C = 2 run computes the *identical* schedule through identical
        // rounds — the only timing difference is the channel-announcement
        // cost: ⌈log₂ 2⌉ = 1 SCREAM invocation (K slots) per allocation.
        let d = GridDeployment::new(8, 1, 200.0).build();
        let build = |channels: usize| {
            RadioEnvironment::builder()
                .propagation(PropagationModel::log_distance(3.0))
                .config(scream_netsim::RadioConfig::mesh_default().with_channel_count(channels))
                .build(&d)
        };
        let env1 = build(1);
        let env2 = build(2);
        let ld = LinkDemands::from_links(
            8,
            &[
                (Link::new(NodeId::new(1), NodeId::new(0)), 3u64),
                (Link::new(NodeId::new(7), NodeId::new(6)), 3),
            ],
        )
        .unwrap();
        let config = config_for(&env1);
        assert_eq!(config.scream_slots, config_for(&env2).scream_slots);
        let single = DistributedScheduler::fdd()
            .with_config(config)
            .run(&env1, &ld)
            .unwrap();
        let dual = DistributedScheduler::fdd()
            .with_config(config)
            .run(&env2, &ld)
            .unwrap();
        assert_eq!(dual.schedule, single.schedule, "no channel benefit here");
        let allocations = single.schedule.total_transmissions();
        assert_eq!(allocations, 6);
        assert_eq!(
            dual.timing.scream_slots - single.timing.scream_slots,
            allocations * config.scream_slots as u64,
            "one announcement bit (K scream slots) per allocation"
        );
        assert_eq!(
            dual.stats.scream_invocations - single.stats.scream_invocations,
            allocations
        );
        // The channel-assignment phase spans one handshake sub-slot per
        // channel, so the C = 2 run charges exactly twice the handshake
        // time over the same iterations.
        assert_eq!(
            dual.timing.handshake_slots,
            2 * single.timing.handshake_slots
        );
        assert_eq!(dual.stats.slot_iterations, single.stats.slot_iterations);
        assert_eq!(dual.timing.sync_steps, single.timing.sync_steps);
        assert!(dual.execution_time() > single.execution_time());
    }

    #[test]
    fn max_channels_caps_the_runtime_below_the_environment() {
        // A 2-channel environment run with max_channels = 1 must reproduce
        // the single-channel schedule exactly (the cap is how sweeps compare
        // the runtime against its single-channel self on one instance).
        let (env2, ld) = channel_grid_instance(4, 150.0, 5, 2);
        let capped = DistributedScheduler::fdd()
            .with_config(config_for(&env2).with_max_channels(1))
            .run(&env2, &ld)
            .unwrap();
        let baseline = DistributedScheduler::fdd()
            .with_config(config_for(&env2))
            .run_single_channel(&env2, &ld)
            .unwrap();
        assert_eq!(capped.schedule, baseline.schedule);
        assert_eq!(capped.timing, baseline.timing);
        assert_eq!(capped.stats, baseline.stats);
        assert!(capped.schedule.runs().all(|(p, _)| p.is_single_channel()));
    }

    #[test]
    fn single_channel_run_reduces_exactly_to_the_baseline_runtime() {
        // The C = 1 reduction, the unit-test twin of the
        // `single_channel_runtime_reduction_is_exact` property test: on a
        // single-channel environment the channel-aware path must reproduce
        // the retained baseline byte for byte — schedule, timing, stats —
        // for every protocol variant.
        let (_, env, ld) = grid_instance(4, 150.0, 17);
        for scheduler in [
            DistributedScheduler::fdd(),
            DistributedScheduler::afdd(),
            DistributedScheduler::pdd(0.6).unwrap(),
        ] {
            let generic = scheduler
                .with_config(config_for(&env))
                .run(&env, &ld)
                .unwrap();
            let baseline = scheduler
                .with_config(config_for(&env))
                .run_single_channel(&env, &ld)
                .unwrap();
            assert_eq!(generic, baseline, "{:?} diverged at C = 1", scheduler.kind);
        }
    }

    #[test]
    fn empty_demand_instance_terminates_immediately() {
        let d = GridDeployment::new(3, 3, 150.0).build();
        let env = RadioEnvironment::builder().build(&d);
        let ld = LinkDemands::from_links(9, &[]).unwrap();
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        assert!(run.schedule.is_empty());
        assert!(run.stats.terminated);
        assert_eq!(run.stats.rounds, 0);
        assert!(
            run.execution_time() > SimTime::ZERO,
            "the final election still costs time"
        );
    }

    #[test]
    fn uniform_random_unplanned_instance_is_scheduled_correctly() {
        // The paper's "unplanned" scenario: uniform placement, heterogeneous
        // transmit power.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let d = UniformDeployment::new(25, 700.0)
            .heterogeneous_power(6.0)
            .build_connected(&mut rng, 180.0, 100)
            .unwrap();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        if !graph.is_connected() {
            // SINR-based graph can be sparser than the unit-disk check used
            // for the draw; skip in that rare case rather than flake.
            return;
        }
        let gws = vec![d.corner_nodes()[0]];
        let forest = RoutingForest::shortest_path(&graph, &gws, 21).unwrap();
        let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
        let ld = LinkDemands::aggregate(&forest, &demands).unwrap();
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        verify_schedule(&env, &run.schedule, &ld).unwrap();
        let centralized = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        assert_eq!(run.schedule, centralized);
    }

    #[test]
    fn run_metrics_reports_improvement_over_linear() {
        let (_, env, ld) = grid_instance(4, 150.0, 9);
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let m = run.metrics(&ld);
        assert_eq!(m.length, run.schedule.length());
        assert_eq!(m.serialized_length, ld.total_demand());
        assert!(m.improvement_over_linear_pct >= 0.0);
    }
}
