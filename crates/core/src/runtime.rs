//! The distributed scheduling runtime: a faithful synchronous simulation of
//! the PDD/FDD/AFDD round structure over a radio environment.
//!
//! The runtime executes the protocols exactly as specified in Section III:
//! rounds of leader election and iterative slot construction, with every
//! handshake outcome taken from the SINR physics of the environment and every
//! network-wide OR executed through the [`ScreamChannel`]. Every synchronized
//! step is charged to a [`ProtocolTiming`] tally so that the wall-clock
//! execution time of a run (Figures 8 and 9) can be reported alongside the
//! schedule it computed (Figures 6 and 7).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scream_netsim::{ProtocolTiming, RadioEnvironment, SimTime, SlotTiming};
use scream_scheduling::{Schedule, ScheduleMetrics};
use scream_topology::{Link, LinkDemands};

use crate::config::ProtocolConfig;
use crate::election::LeaderElection;
use crate::error::ProtocolError;
use crate::protocol::ProtocolKind;
use crate::scream::ScreamChannel;
use crate::state::NodeState;
use crate::stats::RunStats;

/// A distributed scheduler: a protocol variant plus its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedScheduler {
    kind: ProtocolKind,
    config: ProtocolConfig,
}

impl DistributedScheduler {
    /// Creates a scheduler for the given protocol with the given
    /// configuration.
    pub fn new(kind: ProtocolKind, config: ProtocolConfig) -> Self {
        Self { kind, config }
    }

    /// FDD with the paper's default configuration.
    pub fn fdd() -> Self {
        Self::new(ProtocolKind::Fdd, ProtocolConfig::paper_default())
    }

    /// PDD with activation probability `p` and the paper's default
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if the probability is not
    /// in `(0, 1]` (propagated from [`ProtocolKind::pdd`]).
    pub fn pdd(probability: f64) -> Result<Self, ProtocolError> {
        Ok(Self::new(
            ProtocolKind::pdd(probability)?,
            ProtocolConfig::paper_default(),
        ))
    }

    /// AFDD with the paper's default configuration.
    pub fn afdd() -> Self {
        Self::new(ProtocolKind::Afdd, ProtocolConfig::paper_default())
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// The protocol variant.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The configuration in force.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Executes the protocol on the given radio environment and demand
    /// instance, returning the computed schedule together with its timing and
    /// statistics.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::NodeCountMismatch`] if the demand instance does not
    ///   cover the environment's nodes;
    /// * [`ProtocolError::ScreamSlotsTooSmall`] /
    ///   [`ProtocolError::DisconnectedSensitivityGraph`] if the SCREAM
    ///   precondition `K ≥ ID(G_S)` cannot be met;
    /// * [`ProtocolError::RoundLimitExceeded`] if the configured round limit
    ///   is hit before all demands are satisfied.
    pub fn run(
        &self,
        env: &RadioEnvironment,
        demands: &LinkDemands,
    ) -> Result<DistributedRun, ProtocolError> {
        self.config.validate()?;
        if env.node_count() != demands.node_count() {
            return Err(ProtocolError::NodeCountMismatch {
                environment: env.node_count(),
                demands: demands.node_count(),
            });
        }
        let channel = ScreamChannel::new(env, &self.config)?;
        let n = env.node_count();
        let slot_timing = SlotTiming::derive(
            env.config(),
            self.config.scream_bytes,
            self.config.clock_skew,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let election = LeaderElection::new();
        let id_bits = LeaderElection::id_bits(n) as u64;

        // Per-node view: the link each node owns and its remaining demand.
        let mut link_of: Vec<Option<Link>> = vec![None; n];
        let mut remaining: Vec<u64> = vec![0; n];
        for (link, demand) in demands.demanded_links() {
            link_of[link.head.index()] = Some(link);
            remaining[link.head.index()] = demand;
        }
        let round_limit = self.config.round_limit(demands.total_demand());

        let mut timing = ProtocolTiming::new();
        let mut stats = RunStats::new();
        let mut schedule = Schedule::new();
        let mut controller: Option<usize> = None;
        // One interference ledger reused (cleared, not reallocated) across
        // every round's slot construction.
        let mut ledger = env.open_slot_ledger();

        loop {
            if controller.is_none() {
                // A new controller must be elected among the nodes that still
                // have pending demand; completed nodes participate passively.
                timing.add_sync_step();
                let candidates: Vec<bool> = remaining.iter().map(|&r| r > 0).collect();
                let winner = election.elect(&channel, &candidates, &mut timing);
                stats.elections += 1;
                stats.scream_invocations += id_bits;

                // Termination detection: the winner (if any) screams; if the
                // OR comes back false, every node learns that no demand is
                // left and the algorithm terminates.
                timing.add_sync_step();
                let mut exists = vec![false; n];
                if let Some(w) = winner {
                    exists[w.index()] = true;
                }
                let any_controller = channel.network_or(&exists, &mut timing)[0];
                stats.scream_invocations += 1;
                if !any_controller {
                    break;
                }
                controller = winner.map(|w| w.index());
            }
            let ctrl = controller.expect("controller is set when the loop body runs");

            // ---- GreedyScheduleSlot (one round, one slot) ----
            let mut state: Vec<NodeState> = (0..n)
                .map(|i| {
                    if i == ctrl {
                        NodeState::Control
                    } else if remaining[i] > 0 {
                        NodeState::Dormant
                    } else {
                        NodeState::Complete
                    }
                })
                .collect();

            // Interference ledger for the slot under construction: the
            // controller's edge plus every allocated edge, with cumulative
            // per-receiver interference cached so each iteration's handshake
            // and veto checks cost O((k + a) · a) instead of O((k + a)²).
            ledger.clear();
            ledger.assign(link_of[ctrl].expect("the controller has pending demand"));

            loop {
                stats.slot_iterations += 1;

                // SelectActive: the only place the three protocol variants
                // differ.
                let actives = self.select_active(
                    &state,
                    &channel,
                    &election,
                    &mut rng,
                    &mut timing,
                    &mut stats,
                );
                for &a in &actives {
                    state[a] = NodeState::Active;
                }

                // Handshake time step: every CONTROL/ALLOCATED/ACTIVE edge
                // performs its two-way handshake concurrently. The ledger
                // prices the tentative active edges against the already
                // scheduled ones (and each other) in one batched probe.
                timing.add_sync_step();
                timing.add_handshake_slot();
                stats.handshake_steps += 1;
                let active_links: Vec<Link> = actives
                    .iter()
                    .map(|&i| link_of[i].expect("active nodes have pending demand"))
                    .collect();
                // `probe_claims` = SINR handshakes + the half-duplex screen:
                // an active edge touching a node already busy in this slot
                // cannot complete a handshake, which the SINR checks alone
                // miss (the exclusion rule skips a busy shared node). See
                // the regression test
                // `half_duplex_is_enforced_at_low_sinr_thresholds`.
                let probe = ledger.probe_claims(&active_links);

                // Verification time step: previously scheduled edges hold
                // veto power — if any of them failed its handshake, it
                // SCREAMs and every tentative active edge withdraws.
                timing.add_sync_step();
                let vetoed = !probe.existing_ok;
                // The veto travels by SCREAM: one network-wide OR either way.
                let mut veto_flags = vec![false; n];
                veto_flags[ctrl] = vetoed;
                let vetoed = channel.network_or(&veto_flags, &mut timing)[0];
                stats.scream_invocations += 1;
                if vetoed {
                    stats.vetoes += 1;
                }
                for (idx, &i) in actives.iter().enumerate() {
                    if vetoed || !probe.tentative_ok[idx] {
                        state[i] = NodeState::Tried;
                        stats.tried_transitions += 1;
                    } else {
                        state[i] = NodeState::Allocated;
                        ledger.assign(active_links[idx]);
                    }
                }

                // stillActives check: dormant nodes scream so that everyone
                // learns whether another iteration is needed.
                timing.add_sync_step();
                let dormant_flags: Vec<bool> =
                    (0..n).map(|i| state[i] == NodeState::Dormant).collect();
                let still_actives = channel.network_or(&dormant_flags, &mut timing)[0];
                stats.scream_invocations += 1;
                if !still_actives {
                    break;
                }
            }

            // Seal the slot: the controller's edge plus every allocated edge
            // — exactly the ledger's contents.
            let slot_links: Vec<Link> = ledger.links().to_vec();
            for link in &slot_links {
                let i = link.head.index();
                remaining[i] = remaining[i].saturating_sub(1);
            }
            schedule.push_slot(slot_links);
            stats.rounds += 1;
            if stats.rounds > round_limit {
                return Err(ProtocolError::RoundLimitExceeded {
                    limit: round_limit,
                    unsatisfied_links: remaining.iter().filter(|&&r| r > 0).count(),
                });
            }

            // Control-release check: the controller screams iff its demand is
            // now satisfied, releasing control for the next round.
            timing.add_sync_step();
            let mut release = vec![false; n];
            release[ctrl] = remaining[ctrl] == 0;
            let released = channel.network_or(&release, &mut timing)[0];
            stats.scream_invocations += 1;
            if released {
                controller = None;
            }
        }

        stats.terminated = remaining.iter().all(|&r| r == 0);
        Ok(DistributedRun {
            kind: self.kind,
            schedule,
            timing,
            slot_timing,
            stats,
        })
    }

    /// The `SelectActive()` function of Section III: PDD activates each
    /// dormant node independently with probability `p`; FDD elects the
    /// highest-id dormant node through a full leader election; AFDD announces
    /// the highest-id dormant node with a single SCREAM (see `DESIGN.md`).
    fn select_active(
        &self,
        state: &[NodeState],
        channel: &ScreamChannel<'_>,
        election: &LeaderElection,
        rng: &mut ChaCha8Rng,
        timing: &mut ProtocolTiming,
        stats: &mut RunStats,
    ) -> Vec<usize> {
        let n = state.len();
        let dormant: Vec<usize> = (0..n).filter(|&i| state[i] == NodeState::Dormant).collect();
        match self.kind {
            ProtocolKind::Pdd { probability } => dormant
                .into_iter()
                .filter(|_| rng.gen_bool(probability))
                .collect(),
            ProtocolKind::Fdd => {
                let candidates: Vec<bool> =
                    (0..n).map(|i| state[i] == NodeState::Dormant).collect();
                let winner = election.elect(channel, &candidates, timing);
                stats.elections += 1;
                stats.scream_invocations += LeaderElection::id_bits(n) as u64;
                winner.map(|w| vec![w.index()]).unwrap_or_default()
            }
            ProtocolKind::Afdd => {
                // One SCREAM announces whether any dormant node remains; the
                // identity of the highest-id dormant node is known to all from
                // cached candidate order (our interpretation of AFDD).
                let flags: Vec<bool> = (0..n).map(|i| state[i] == NodeState::Dormant).collect();
                let _ = channel.network_or(&flags, timing);
                stats.scream_invocations += 1;
                dormant
                    .into_iter()
                    .max()
                    .map(|i| vec![i])
                    .unwrap_or_default()
            }
        }
    }
}

/// The result of one distributed scheduling run.
///
/// Not serde-deserializable because [`Schedule`] is not (its canonical
/// run-length invariant must be established by construction); serialize the
/// run and re-execute, or rebuild the schedule via `Schedule::from_runs`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DistributedRun {
    /// The protocol variant that produced this run.
    pub kind: ProtocolKind,
    /// The computed STDMA schedule.
    pub schedule: Schedule,
    /// Counts of synchronized steps executed by the protocol.
    pub timing: ProtocolTiming,
    /// The per-step durations used to convert `timing` to wall-clock time.
    pub slot_timing: SlotTiming,
    /// Execution statistics (rounds, elections, vetoes, ...).
    pub stats: RunStats,
}

impl DistributedRun {
    /// Wall-clock execution time of the protocol run — the quantity plotted
    /// in Figures 8 and 9 of the paper.
    pub fn execution_time(&self) -> SimTime {
        self.timing.execution_time(&self.slot_timing)
    }

    /// Execution time in seconds.
    pub fn execution_secs(&self) -> f64 {
        self.execution_time().as_secs_f64()
    }

    /// Schedule-quality metrics for the demand instance this run was executed
    /// on — the quantities plotted in Figures 6 and 7.
    pub fn metrics(&self, demands: &LinkDemands) -> ScheduleMetrics {
        ScheduleMetrics::compute(&self.schedule, demands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScreamFidelity;
    use scream_netsim::{ClockSkewConfig, PropagationModel, RadioEnvironment};
    use scream_scheduling::{verify_schedule, EdgeOrdering, GreedyPhysical};
    use scream_topology::{
        DemandConfig, DemandVector, Deployment, GridDeployment, NodeId, RoutingForest,
        UniformDeployment,
    };

    /// Builds a complete small instance: deployment, environment, demands.
    fn grid_instance(
        side: usize,
        step: f64,
        seed: u64,
    ) -> (Deployment, RadioEnvironment, LinkDemands) {
        let d = GridDeployment::new(side, side, step).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        let gws = d.corner_nodes();
        let forest = RoutingForest::shortest_path(&graph, &gws, seed).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
        let ld = LinkDemands::aggregate(&forest, &demands).unwrap();
        (d, env, ld)
    }

    fn config_for(env: &RadioEnvironment) -> ProtocolConfig {
        ProtocolConfig::paper_default().with_scream_slots(env.interference_diameter().max(1))
    }

    #[test]
    fn fdd_satisfies_demands_with_feasible_slots() {
        let (_, env, ld) = grid_instance(4, 150.0, 1);
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        verify_schedule(&env, &run.schedule, &ld).unwrap();
        assert!(run.stats.terminated);
        assert_eq!(run.stats.rounds as usize, run.schedule.length());
    }

    #[test]
    fn fdd_recreates_the_centralized_greedy_physical_schedule() {
        // Theorem 4: FDD computes exactly the schedule of GreedyPhysical with
        // edges ordered by decreasing head id.
        for seed in [1u64, 3, 7] {
            let (_, env, ld) = grid_instance(4, 160.0, seed);
            let centralized =
                GreedyPhysical::new(EdgeOrdering::DecreasingHeadId).schedule(&env, &ld);
            let distributed = DistributedScheduler::fdd()
                .with_config(config_for(&env))
                .run(&env, &ld)
                .unwrap();
            assert_eq!(
                distributed.schedule, centralized,
                "FDD diverged from GreedyPhysical for seed {seed}"
            );
        }
    }

    #[test]
    fn afdd_schedule_equals_fdd_but_runs_faster() {
        let (_, env, ld) = grid_instance(4, 150.0, 2);
        let fdd = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let afdd = DistributedScheduler::afdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(fdd.schedule, afdd.schedule);
        assert!(afdd.execution_time() < fdd.execution_time());
    }

    #[test]
    fn pdd_produces_valid_schedules_for_all_paper_probabilities() {
        let (_, env, ld) = grid_instance(4, 150.0, 5);
        for p in [0.2, 0.6, 0.8] {
            let run = DistributedScheduler::pdd(p)
                .expect("PDD activation probability is in (0, 1]")
                .with_config(config_for(&env))
                .run(&env, &ld)
                .unwrap();
            verify_schedule(&env, &run.schedule, &ld)
                .unwrap_or_else(|e| panic!("PDD(p={p}) produced an invalid schedule: {e}"));
            assert!(run.stats.terminated);
        }
    }

    #[test]
    fn pdd_is_never_better_than_its_own_serialized_bound_and_usually_close_to_fdd() {
        let (_, env, ld) = grid_instance(4, 150.0, 11);
        let fdd = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let pdd = DistributedScheduler::pdd(0.6)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        assert!(pdd.schedule.length() as u64 <= ld.total_demand());
        // PDD cannot beat the per-round greedy packing of FDD by much; allow
        // it to be better by chance but never by more than one slot, and
        // never more than 60% longer.
        assert!(pdd.schedule.length() + 1 >= fdd.schedule.length());
        assert!(pdd.schedule.length() as f64 <= fdd.schedule.length() as f64 * 1.6);
    }

    #[test]
    fn fdd_is_deterministic_across_seeds_and_pdd_is_not() {
        let (_, env, ld) = grid_instance(4, 150.0, 13);
        let fdd_a = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_seed(1))
            .run(&env, &ld)
            .unwrap();
        let fdd_b = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_seed(2))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(fdd_a.schedule, fdd_b.schedule);

        let pdd_a = DistributedScheduler::pdd(0.3)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env).with_seed(1))
            .run(&env, &ld)
            .unwrap();
        let pdd_b = DistributedScheduler::pdd(0.3)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env).with_seed(2))
            .run(&env, &ld)
            .unwrap();
        // Same seed must reproduce exactly; different seeds generally differ
        // in schedule or at least in iteration counts.
        let pdd_a2 = DistributedScheduler::pdd(0.3)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env).with_seed(1))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(pdd_a.schedule, pdd_a2.schedule);
        assert!(
            pdd_a.schedule != pdd_b.schedule || pdd_a.stats != pdd_b.stats,
            "different seeds should change a randomized run"
        );
    }

    #[test]
    fn physical_and_ideal_scream_fidelity_agree_on_the_schedule() {
        let (_, env, ld) = grid_instance(3, 150.0, 3);
        let ideal = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_fidelity(ScreamFidelity::Ideal))
            .run(&env, &ld)
            .unwrap();
        let physical = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_fidelity(ScreamFidelity::Physical))
            .run(&env, &ld)
            .unwrap();
        assert_eq!(ideal.schedule, physical.schedule);
        assert_eq!(ideal.timing, physical.timing);
    }

    #[test]
    fn execution_time_grows_with_scream_size_interference_diameter_and_skew() {
        let (_, env, ld) = grid_instance(4, 150.0, 4);
        let base_cfg = config_for(&env);
        let base = DistributedScheduler::fdd()
            .with_config(base_cfg)
            .run(&env, &ld)
            .unwrap();

        let bigger_scream = DistributedScheduler::fdd()
            .with_config(base_cfg.with_scream_bytes(60))
            .run(&env, &ld)
            .unwrap();
        assert!(bigger_scream.execution_time() > base.execution_time());

        let larger_k = DistributedScheduler::fdd()
            .with_config(base_cfg.with_scream_slots(base_cfg.scream_slots * 4))
            .run(&env, &ld)
            .unwrap();
        assert!(larger_k.execution_time() > base.execution_time());

        let skewed = DistributedScheduler::fdd()
            .with_config(base_cfg.with_clock_skew(ClockSkewConfig::new(SimTime::from_millis(1))))
            .run(&env, &ld)
            .unwrap();
        assert!(skewed.execution_time() > base.execution_time());
        // The schedule itself is unaffected by any of these knobs.
        assert_eq!(bigger_scream.schedule, base.schedule);
        assert_eq!(larger_k.schedule, base.schedule);
        assert_eq!(skewed.schedule, base.schedule);
    }

    #[test]
    fn pdd_runs_faster_than_fdd_on_the_same_instance() {
        let (_, env, ld) = grid_instance(4, 150.0, 6);
        let fdd = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let pdd = DistributedScheduler::pdd(0.6)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        assert!(
            pdd.execution_time() < fdd.execution_time(),
            "PDD ({}) should be faster than FDD ({})",
            pdd.execution_time(),
            fdd.execution_time()
        );
    }

    #[test]
    fn half_duplex_is_enforced_at_low_sinr_thresholds() {
        // Regression test for the endpoint-sharing loophole: on a chain
        // u -> v -> w, the SINR interferer-exclusion rule skips the shared
        // node v in both directions, so at a low threshold (β = 6 dB, the
        // paper-scenario setting) both handshakes "pass" even though v would
        // have to transmit and receive simultaneously. The runtime's
        // half-duplex screen must reject the second claim, keeping the FDD
        // schedule verifiable and equal to GreedyPhysical (Theorem 4).
        let d = GridDeployment::new(6, 1, 150.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(scream_netsim::RadioConfig::mesh_default().with_sinr_threshold_db(6.0))
            .build(&d);
        let chain = [
            (Link::new(NodeId::new(2), NodeId::new(1)), 2u64),
            (Link::new(NodeId::new(1), NodeId::new(0)), 2),
        ];
        // Without the screen, both links pass their handshakes concurrently.
        let both = [chain[0].0, chain[1].0];
        assert!(env.handshake_ok(chain[0].0, &both));
        assert!(env.handshake_ok(chain[1].0, &both));
        assert!(!scream_scheduling::SlotFeasibility::slot_feasible(
            &env, &both
        ));

        let ld = LinkDemands::from_links(6, &chain).unwrap();
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        verify_schedule(&env, &run.schedule, &ld).unwrap();
        let centralized = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        assert_eq!(run.schedule, centralized);
        assert!(run.schedule.slots().all(|slot| slot.len() == 1));
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let (_, env, _) = grid_instance(3, 150.0, 1);
        let wrong =
            LinkDemands::from_links(4, &[(Link::new(NodeId::new(1), NodeId::new(0)), 1)]).unwrap();
        let err = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &wrong)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::NodeCountMismatch { .. }));
    }

    #[test]
    fn insufficient_scream_slots_are_rejected() {
        let (_, env, ld) = grid_instance(5, 200.0, 1);
        let id = env.interference_diameter();
        assert!(id > 1);
        let err = DistributedScheduler::fdd()
            .with_config(ProtocolConfig::paper_default().with_scream_slots(1))
            .run(&env, &ld)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::ScreamSlotsTooSmall { .. }));
    }

    #[test]
    fn round_limit_aborts_a_run() {
        let (_, env, ld) = grid_instance(4, 150.0, 8);
        let err = DistributedScheduler::fdd()
            .with_config(config_for(&env).with_max_rounds(1))
            .run(&env, &ld)
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::RoundLimitExceeded { limit: 1, .. }
        ));
    }

    #[test]
    fn empty_demand_instance_terminates_immediately() {
        let d = GridDeployment::new(3, 3, 150.0).build();
        let env = RadioEnvironment::builder().build(&d);
        let ld = LinkDemands::from_links(9, &[]).unwrap();
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        assert!(run.schedule.is_empty());
        assert!(run.stats.terminated);
        assert_eq!(run.stats.rounds, 0);
        assert!(
            run.execution_time() > SimTime::ZERO,
            "the final election still costs time"
        );
    }

    #[test]
    fn uniform_random_unplanned_instance_is_scheduled_correctly() {
        // The paper's "unplanned" scenario: uniform placement, heterogeneous
        // transmit power.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let d = UniformDeployment::new(25, 700.0)
            .heterogeneous_power(6.0)
            .build_connected(&mut rng, 180.0, 100)
            .unwrap();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        if !graph.is_connected() {
            // SINR-based graph can be sparser than the unit-disk check used
            // for the draw; skip in that rare case rather than flake.
            return;
        }
        let gws = vec![d.corner_nodes()[0]];
        let forest = RoutingForest::shortest_path(&graph, &gws, 21).unwrap();
        let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
        let ld = LinkDemands::aggregate(&forest, &demands).unwrap();
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        verify_schedule(&env, &run.schedule, &ld).unwrap();
        let centralized = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        assert_eq!(run.schedule, centralized);
    }

    #[test]
    fn run_metrics_reports_improvement_over_linear() {
        let (_, env, ld) = grid_instance(4, 150.0, 9);
        let run = DistributedScheduler::fdd()
            .with_config(config_for(&env))
            .run(&env, &ld)
            .unwrap();
        let m = run.metrics(&ld);
        assert_eq!(m.length, run.schedule.length());
        assert_eq!(m.serialized_length, ld.total_demand());
        assert!(m.improvement_over_linear_pct >= 0.0);
    }
}
