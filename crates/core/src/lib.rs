//! The SCREAM approach: distributed STDMA scheduling with physical
//! interference for wireless mesh networks.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Sections III–IV):
//!
//! * the [`scream`] module implements the **SCREAM primitive** — a
//!   collision-resilient, carrier-sensing based network-wide boolean OR that
//!   completes in `K ≥ ID(G_S)` globally synchronized slots;
//! * the [`election`] module implements **leader election** on top of SCREAM
//!   (bitwise highest-id election in `O(K · log n)` slots);
//! * the [`protocol`] and [`runtime`] modules implement the two distributed
//!   schedulers built from these primitives: **PDD** (partially randomized)
//!   and **FDD** (fully deterministic), plus the **AFDD** variant mentioned
//!   in the paper's evaluation section (implemented here as an adaptive FDD
//!   extension, see `DESIGN.md`);
//! * the [`impossibility`] module contains the constructive counterexample
//!   behind Theorem 1 (no *localized* algorithm can guarantee feasible
//!   schedules under physical interference).
//!
//! The protocols run against the radio environment of `scream-netsim`, so
//! handshake successes, carrier-sense detections and the effect of the
//! interference diameter all emerge from the SINR physics rather than being
//! assumed.
//!
//! # Example: scheduling a small mesh with FDD
//!
//! ```
//! use scream_core::prelude::*;
//! use scream_netsim::prelude::*;
//! use scream_scheduling::prelude::*;
//! use scream_topology::prelude::*;
//! use rand::SeedableRng;
//!
//! let deployment = GridDeployment::new(4, 4, 150.0).build();
//! let env = RadioEnvironment::builder().build(&deployment);
//! let graph = env.communication_graph();
//! let gateways = deployment.corner_nodes();
//! let forest = RoutingForest::shortest_path(&graph, &gateways, 1).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let demands = DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
//! let link_demands = LinkDemands::aggregate(&forest, &demands).unwrap();
//!
//! let run = DistributedScheduler::fdd()
//!     .run(&env, &link_demands)
//!     .unwrap();
//! verify_schedule(&env, &run.schedule, &link_demands).unwrap();
//! assert!(run.execution_time().as_secs_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod election;
pub mod error;
pub mod impossibility;
pub mod protocol;
pub mod runtime;
pub mod scream;
pub mod state;
pub mod stats;

pub use config::{ProtocolConfig, ScreamFidelity};
pub use election::LeaderElection;
pub use error::ProtocolError;
pub use protocol::ProtocolKind;
pub use runtime::{DistributedRun, DistributedScheduler};
pub use scream::ScreamChannel;
pub use state::NodeState;
pub use stats::RunStats;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::config::{ProtocolConfig, ScreamFidelity};
    pub use crate::election::LeaderElection;
    pub use crate::error::ProtocolError;
    pub use crate::protocol::ProtocolKind;
    pub use crate::runtime::{DistributedRun, DistributedScheduler};
    pub use crate::scream::ScreamChannel;
    pub use crate::state::NodeState;
    pub use crate::stats::RunStats;
}
