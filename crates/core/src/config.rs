//! Protocol configuration shared by PDD, FDD and the SCREAM primitive.

use serde::{Deserialize, Serialize};

use scream_netsim::ClockSkewConfig;

use crate::error::ProtocolError;

/// How the SCREAM primitive's carrier-sensing flood is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ScreamFidelity {
    /// Every SCREAM slot is simulated at the physical layer: screaming nodes
    /// transmit, every other node performs energy detection against the
    /// aggregate received power, and the relay set grows hop by hop through
    /// the sensitivity graph. The OR result *emerges* from the physics.
    ///
    /// This is the faithful (and slower) mode; it is the default for small
    /// networks and validation tests.
    Physical,
    /// The primitive is assumed to compute the exact network-wide OR,
    /// provided `K ≥ ID(G_S)` (checked once at startup); only its time cost
    /// (`K` scream slots per invocation) is accounted. Results are identical
    /// to [`Physical`](Self::Physical) whenever the precondition holds —
    /// this is exactly the paper's correctness argument for SCREAM — and the
    /// runtime cross-checks the two modes in its test-suite.
    #[default]
    Ideal,
}

/// Configuration of a distributed scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Number of SCREAM slots `K` per invocation of the primitive. Must be at
    /// least the interference diameter of the sensitivity graph for the
    /// network-wide OR to be correct; the paper's simulations use `K = 5`.
    pub scream_slots: usize,
    /// Number of bytes transmitted by `Scream()` (`SMBytes`). The paper's
    /// simulations use 15 bytes; the mote experiments show ≥ 15–20 bytes make
    /// detection reliable.
    pub scream_bytes: usize,
    /// How the SCREAM flood is simulated.
    pub fidelity: ScreamFidelity,
    /// Clock-skew bound the protocol must compensate for (guard intervals are
    /// derived from it).
    pub clock_skew: ClockSkewConfig,
    /// Seed for all protocol-level randomness (PDD active selection,
    /// clock-offset draws).
    pub seed: u64,
    /// Safety bound on the number of rounds (slots) before the run is
    /// declared stuck. Defaults to 4× the total demand, which the protocols
    /// can never legitimately exceed because every round schedules at least
    /// the controller's edge.
    pub max_rounds: Option<u64>,
    /// Upper bound on how many of the radio environment's orthogonal
    /// channels the distributed protocol exploits. `None` (the default) uses
    /// every channel the environment provides; `Some(1)` pins the protocol
    /// to the single shared channel of the original SCREAM setting even on a
    /// multi-channel environment, which is how sweeps compare the
    /// channel-aware runtime against its single-channel self on identical
    /// instances.
    pub max_channels: Option<usize>,
}

impl ProtocolConfig {
    /// The paper's simulation setting: `K = 5`, 15-byte SCREAMs, ideal OR,
    /// perfect clocks, seed 0.
    pub fn paper_default() -> Self {
        Self {
            scream_slots: 5,
            scream_bytes: 15,
            fidelity: ScreamFidelity::Ideal,
            clock_skew: ClockSkewConfig::PERFECT,
            seed: 0,
            max_rounds: None,
            max_channels: None,
        }
    }

    /// Sets the number of SCREAM slots `K`.
    pub fn with_scream_slots(mut self, k: usize) -> Self {
        self.scream_slots = k;
        self
    }

    /// Sets the SCREAM payload size in bytes.
    pub fn with_scream_bytes(mut self, bytes: usize) -> Self {
        self.scream_bytes = bytes;
        self
    }

    /// Sets the SCREAM simulation fidelity.
    pub fn with_fidelity(mut self, fidelity: ScreamFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the clock-skew bound.
    pub fn with_clock_skew(mut self, skew: ClockSkewConfig) -> Self {
        self.clock_skew = skew;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an explicit round limit.
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Caps the number of orthogonal channels the protocol exploits (the
    /// environment's channel count still bounds it from above).
    pub fn with_max_channels(mut self, channels: usize) -> Self {
        self.max_channels = Some(channels);
        self
    }

    /// The number of channels a run on an environment with
    /// `environment_channels` orthogonal channels actually schedules on.
    pub fn effective_channels(&self, environment_channels: usize) -> usize {
        self.max_channels
            .unwrap_or(usize::MAX)
            .min(environment_channels)
            .max(1)
    }

    /// Validates the structural parameters (those that do not depend on the
    /// radio environment).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] if `K` is zero or the
    /// SCREAM payload is empty.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.scream_slots == 0 {
            return Err(ProtocolError::InvalidParameter(
                "the SCREAM primitive needs at least one slot (K >= 1)".into(),
            ));
        }
        if self.scream_bytes == 0 {
            return Err(ProtocolError::InvalidParameter(
                "a SCREAM must transmit at least one byte".into(),
            ));
        }
        if self.max_channels == Some(0) {
            return Err(ProtocolError::InvalidParameter(
                "a protocol run needs at least one channel (max_channels >= 1)".into(),
            ));
        }
        Ok(())
    }

    /// The effective round limit for a given total demand.
    pub fn round_limit(&self, total_demand: u64) -> u64 {
        self.max_rounds.unwrap_or_else(|| 4 * total_demand.max(1))
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scream_netsim::SimTime;

    #[test]
    fn paper_default_matches_section_vi() {
        let c = ProtocolConfig::paper_default();
        assert_eq!(c.scream_slots, 5);
        assert_eq!(c.scream_bytes, 15);
        assert_eq!(c.fidelity, ScreamFidelity::Ideal);
        assert_eq!(c.clock_skew, ClockSkewConfig::PERFECT);
        assert_eq!(ProtocolConfig::default(), c);
        c.validate().unwrap();
    }

    #[test]
    fn builder_setters_update_fields() {
        let c = ProtocolConfig::paper_default()
            .with_scream_slots(9)
            .with_scream_bytes(24)
            .with_fidelity(ScreamFidelity::Physical)
            .with_clock_skew(ClockSkewConfig::new(SimTime::from_micros(50)))
            .with_seed(99)
            .with_max_rounds(123);
        assert_eq!(c.scream_slots, 9);
        assert_eq!(c.scream_bytes, 24);
        assert_eq!(c.fidelity, ScreamFidelity::Physical);
        assert_eq!(c.clock_skew.bound, SimTime::from_micros(50));
        assert_eq!(c.seed, 99);
        assert_eq!(c.max_rounds, Some(123));
        assert_eq!(c.round_limit(1000), 123);
    }

    #[test]
    fn default_round_limit_scales_with_demand() {
        let c = ProtocolConfig::paper_default();
        assert_eq!(c.round_limit(100), 400);
        assert_eq!(c.round_limit(0), 4);
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert!(ProtocolConfig::paper_default()
            .with_scream_slots(0)
            .validate()
            .is_err());
        assert!(ProtocolConfig::paper_default()
            .with_scream_bytes(0)
            .validate()
            .is_err());
        assert!(ProtocolConfig::paper_default()
            .with_max_channels(0)
            .validate()
            .is_err());
    }

    #[test]
    fn effective_channels_is_the_min_of_cap_and_environment() {
        let unbounded = ProtocolConfig::paper_default();
        assert_eq!(unbounded.effective_channels(1), 1);
        assert_eq!(unbounded.effective_channels(4), 4);
        let capped = ProtocolConfig::paper_default().with_max_channels(2);
        assert_eq!(capped.effective_channels(1), 1);
        assert_eq!(capped.effective_channels(4), 2);
        assert_eq!(capped.max_channels, Some(2));
    }
}
