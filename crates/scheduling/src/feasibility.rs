//! Abstraction over interference models for slot-feasibility checks.
//!
//! The schedulers only need to ask two questions: "is this set of links
//! feasible in one slot?" and "can this link be added to that set?". The
//! [`SlotFeasibility`] trait captures them, with two implementations:
//!
//! * [`RadioEnvironment`](scream_netsim::RadioEnvironment) — the physical
//!   (SINR) interference model of Section II, the paper's subject;
//! * [`ProtocolModel`] — the conservative protocol interference model that
//!   CSMA/CA-style scheduling corresponds to, provided as the comparison
//!   baseline the paper's introduction argues against.

use serde::{Deserialize, Serialize};

use scream_netsim::RadioEnvironment;
use scream_topology::{Graph, Link};

/// Interference-model interface used by the schedulers.
pub trait SlotFeasibility {
    /// Whether the whole set of links can transmit concurrently in one slot.
    fn slot_feasible(&self, links: &[Link]) -> bool;

    /// Whether `candidate` can be added to the already-feasible set
    /// `existing` without breaking feasibility. The default implementation
    /// re-checks the combined set; implementations may override it with
    /// something cheaper.
    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        let mut all = existing.to_vec();
        all.push(candidate);
        self.slot_feasible(&all)
    }
}

impl SlotFeasibility for RadioEnvironment {
    fn slot_feasible(&self, links: &[Link]) -> bool {
        RadioEnvironment::slot_feasible(self, links)
    }

    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        self.can_add_to_slot(existing, candidate)
    }
}

/// Blanket implementation so shared references can be passed where an owner
/// is expected.
impl<T: SlotFeasibility + ?Sized> SlotFeasibility for &T {
    fn slot_feasible(&self, links: &[Link]) -> bool {
        (**self).slot_feasible(links)
    }

    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        (**self).can_add(existing, candidate)
    }
}

/// The protocol interference model: a communication from `u` to `v` succeeds
/// iff no node within `interference_range_hops` hops of either endpoint (in
/// the communication graph) is simultaneously active.
///
/// With `interference_range_hops = 1` this is the classic "no active node may
/// be a neighbor of a receiver" rule; with 2 it approximates RTS/CTS-silenced
/// 802.11 neighborhoods. The model is *more conservative* than the physical
/// model in dense regions (it silences nodes whose aggregate interference
/// would actually be tolerable) which is exactly the capacity argument the
/// paper's introduction makes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolModel {
    graph: Graph,
    interference_range_hops: usize,
}

impl ProtocolModel {
    /// Creates a protocol-model checker over the given communication graph.
    ///
    /// # Panics
    ///
    /// Panics if `interference_range_hops` is zero.
    pub fn new(graph: Graph, interference_range_hops: usize) -> Self {
        assert!(
            interference_range_hops > 0,
            "interference range must be at least one hop"
        );
        Self {
            graph,
            interference_range_hops,
        }
    }

    /// The configured interference range in hops.
    pub fn interference_range_hops(&self) -> usize {
        self.interference_range_hops
    }

    fn within_interference_range(&self, a: scream_topology::NodeId, b: scream_topology::NodeId) -> bool {
        self.graph
            .hop_distance(a, b)
            .is_some_and(|d| d <= self.interference_range_hops)
    }
}

impl SlotFeasibility for ProtocolModel {
    fn slot_feasible(&self, links: &[Link]) -> bool {
        for (i, a) in links.iter().enumerate() {
            if a.head == a.tail {
                return false;
            }
            for b in links.iter().skip(i + 1) {
                if a.shares_endpoint(b) {
                    return false;
                }
                // Under the protocol model the transmitter of one link must
                // not be within interference range of the other link's
                // receiver (and vice versa). Both data and ACK directions are
                // considered, so all four endpoint pairs are checked.
                let conflict = self.within_interference_range(a.head, b.tail)
                    || self.within_interference_range(b.head, a.tail)
                    || self.within_interference_range(a.tail, b.head)
                    || self.within_interference_range(b.tail, a.head);
                if conflict {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scream_netsim::PropagationModel;
    use scream_topology::{GridDeployment, NodeId, UnitDiskGraphBuilder};

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    fn line_graph(n: usize) -> Graph {
        let d = GridDeployment::new(n, 1, 100.0).build();
        UnitDiskGraphBuilder::new(100.0).build(&d)
    }

    #[test]
    fn protocol_model_rejects_nearby_concurrent_links() {
        let m = ProtocolModel::new(line_graph(8), 1);
        // Links 0->1 and 2->3: transmitter 2 is 1 hop from receiver... wait,
        // receiver of the first link is node 1, which is 1 hop from node 2.
        assert!(!m.slot_feasible(&[link(1, 0), link(3, 2)]));
        // Links 0->1 and 5->4 are far apart.
        assert!(m.slot_feasible(&[link(1, 0), link(5, 4)]));
    }

    #[test]
    fn protocol_model_larger_range_is_more_conservative() {
        let near = ProtocolModel::new(line_graph(10), 1);
        let far = ProtocolModel::new(line_graph(10), 3);
        let links = [link(1, 0), link(5, 4)];
        assert!(near.slot_feasible(&links));
        assert!(!far.slot_feasible(&links));
        assert_eq!(far.interference_range_hops(), 3);
    }

    #[test]
    fn protocol_model_rejects_shared_endpoints_and_self_links() {
        let m = ProtocolModel::new(line_graph(5), 1);
        assert!(!m.slot_feasible(&[link(1, 0), link(2, 1)]));
        assert!(!m.slot_feasible(&[link(2, 2)]));
        assert!(m.slot_feasible(&[]));
    }

    #[test]
    fn radio_environment_implements_the_trait() {
        let d = GridDeployment::new(8, 1, 200.0).build();
        let env = scream_netsim::RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let checker: &dyn SlotFeasibility = &env;
        assert!(checker.slot_feasible(&[link(1, 0)]));
        assert!(!checker.slot_feasible(&[link(1, 0), link(2, 1)]));
        // can_add agrees with slot_feasible through the trait object.
        let far = link(7, 6);
        assert_eq!(
            checker.can_add(&[link(1, 0)], far),
            checker.slot_feasible(&[link(1, 0), far])
        );
    }

    #[test]
    fn reference_blanket_impl_delegates() {
        let m = ProtocolModel::new(line_graph(8), 1);
        let by_ref: &ProtocolModel = &m;
        assert_eq!(
            SlotFeasibility::slot_feasible(&by_ref, &[link(1, 0), link(5, 4)]),
            m.slot_feasible(&[link(1, 0), link(5, 4)])
        );
    }

    #[test]
    fn physical_model_admits_sets_a_conservative_protocol_model_rejects() {
        // The motivating claim of the paper: the physical model admits more
        // concurrency than a conservative protocol-model rule. Build a line
        // of 12 nodes at 150 m spacing; the links (1->0), (5->4), (9->8) are
        // 4 hops apart, which a CSMA/CA-like rule silencing a 3-hop
        // neighborhood (carrier-sense range ~2x communication range) forbids,
        // while the aggregate SINR at every receiver stays above beta.
        let d = GridDeployment::new(12, 1, 150.0).build();
        let env = scream_netsim::RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        let protocol = ProtocolModel::new(graph, 3);
        let links = [link(1, 0), link(5, 4), link(9, 8)];
        let physical_ok = SlotFeasibility::slot_feasible(&env, &links);
        let protocol_ok = protocol.slot_feasible(&links);
        assert!(physical_ok);
        assert!(!protocol_ok);
    }
}
