//! Abstraction over interference models for slot-feasibility checks.
//!
//! The schedulers ask three questions: "is this set of links feasible in one
//! slot?", "can this link be added to that set?", and — on the hot path —
//! "let me build a slot incrementally, probing candidates as I go". The
//! [`SlotFeasibility`] trait captures all three; the stateful
//! [`SlotAccumulator`] returned by [`open_slot`](SlotFeasibility::open_slot)
//! is what makes the third one cheap.
//!
//! Two implementations are provided:
//!
//! * [`RadioEnvironment`](scream_netsim::RadioEnvironment) — the physical
//!   (SINR) interference model of Section II, the paper's subject. Its
//!   accumulator is the [`SlotLedger`](scream_netsim::SlotLedger): O(k)
//!   probes against cached per-receiver interference sums instead of the
//!   O(k²) from-scratch recomputation;
//! * [`ProtocolModel`] — the conservative protocol interference model that
//!   CSMA/CA-style scheduling corresponds to, provided as the comparison
//!   baseline the paper's introduction argues against. It precomputes the
//!   all-pairs hop-distance matrix of its graph once, so its pairwise
//!   conflict test is an O(1) table lookup and its accumulator probes in
//!   O(k).
//!
//! Any other implementation gets a correct [`SlotAccumulator`] for free: the
//! provided `open_slot` keeps the link list and re-checks candidates with
//! [`can_add`](SlotFeasibility::can_add). Implementations must be
//! *downward-closed* (every subset of a feasible set is feasible) for
//! incremental building to coincide with whole-set feasibility; interference
//! models are, since removing a transmitter can only reduce interference.

pub use scream_netsim::{ChannelId, LinkSinrMargin, SlotLedger};
use scream_netsim::{ChannelSlotLedger, RadioEnvironment};
use scream_topology::{Graph, Link, NodeId};

/// Stateful, incrementally-built view of one slot under construction.
///
/// Obtained from [`SlotFeasibility::open_slot`]; the schedulers keep one
/// accumulator per open slot so that every feasibility probe is answered
/// from accumulated state instead of re-deriving it from the link list.
pub trait SlotAccumulator {
    /// Whether `candidate` can join the slot without breaking feasibility.
    fn can_add(&self, candidate: Link) -> bool;

    /// Adds `link` to the slot unconditionally, updating internal state.
    /// (The greedy scheduler opens slots around links that are infeasible
    /// even alone, so `assign` must not require a prior passing
    /// [`can_add`](Self::can_add).)
    fn assign(&mut self, link: Link);

    /// Empties the accumulator without releasing its buffers, so one
    /// accumulator can be reused across many slots (the verifier re-checks
    /// every slot of a schedule through a single accumulator this way).
    fn clear(&mut self);

    /// The links assigned so far, in assignment order.
    fn links(&self) -> &[Link];

    /// Number of links assigned so far.
    fn len(&self) -> usize {
        self.links().len()
    }

    /// Whether the slot is still empty.
    fn is_empty(&self) -> bool {
        self.links().is_empty()
    }

    /// Whether `link` has already been assigned to this slot.
    fn contains(&self, link: Link) -> bool {
        self.links().contains(&link)
    }
}

/// Stateful, incrementally-built view of one **multi-channel** slot under
/// construction: one per-channel sub-slot per orthogonal channel, plus the
/// cross-channel half-duplex rule (a node has a single radio, so it may not
/// participate in links on two different channels of the same slot).
///
/// Obtained from [`SlotFeasibility::open_channel_slot`]. With one channel
/// every method degenerates exactly to the single-channel
/// [`SlotAccumulator`]: the cross-channel check is vacuous (there is no
/// *other* channel for a node to be busy on), so channel-aware schedulers
/// make byte-identical decisions to the single-channel ones at `C = 1`.
pub trait ChannelSlotAccumulator {
    /// Number of channels in the slot.
    fn channel_count(&self) -> usize;

    /// Whether `candidate` can join the slot on `channel` without breaking
    /// per-channel feasibility or the cross-channel half-duplex rule.
    fn can_add(&self, channel: ChannelId, candidate: Link) -> bool;

    /// Adds `link` to the slot on `channel` unconditionally (the same
    /// contract as [`SlotAccumulator::assign`]).
    fn assign(&mut self, channel: ChannelId, link: Link);

    /// Empties every channel without releasing buffers, so one accumulator
    /// can be reused across many slots.
    fn clear(&mut self);

    /// The links assigned to `channel` so far, in assignment order.
    fn links(&self, channel: ChannelId) -> &[Link];

    /// Whether `link` is assigned on any channel.
    fn contains_link(&self, link: Link) -> bool {
        (0..self.channel_count()).any(|c| self.links(ChannelId::new(c as u16)).contains(&link))
    }

    /// Total number of links assigned across all channels.
    fn len(&self) -> usize {
        (0..self.channel_count())
            .map(|c| self.links(ChannelId::new(c as u16)).len())
            .sum()
    }

    /// Whether no link has been assigned on any channel.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Interference-model interface used by the schedulers.
pub trait SlotFeasibility {
    /// Whether the whole set of links can transmit concurrently in one slot.
    fn slot_feasible(&self, links: &[Link]) -> bool;

    /// Whether `candidate` can be added to the already-feasible set
    /// `existing` without breaking feasibility. The default implementation
    /// re-checks the combined set; implementations may override it with
    /// something cheaper.
    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        let mut all = existing.to_vec();
        all.push(candidate);
        self.slot_feasible(&all)
    }

    /// Opens a stateful accumulator for building one slot incrementally.
    ///
    /// The default keeps the link list and answers probes through
    /// [`can_add`](Self::can_add) (correct for any model, from-scratch
    /// cost); models with additive structure override it with an O(k)
    /// accumulator.
    fn open_slot(&self) -> Box<dyn SlotAccumulator + '_> {
        Box::new(RecheckAccumulator {
            model: self,
            links: Vec::new(),
        })
    }

    /// Per-link SINR margins of the given slot, in dB relative to the
    /// model's threshold, for diagnostics. Models without a notion of SINR
    /// (e.g. graph-based models) return an empty vector.
    fn slot_margins(&self, _links: &[Link]) -> Vec<LinkSinrMargin> {
        Vec::new()
    }

    /// Number of orthogonal channels the model provides. Interference only
    /// accrues within a channel; the single shared channel of the original
    /// SCREAM setting is the default.
    fn channel_count(&self) -> usize {
        1
    }

    /// Opens a stateful accumulator for building one **multi-channel** slot
    /// incrementally, with [`channel_count`](Self::channel_count) channels.
    ///
    /// The default composes one [`open_slot`](Self::open_slot) accumulator
    /// per channel with a generic cross-channel occupancy list (correct for
    /// any model); [`RadioEnvironment`] overrides it with the O(1)-occupancy
    /// [`ChannelSlotLedger`](scream_netsim::ChannelSlotLedger).
    fn open_channel_slot(&self) -> Box<dyn ChannelSlotAccumulator + '_> {
        Box::new(GenericChannelAccumulator {
            channels: (0..self.channel_count().max(1))
                .map(|_| self.open_slot())
                .collect(),
            occupancy: Vec::new(),
        })
    }
}

/// The fallback multi-channel accumulator behind the default
/// [`SlotFeasibility::open_channel_slot`]: one per-channel accumulator plus
/// an O(k)-scan `(node, channel)` occupancy list for the cross-channel
/// half-duplex rule.
struct GenericChannelAccumulator<'a> {
    channels: Vec<Box<dyn SlotAccumulator + 'a>>,
    occupancy: Vec<(NodeId, ChannelId)>,
}

impl ChannelSlotAccumulator for GenericChannelAccumulator<'_> {
    fn channel_count(&self) -> usize {
        self.channels.len()
    }

    fn can_add(&self, channel: ChannelId, candidate: Link) -> bool {
        let busy_elsewhere = self
            .occupancy
            .iter()
            .any(|&(node, c)| c != channel && (node == candidate.head || node == candidate.tail));
        !busy_elsewhere && self.channels[channel.index()].can_add(candidate)
    }

    fn assign(&mut self, channel: ChannelId, link: Link) {
        self.occupancy.push((link.head, channel));
        self.occupancy.push((link.tail, channel));
        self.channels[channel.index()].assign(link);
    }

    fn clear(&mut self) {
        self.occupancy.clear();
        for accumulator in &mut self.channels {
            accumulator.clear();
        }
    }

    fn links(&self, channel: ChannelId) -> &[Link] {
        self.channels[channel.index()].links()
    }
}

/// The fallback accumulator behind the default
/// [`SlotFeasibility::open_slot`]: keeps the link list, probes through the
/// model's `can_add`.
struct RecheckAccumulator<'a, M: SlotFeasibility + ?Sized> {
    model: &'a M,
    links: Vec<Link>,
}

impl<M: SlotFeasibility + ?Sized> SlotAccumulator for RecheckAccumulator<'_, M> {
    fn can_add(&self, candidate: Link) -> bool {
        self.model.can_add(&self.links, candidate)
    }

    fn assign(&mut self, link: Link) {
        self.links.push(link);
    }

    fn clear(&mut self) {
        self.links.clear();
    }

    fn links(&self) -> &[Link] {
        &self.links
    }
}

/// Adapter exposing the netsim [`ChannelSlotLedger`] through the
/// multi-channel accumulator interface.
struct ChannelLedgerAccumulator<'a> {
    ledger: ChannelSlotLedger<'a>,
}

impl ChannelSlotAccumulator for ChannelLedgerAccumulator<'_> {
    fn channel_count(&self) -> usize {
        self.ledger.channel_count()
    }

    fn can_add(&self, channel: ChannelId, candidate: Link) -> bool {
        self.ledger.can_add(channel, candidate)
    }

    fn assign(&mut self, channel: ChannelId, link: Link) {
        self.ledger.assign(channel, link);
    }

    fn clear(&mut self) {
        self.ledger.clear();
    }

    fn links(&self, channel: ChannelId) -> &[Link] {
        self.ledger.links(channel)
    }

    fn contains_link(&self, link: Link) -> bool {
        self.ledger.contains_link(link)
    }

    fn len(&self) -> usize {
        self.ledger.len()
    }
}

/// Adapter exposing the netsim [`SlotLedger`] through the accumulator
/// interface.
struct LedgerAccumulator<'a> {
    ledger: SlotLedger<'a>,
}

impl SlotAccumulator for LedgerAccumulator<'_> {
    fn can_add(&self, candidate: Link) -> bool {
        self.ledger.can_add(candidate)
    }

    fn assign(&mut self, link: Link) {
        self.ledger.assign(link);
    }

    fn clear(&mut self) {
        self.ledger.clear();
    }

    fn links(&self) -> &[Link] {
        self.ledger.links()
    }
}

impl SlotFeasibility for RadioEnvironment {
    fn slot_feasible(&self, links: &[Link]) -> bool {
        RadioEnvironment::slot_feasible(self, links)
    }

    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        self.can_add_to_slot(existing, candidate)
    }

    fn open_slot(&self) -> Box<dyn SlotAccumulator + '_> {
        Box::new(LedgerAccumulator {
            ledger: self.open_slot_ledger(),
        })
    }

    fn slot_margins(&self, links: &[Link]) -> Vec<LinkSinrMargin> {
        SlotLedger::with_links(self, links).margins()
    }

    fn channel_count(&self) -> usize {
        RadioEnvironment::channel_count(self)
    }

    fn open_channel_slot(&self) -> Box<dyn ChannelSlotAccumulator + '_> {
        Box::new(ChannelLedgerAccumulator {
            ledger: self.open_channel_ledger(),
        })
    }
}

/// Blanket implementation so shared references can be passed where an owner
/// is expected. Forwards every method, so a `&RadioEnvironment` still gets
/// the ledger-backed accumulator.
impl<T: SlotFeasibility + ?Sized> SlotFeasibility for &T {
    fn slot_feasible(&self, links: &[Link]) -> bool {
        (**self).slot_feasible(links)
    }

    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        (**self).can_add(existing, candidate)
    }

    fn open_slot(&self) -> Box<dyn SlotAccumulator + '_> {
        (**self).open_slot()
    }

    fn slot_margins(&self, links: &[Link]) -> Vec<LinkSinrMargin> {
        (**self).slot_margins(links)
    }

    fn channel_count(&self) -> usize {
        (**self).channel_count()
    }

    fn open_channel_slot(&self) -> Box<dyn ChannelSlotAccumulator + '_> {
        (**self).open_channel_slot()
    }
}

/// Wrapper that deliberately bypasses a model's incremental accumulator,
/// forcing the provided from-scratch fallback paths of [`SlotFeasibility`].
///
/// `FromScratch(&env)` behaves exactly like `&env` decision-for-decision but
/// answers every probe by re-checking the whole slot, the way the schedulers
/// worked before the interference ledger existed. It exists so benches (see
/// `crates/bench/benches/feasibility.rs` and the `schedule_*` benches) can
/// report the ledger's speedup against the original implementation, and so
/// tests can cross-check the two paths.
// lint:allow(H1.hot, reason = "definition of the pre-ledger baseline the benches measure the speedup against")
pub struct FromScratch<M>(pub M);

// lint:allow(H1.hot, reason = "baseline impl; forwards the from-scratch fallback paths by design")
impl<M: SlotFeasibility> SlotFeasibility for FromScratch<M> {
    fn slot_feasible(&self, links: &[Link]) -> bool {
        self.0.slot_feasible(links)
    }

    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        self.0.can_add(existing, candidate)
    }

    fn channel_count(&self) -> usize {
        self.0.channel_count()
    }

    // `open_slot`, `open_channel_slot` and `slot_margins` intentionally not
    // forwarded: the defaults re-check through `can_add`, which is the point
    // (`channel_count` *is* forwarded so the from-scratch path makes the same
    // multi-channel decisions, just the slow way).
}

/// Wrapper around a [`RadioEnvironment`] whose accumulators are built with
/// spatial pruning **disabled** ([`SlotLedger::exact`] /
/// `ChannelSlotLedger::exact`), while every other method forwards to the
/// environment unchanged.
///
/// The pruned ledger is verdict-identical to the exact one by construction
/// (every screen carries a conservative margin and ambiguity falls back to
/// the exact code path), so `ExactPhysical(&env)` and `&env` must produce
/// byte-identical schedules. This wrapper exists so that claim is testable
/// (the `pruned_ledger_matches_exact_*` property tests) and measurable (the
/// large-scale probe benchmark reports pruned-vs-exact speedup).
///
/// Contrast with [`FromScratch`], which bypasses the incremental accumulator
/// entirely; `ExactPhysical` keeps the O(k) incremental ledger and only
/// disables the spatial index on top of it.
pub struct ExactPhysical<'a>(pub &'a RadioEnvironment);

impl SlotFeasibility for ExactPhysical<'_> {
    fn slot_feasible(&self, links: &[Link]) -> bool {
        RadioEnvironment::slot_feasible(self.0, links)
    }

    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        self.0.can_add_to_slot(existing, candidate)
    }

    fn open_slot(&self) -> Box<dyn SlotAccumulator + '_> {
        Box::new(LedgerAccumulator {
            ledger: SlotLedger::exact(self.0),
        })
    }

    fn slot_margins(&self, links: &[Link]) -> Vec<LinkSinrMargin> {
        SlotFeasibility::slot_margins(self.0, links)
    }

    fn channel_count(&self) -> usize {
        RadioEnvironment::channel_count(self.0)
    }

    fn open_channel_slot(&self) -> Box<dyn ChannelSlotAccumulator + '_> {
        Box::new(ChannelLedgerAccumulator {
            ledger: ChannelSlotLedger::exact(self.0, RadioEnvironment::channel_count(self.0)),
        })
    }
}

/// The protocol interference model: a communication from `u` to `v` succeeds
/// iff no node within `interference_range_hops` hops of either endpoint (in
/// the communication graph) is simultaneously active.
///
/// With `interference_range_hops = 1` this is the classic "no active node may
/// be a neighbor of a receiver" rule; with 2 it approximates RTS/CTS-silenced
/// 802.11 neighborhoods. The model is *more conservative* than the physical
/// model in dense regions (it silences nodes whose aggregate interference
/// would actually be tolerable) which is exactly the capacity argument the
/// paper's introduction makes.
///
/// Construction precomputes the all-pairs hop-distance matrix of the graph
/// (one BFS per node), so every pairwise conflict test afterwards is an O(1)
/// lookup instead of a fresh BFS.
///
/// Deliberately *not* serde-derived: the hop matrix is O(n²) state derivable
/// from the graph, and deserializing it would mean trusting (and shipping)
/// an invariant `new` exists to establish. Serialize the graph and range and
/// rebuild with [`ProtocolModel::new`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolModel {
    graph: Graph,
    interference_range_hops: usize,
    /// Row-major `n × n` hop distances; `u32::MAX` encodes "unreachable".
    hop_matrix: Vec<u32>,
}

const UNREACHABLE: u32 = u32::MAX;

impl ProtocolModel {
    /// Creates a protocol-model checker over the given communication graph,
    /// precomputing its hop-distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if `interference_range_hops` is zero.
    pub fn new(graph: Graph, interference_range_hops: usize) -> Self {
        assert!(
            interference_range_hops > 0,
            "interference range must be at least one hop"
        );
        let n = graph.node_count();
        let mut hop_matrix = vec![UNREACHABLE; n * n];
        for source in 0..n {
            let distances = graph.bfs_distances(NodeId::new(source as u32));
            for (target, &d) in distances.iter().enumerate() {
                if d != usize::MAX {
                    hop_matrix[source * n + target] = d as u32;
                }
            }
        }
        Self {
            graph,
            interference_range_hops,
            hop_matrix,
        }
    }

    /// The configured interference range in hops.
    pub fn interference_range_hops(&self) -> usize {
        self.interference_range_hops
    }

    /// Precomputed hop distance between two nodes, or `None` when they are
    /// disconnected. Equivalent to `graph.hop_distance(a, b)` at O(1) cost.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let n = self.graph.node_count();
        match self.hop_matrix[a.index() * n + b.index()] {
            UNREACHABLE => None,
            d => Some(d as usize),
        }
    }

    fn within_interference_range(&self, a: NodeId, b: NodeId) -> bool {
        self.hop_distance(a, b)
            .is_some_and(|d| d <= self.interference_range_hops)
    }

    /// Whether two links cannot share a slot under this model: they share an
    /// endpoint, or a transmitter of one is within interference range of a
    /// receiver of the other (both data and ACK directions considered).
    pub fn links_conflict(&self, a: Link, b: Link) -> bool {
        a.shares_endpoint(&b)
            || self.within_interference_range(a.head, b.tail)
            || self.within_interference_range(b.head, a.tail)
            || self.within_interference_range(a.tail, b.head)
            || self.within_interference_range(b.tail, a.head)
    }
}

impl SlotFeasibility for ProtocolModel {
    fn slot_feasible(&self, links: &[Link]) -> bool {
        for (i, a) in links.iter().enumerate() {
            if a.head == a.tail {
                return false;
            }
            for b in links.iter().skip(i + 1) {
                if self.links_conflict(*a, *b) {
                    return false;
                }
            }
        }
        true
    }

    fn can_add(&self, existing: &[Link], candidate: Link) -> bool {
        if candidate.head == candidate.tail {
            return false;
        }
        existing
            .iter()
            .all(|&link| !self.links_conflict(link, candidate))
    }

    // No `open_slot` override: the default accumulator probes through the
    // O(k) `can_add` above, which is already the cheapest possible check for
    // a pairwise model.
}

#[cfg(test)]
mod tests {
    use super::*;
    use scream_netsim::PropagationModel;
    use scream_topology::{GridDeployment, NodeId, UnitDiskGraphBuilder};

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    fn line_graph(n: usize) -> Graph {
        let d = GridDeployment::new(n, 1, 100.0).build();
        UnitDiskGraphBuilder::new(100.0).build(&d)
    }

    #[test]
    fn protocol_model_rejects_nearby_concurrent_links() {
        let m = ProtocolModel::new(line_graph(8), 1);
        // Links 0->1 and 2->3: transmitter 2 is 1 hop from receiver... wait,
        // receiver of the first link is node 1, which is 1 hop from node 2.
        assert!(!m.slot_feasible(&[link(1, 0), link(3, 2)]));
        // Links 0->1 and 5->4 are far apart.
        assert!(m.slot_feasible(&[link(1, 0), link(5, 4)]));
    }

    #[test]
    fn protocol_model_larger_range_is_more_conservative() {
        let near = ProtocolModel::new(line_graph(10), 1);
        let far = ProtocolModel::new(line_graph(10), 3);
        let links = [link(1, 0), link(5, 4)];
        assert!(near.slot_feasible(&links));
        assert!(!far.slot_feasible(&links));
        assert_eq!(far.interference_range_hops(), 3);
    }

    #[test]
    fn protocol_model_rejects_shared_endpoints_and_self_links() {
        let m = ProtocolModel::new(line_graph(5), 1);
        assert!(!m.slot_feasible(&[link(1, 0), link(2, 1)]));
        assert!(!m.slot_feasible(&[link(2, 2)]));
        assert!(m.slot_feasible(&[]));
    }

    #[test]
    fn hop_matrix_matches_per_query_bfs() {
        let graph = line_graph(7);
        let m = ProtocolModel::new(graph.clone(), 2);
        for a in 0..7u32 {
            for b in 0..7u32 {
                assert_eq!(
                    m.hop_distance(NodeId::new(a), NodeId::new(b)),
                    graph.hop_distance(NodeId::new(a), NodeId::new(b)),
                    "hop matrix diverges for ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn protocol_accumulator_agrees_with_whole_set_checks() {
        let m = ProtocolModel::new(line_graph(12), 1);
        let mut acc = m.open_slot();
        let mut assigned: Vec<Link> = Vec::new();
        for candidate in [link(1, 0), link(3, 2), link(5, 4), link(11, 10), link(2, 2)] {
            let mut with_candidate = assigned.clone();
            with_candidate.push(candidate);
            assert_eq!(
                acc.can_add(candidate),
                m.slot_feasible(&with_candidate),
                "accumulator diverges adding {candidate}"
            );
            if acc.can_add(candidate) {
                acc.assign(candidate);
                assigned.push(candidate);
            }
        }
        assert_eq!(acc.links(), assigned.as_slice());
        assert!(!acc.is_empty());
        assert!(acc.contains(link(1, 0)));
    }

    #[test]
    fn radio_environment_implements_the_trait() {
        let d = GridDeployment::new(8, 1, 200.0).build();
        let env = scream_netsim::RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let checker: &dyn SlotFeasibility = &env;
        assert!(checker.slot_feasible(&[link(1, 0)]));
        assert!(!checker.slot_feasible(&[link(1, 0), link(2, 1)]));
        // can_add agrees with slot_feasible through the trait object.
        let far = link(7, 6);
        assert_eq!(
            checker.can_add(&[link(1, 0)], far),
            checker.slot_feasible(&[link(1, 0), far])
        );
    }

    #[test]
    fn environment_accumulator_is_ledger_backed_and_agrees_with_can_add() {
        let d = GridDeployment::new(10, 1, 200.0).build();
        let env = scream_netsim::RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let mut acc = SlotFeasibility::open_slot(&env);
        let mut assigned: Vec<Link> = Vec::new();
        for candidate in [link(0, 1), link(4, 5), link(2, 3), link(8, 9)] {
            assert_eq!(
                acc.can_add(candidate),
                env.can_add_to_slot(&assigned, candidate),
                "ledger accumulator diverges adding {candidate}"
            );
            if acc.can_add(candidate) {
                acc.assign(candidate);
                assigned.push(candidate);
            }
        }
        assert_eq!(acc.links(), assigned.as_slice());
    }

    #[test]
    fn environment_reports_margins_and_protocol_model_does_not() {
        let d = GridDeployment::new(8, 1, 200.0).build();
        let env = scream_netsim::RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let slot = [link(1, 0), link(7, 6)];
        let margins = SlotFeasibility::slot_margins(&env, &slot);
        assert_eq!(margins.len(), 2);
        assert!(margins.iter().all(LinkSinrMargin::ok));

        let m = ProtocolModel::new(line_graph(8), 1);
        assert!(m.slot_margins(&slot).is_empty());
    }

    #[test]
    fn exact_physical_agrees_with_pruned_environment() {
        let d = GridDeployment::new(6, 6, 180.0).build();
        let env = scream_netsim::RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let exact = ExactPhysical(&env);
        assert_eq!(
            SlotFeasibility::channel_count(&exact),
            SlotFeasibility::channel_count(&env)
        );

        let mut pruned_acc = SlotFeasibility::open_slot(&env);
        let mut exact_acc = SlotFeasibility::open_slot(&exact);
        // Row-adjacent links across the grid; some conflict, some do not.
        let candidates: Vec<Link> = (0..36u32)
            .filter(|n| n % 6 != 5)
            .map(|n| link(n, n + 1))
            .collect();
        for &candidate in &candidates {
            let pruned_verdict = pruned_acc.can_add(candidate);
            assert_eq!(
                pruned_verdict,
                exact_acc.can_add(candidate),
                "pruned and exact accumulators diverge on {candidate}"
            );
            if pruned_verdict {
                pruned_acc.assign(candidate);
                exact_acc.assign(candidate);
            }
        }
        assert_eq!(pruned_acc.links(), exact_acc.links());
        assert_eq!(
            SlotFeasibility::slot_margins(&exact, pruned_acc.links()),
            SlotFeasibility::slot_margins(&env, pruned_acc.links())
        );

        // The multi-channel accumulators agree too.
        let mut pruned_ch = SlotFeasibility::open_channel_slot(&env);
        let mut exact_ch = SlotFeasibility::open_channel_slot(&exact);
        let c0 = ChannelId::new(0);
        for &candidate in &candidates {
            let verdict = pruned_ch.can_add(c0, candidate);
            assert_eq!(
                verdict,
                exact_ch.can_add(c0, candidate),
                "channel accumulators diverge on {candidate}"
            );
            if verdict {
                pruned_ch.assign(c0, candidate);
                exact_ch.assign(c0, candidate);
            }
        }
        assert_eq!(pruned_ch.links(c0), exact_ch.links(c0));
    }

    #[test]
    fn reference_blanket_impl_delegates() {
        let m = ProtocolModel::new(line_graph(8), 1);
        let by_ref: &ProtocolModel = &m;
        assert_eq!(
            SlotFeasibility::slot_feasible(&by_ref, &[link(1, 0), link(5, 4)]),
            m.slot_feasible(&[link(1, 0), link(5, 4)])
        );
        // The forwarded accumulator still short-circuits pairwise.
        let acc = SlotFeasibility::open_slot(&by_ref);
        assert!(acc.can_add(link(1, 0)));
    }

    #[test]
    fn physical_model_admits_sets_a_conservative_protocol_model_rejects() {
        // The motivating claim of the paper: the physical model admits more
        // concurrency than a conservative protocol-model rule. Build a line
        // of 12 nodes at 150 m spacing; the links (1->0), (5->4), (9->8) are
        // 4 hops apart, which a CSMA/CA-like rule silencing a 3-hop
        // neighborhood (carrier-sense range ~2x communication range) forbids,
        // while the aggregate SINR at every receiver stays above beta.
        let d = GridDeployment::new(12, 1, 150.0).build();
        let env = scream_netsim::RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        let protocol = ProtocolModel::new(graph, 3);
        let links = [link(1, 0), link(5, 4), link(9, 8)];
        let physical_ok = SlotFeasibility::slot_feasible(&env, &links);
        let protocol_ok = protocol.slot_feasible(&links);
        assert!(physical_ok);
        assert!(!protocol_ok);
    }
}
