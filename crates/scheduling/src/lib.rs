//! STDMA link schedules and centralized scheduling algorithms under the
//! physical interference model.
//!
//! This crate provides:
//!
//! * the [`Schedule`] representation shared by the centralized and
//!   distributed schedulers, along with demand-satisfaction and feasibility
//!   [verification](verify);
//! * the [`SlotFeasibility`] abstraction over interference models (the
//!   physical SINR model of `scream-netsim`, and a protocol-interference
//!   baseline for comparison);
//! * the centralized [`GreedyPhysical`](greedy::GreedyPhysical) algorithm
//!   from the authors' earlier work \[4\], which the paper uses as its
//!   baseline and which the FDD protocol provably recreates;
//! * the serialized ("linear") [baseline](linear) that Figures 6 and 7
//!   normalize against, and schedule-quality [metrics](metrics).
//!
//! # Example
//!
//! ```
//! use scream_scheduling::prelude::*;
//! use scream_netsim::prelude::*;
//! use scream_topology::prelude::*;
//! use rand::SeedableRng;
//!
//! let deployment = GridDeployment::new(4, 4, 200.0).build();
//! let env = RadioEnvironment::builder().build(&deployment);
//! let graph = env.communication_graph();
//! let gateways = deployment.corner_nodes();
//! let forest = RoutingForest::shortest_path(&graph, &gateways, 1).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let demands = DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
//! let link_demands = LinkDemands::aggregate(&forest, &demands).unwrap();
//!
//! let schedule = GreedyPhysical::new(EdgeOrdering::DecreasingHeadId)
//!     .schedule(&env, &link_demands);
//! verify_schedule(&env, &schedule, &link_demands).unwrap();
//! assert!(schedule.length() <= link_demands.total_demand() as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod feasibility;
pub mod frame;
pub mod greedy;
pub mod linear;
pub mod metrics;
pub mod repair;
pub mod schedule;
pub mod verify;

pub use feasibility::{
    ChannelId, ChannelSlotAccumulator, ExactPhysical, LinkSinrMargin, ProtocolModel,
    SlotAccumulator, SlotFeasibility,
};
// lint:allow(H1.hot, reason = "re-export of the bench baseline model")
pub use feasibility::FromScratch;
pub use frame::{FrameService, NextService, ServiceWindow};
pub use greedy::{EdgeOrdering, GreedyPhysical};
pub use linear::serialized_schedule;
pub use metrics::ScheduleMetrics;
pub use repair::{repair_schedule, RepairOutcome, RepairedSchedule};
pub use schedule::{Schedule, SlotPattern};
pub use verify::{verify_schedule, verify_slots_feasible, ScheduleViolation};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    // lint:allow(H1.hot, reason = "re-export of the bench baseline model")
    pub use crate::feasibility::FromScratch;
    pub use crate::feasibility::{
        ChannelId, ChannelSlotAccumulator, ExactPhysical, LinkSinrMargin, ProtocolModel,
        SlotAccumulator, SlotFeasibility,
    };
    pub use crate::frame::{FrameService, NextService, ServiceWindow};
    pub use crate::greedy::{EdgeOrdering, GreedyPhysical};
    pub use crate::linear::serialized_schedule;
    pub use crate::metrics::ScheduleMetrics;
    pub use crate::repair::{repair_schedule, RepairOutcome, RepairedSchedule};
    pub use crate::schedule::{Schedule, SlotPattern};
    pub use crate::verify::{verify_schedule, verify_slots_feasible, ScheduleViolation};
}
