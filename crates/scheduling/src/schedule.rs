//! The STDMA schedule representation.
//!
//! A schedule is an ordered sequence of slots, each containing the set of
//! links that transmit concurrently in that slot. Both the centralized
//! GreedyPhysical algorithm and the distributed PDD/FDD protocols produce
//! values of this type, which makes cross-checking them (Theorem 4) a simple
//! equality test.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use scream_topology::{Link, NodeId};

/// An STDMA schedule: `slots[t]` is the set of links transmitting in slot `t`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schedule {
    slots: Vec<Vec<Link>>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schedule from explicit slots, normalizing the link order
    /// inside every slot (slot contents are sets; order carries no meaning).
    pub fn from_slots(slots: Vec<Vec<Link>>) -> Self {
        let mut s = Self { slots };
        for slot in &mut s.slots {
            slot.sort_unstable();
            slot.dedup();
        }
        s
    }

    /// Number of slots (the schedule length `T` the paper minimizes).
    pub fn length(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the schedule has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The links scheduled in slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn slot(&self, t: usize) -> &[Link] {
        &self.slots[t]
    }

    /// Iterator over the slots in order.
    pub fn slots(&self) -> impl Iterator<Item = &[Link]> + '_ {
        self.slots.iter().map(Vec::as_slice)
    }

    /// Appends a new slot containing the given links and returns its index.
    pub fn push_slot(&mut self, links: Vec<Link>) -> usize {
        let mut links = links;
        links.sort_unstable();
        links.dedup();
        self.slots.push(links);
        self.slots.len() - 1
    }

    /// Adds `link` to slot `t`, extending the schedule with empty slots if
    /// `t` is beyond the current length. Adding a link twice to the same slot
    /// has no effect.
    pub fn assign(&mut self, t: usize, link: Link) {
        while self.slots.len() <= t {
            self.slots.push(Vec::new());
        }
        let slot = &mut self.slots[t];
        if !slot.contains(&link) {
            slot.push(link);
            slot.sort_unstable();
        }
    }

    /// Whether slot `t` already contains `link`.
    pub fn contains(&self, t: usize, link: Link) -> bool {
        self.slots.get(t).is_some_and(|s| s.contains(&link))
    }

    /// Number of slots allocated to each link across the whole schedule.
    pub fn allocation_counts(&self) -> HashMap<Link, u64> {
        let mut counts = HashMap::new();
        for slot in &self.slots {
            for &link in slot {
                *counts.entry(link).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Number of slots in which `link` appears.
    pub fn allocated_to(&self, link: Link) -> u64 {
        self.slots.iter().filter(|s| s.contains(&link)).count() as u64
    }

    /// Total number of (link, slot) transmission opportunities in the
    /// schedule.
    pub fn total_transmissions(&self) -> u64 {
        self.slots.iter().map(|s| s.len() as u64).sum()
    }

    /// Average number of concurrent links per slot — the spatial-reuse factor
    /// the physical model is supposed to unlock relative to serialized
    /// (one-link-per-slot) scheduling.
    pub fn spatial_reuse(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.total_transmissions() as f64 / self.length() as f64
    }

    /// Removes trailing empty slots (produced by some distributed runs when a
    /// round seals an empty slot at termination).
    pub fn trim_empty_slots(&mut self) {
        while self.slots.last().is_some_and(Vec::is_empty) {
            self.slots.pop();
        }
    }

    /// All distinct nodes that appear as an endpoint of any scheduled link.
    pub fn participating_nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .slots
            .iter()
            .flatten()
            .flat_map(|l| [l.head, l.tail])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "schedule with {} slots:", self.length())?;
        for (t, slot) in self.slots.iter().enumerate() {
            let links: Vec<String> = slot.iter().map(|l| l.to_string()).collect();
            writeln!(f, "  slot {t:>3}: {}", links.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn empty_schedule_has_zero_length() {
        let s = Schedule::new();
        assert_eq!(s.length(), 0);
        assert!(s.is_empty());
        assert_eq!(s.spatial_reuse(), 0.0);
        assert!(s.participating_nodes().is_empty());
    }

    #[test]
    fn push_slot_and_assign_agree() {
        let mut a = Schedule::new();
        a.push_slot(vec![link(1, 0), link(3, 2)]);
        a.push_slot(vec![link(5, 4)]);

        let mut b = Schedule::new();
        b.assign(0, link(3, 2));
        b.assign(0, link(1, 0));
        b.assign(1, link(5, 4));

        assert_eq!(a, b);
        assert_eq!(a.length(), 2);
    }

    #[test]
    fn assign_extends_schedule_and_ignores_duplicates() {
        let mut s = Schedule::new();
        s.assign(3, link(1, 0));
        assert_eq!(s.length(), 4);
        assert!(s.slot(0).is_empty());
        s.assign(3, link(1, 0));
        assert_eq!(s.slot(3).len(), 1);
        assert!(s.contains(3, link(1, 0)));
        assert!(!s.contains(0, link(1, 0)));
        assert!(!s.contains(99, link(1, 0)));
    }

    #[test]
    fn from_slots_normalizes_order_and_duplicates() {
        let a = Schedule::from_slots(vec![vec![link(3, 2), link(1, 0), link(1, 0)]]);
        let b = Schedule::from_slots(vec![vec![link(1, 0), link(3, 2)]]);
        assert_eq!(a, b);
    }

    #[test]
    fn allocation_counts_track_per_link_slots() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(5, 4)]);
        assert_eq!(s.allocated_to(link(1, 0)), 2);
        assert_eq!(s.allocated_to(link(3, 2)), 1);
        assert_eq!(s.allocated_to(link(9, 8)), 0);
        let counts = s.allocation_counts();
        assert_eq!(counts[&link(1, 0)], 2);
        assert_eq!(counts.len(), 3);
        assert_eq!(s.total_transmissions(), 4);
    }

    #[test]
    fn spatial_reuse_is_average_concurrency() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(5, 4)]);
        assert!((s.spatial_reuse() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trim_empty_slots_removes_only_trailing_empties() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![]);
        s.push_slot(vec![link(3, 2)]);
        s.push_slot(vec![]);
        s.push_slot(vec![]);
        s.trim_empty_slots();
        assert_eq!(s.length(), 3);
        assert!(s.slot(1).is_empty());
    }

    #[test]
    fn participating_nodes_are_sorted_and_unique() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(1, 0)]);
        assert_eq!(
            s.participating_nodes(),
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn display_mentions_every_slot() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(3, 2)]);
        let text = s.to_string();
        assert!(text.contains("2 slots"));
        assert!(text.contains("n1->n0"));
        assert!(text.contains("n3->n2"));
    }
}
