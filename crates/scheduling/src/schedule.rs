//! The STDMA schedule representation.
//!
//! A schedule is an ordered sequence of slots, each containing the set of
//! links that transmit concurrently in that slot. Both the centralized
//! GreedyPhysical algorithm and the distributed PDD/FDD protocols produce
//! values of this type, which makes cross-checking them (Theorem 4) a simple
//! equality test.
//!
//! # Run-length representation
//!
//! Heavy-demand instances repeat the same slot *pattern* (link set) many
//! times in a row — a link with a million units of leftover demand occupies a
//! million consecutive identical solo slots. Following the multicoloring view
//! of schedules as slot patterns with multiplicities (Vieira et al.,
//! arXiv:1106.1590 / arXiv:1504.01647), `Schedule` stores **maximal runs**
//! `(pattern, multiplicity)` instead of one `Vec<Link>` per slot, so memory
//! and most queries are O(#patterns) rather than O(#slots). The per-slot API
//! (`slot`, `slots`, `assign`, …) is preserved on top of the compact form;
//! consumers that care about heavy demand (the verifier, the metrics, the
//! greedy scheduler) walk [`runs`](Schedule::runs) directly and pay per
//! *distinct* pattern, not per slot.
//!
//! # Channel annotations
//!
//! Multi-channel/multi-radio scenarios are modeled as an extra *pattern
//! dimension*, not as expanded slot lists: a [`SlotPattern`] is a set of
//! `(channel, link)` assignments, kept sorted channel-major so each
//! channel's link set is a contiguous sub-slice
//! ([`channel_groups`](SlotPattern::channel_groups)). Orthogonal channels do
//! not interfere, so per-channel SINR feasibility plus the cross-channel
//! half-duplex rule (one radio per node — a node may not appear on two
//! channels of the same slot, checked by the verifier) fully characterize
//! multi-channel feasibility. Single-channel patterns store **no** channel
//! tags at all (the tag vector stays empty), so the `C = 1` representation
//! is byte-for-byte the plain link list the single-channel schedulers always
//! produced.
//!
//! The run list is kept **canonical** — no empty runs, no two adjacent runs
//! with the same pattern, pattern entries sorted and deduplicated, channel
//! tags elided when every entry sits on channel 0 — by every constructor and
//! mutator, so the derived `PartialEq` compares logical slot sequences
//! exactly as the old expanded form did.

use std::collections::BTreeMap;

use serde::Serialize;

use scream_netsim::ChannelId;
use scream_topology::{Link, NodeId};

/// One slot's channel-annotated link set: which links transmit concurrently,
/// and on which orthogonal channel each of them does.
///
/// Canonical form: entries sorted by `(channel, link)` and deduplicated, with
/// the channel-tag vector left **empty** whenever every entry is on channel 0
/// — so single-channel patterns are representationally identical to the plain
/// sorted link lists of the single-channel scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct SlotPattern {
    /// The scheduled links, sorted channel-major then by link.
    links: Vec<Link>,
    /// Channel tag per link (parallel to `links`); empty when every link is
    /// on channel 0.
    channels: Vec<ChannelId>,
}

impl SlotPattern {
    /// The empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a single-channel (channel 0) pattern, normalizing link order
    /// and dropping duplicates.
    pub fn from_links(mut links: Vec<Link>) -> Self {
        links.sort_unstable();
        links.dedup();
        Self {
            links,
            channels: Vec::new(),
        }
    }

    /// Builds a pattern from explicit `(channel, link)` entries, normalizing
    /// to the canonical form (sorted channel-major, deduplicated, channel
    /// tags elided when all-zero).
    pub fn from_entries(entries: impl IntoIterator<Item = (ChannelId, Link)>) -> Self {
        let mut entries: Vec<(ChannelId, Link)> = entries.into_iter().collect();
        entries.sort_unstable();
        entries.dedup();
        if entries.iter().all(|(c, _)| *c == ChannelId::ZERO) {
            Self {
                links: entries.into_iter().map(|(_, l)| l).collect(),
                channels: Vec::new(),
            }
        } else {
            let links = entries.iter().map(|&(_, l)| l).collect();
            let channels = entries.into_iter().map(|(c, _)| c).collect();
            Self { links, channels }
        }
    }

    /// The scheduled links, across all channels, sorted channel-major.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The channel of the `i`-th link.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn channel_of(&self, i: usize) -> ChannelId {
        assert!(i < self.links.len(), "entry {i} out of range");
        self.channels.get(i).copied().unwrap_or(ChannelId::ZERO)
    }

    /// The `(channel, link)` entries in canonical order.
    pub fn entries(&self) -> impl Iterator<Item = (ChannelId, Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &l)| (self.channel_of(i), l))
    }

    /// Number of `(channel, link)` entries — the slot's total concurrent
    /// transmissions across all channels.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the slot is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether `link` is scheduled on any channel.
    pub fn contains_link(&self, link: Link) -> bool {
        self.links.contains(&link)
    }

    /// Whether the exact `(channel, link)` entry is present.
    pub fn contains(&self, channel: ChannelId, link: Link) -> bool {
        self.entries().any(|e| e == (channel, link))
    }

    /// Whether every entry sits on channel 0 (true for the empty pattern).
    pub fn is_single_channel(&self) -> bool {
        self.channels.is_empty()
    }

    /// The links scheduled on `channel`, as a contiguous sub-slice.
    pub fn channel_links(&self, channel: ChannelId) -> &[Link] {
        if self.channels.is_empty() {
            return if channel == ChannelId::ZERO {
                &self.links
            } else {
                &[]
            };
        }
        let start = self.channels.partition_point(|&c| c < channel);
        let end = self.channels.partition_point(|&c| c <= channel);
        &self.links[start..end]
    }

    /// The non-empty per-channel link groups, in increasing channel order.
    pub fn channel_groups(&self) -> impl Iterator<Item = (ChannelId, &[Link])> + '_ {
        ChannelGroups {
            pattern: self,
            start: 0,
        }
    }

    /// Number of distinct channels used by the pattern (0 when empty).
    pub fn channels_used(&self) -> usize {
        self.channel_groups().count()
    }

    /// A node that appears in links of two *different* channels of this slot,
    /// if any — the cross-channel half-duplex violation the verifier rejects
    /// (a node has one radio, so it cannot operate on two channels in the
    /// same slot).
    pub fn node_on_multiple_channels(&self) -> Option<NodeId> {
        if self.channels.is_empty() {
            return None;
        }
        let mut seen: Vec<(NodeId, ChannelId)> = Vec::with_capacity(2 * self.links.len());
        for (channel, link) in self.entries() {
            for node in [link.head, link.tail] {
                if seen.iter().any(|&(n, c)| n == node && c != channel) {
                    return Some(node);
                }
                seen.push((node, channel));
            }
        }
        None
    }

    /// This pattern with `(channel, link)` added (a no-op if the exact entry
    /// is already present), re-canonicalized.
    pub fn with_entry(&self, channel: ChannelId, link: Link) -> Self {
        if self.contains(channel, link) {
            return self.clone();
        }
        Self::from_entries(self.entries().chain(std::iter::once((channel, link))))
    }
}

/// Iterator behind [`SlotPattern::channel_groups`].
struct ChannelGroups<'a> {
    pattern: &'a SlotPattern,
    start: usize,
}

impl<'a> Iterator for ChannelGroups<'a> {
    type Item = (ChannelId, &'a [Link]);

    fn next(&mut self) -> Option<Self::Item> {
        let links = &self.pattern.links;
        if self.start >= links.len() {
            return None;
        }
        let channel = self.pattern.channel_of(self.start);
        let end = if self.pattern.channels.is_empty() {
            links.len()
        } else {
            self.pattern.channels.partition_point(|&c| c <= channel)
        };
        let group = &links[self.start..end];
        self.start = end;
        Some((channel, group))
    }
}

impl std::fmt::Display for SlotPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (channel, link) in self.entries() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            if self.is_single_channel() {
                write!(f, "{link}")?;
            } else {
                write!(f, "{link}@{channel}")?;
            }
        }
        Ok(())
    }
}

/// An STDMA schedule: logically, `slots[t]` is the set of `(channel, link)`
/// transmissions in slot `t`; physically, maximal runs of identical
/// consecutive slots are stored once with a multiplicity.
///
/// Deliberately *not* serde-deserializable (same stance as `ProtocolModel`):
/// equality, allocation counts and the run-aware verifier all rely on the
/// canonical-run invariant, and a derived `Deserialize` would construct
/// values that bypass it. Serialize the runs and rebuild with
/// [`Schedule::from_pattern_runs`], which re-establishes the invariant.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct Schedule {
    /// Canonical maximal runs: `(pattern, multiplicity)`, multiplicity ≥ 1,
    /// no two adjacent runs share a pattern.
    runs: Vec<(SlotPattern, u64)>,
    /// Cached total slot count (the sum of multiplicities), kept in sync by
    /// every mutator so `length` is O(1).
    total: u64,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a single-channel schedule from explicit slots, normalizing the
    /// link order inside every slot (slot contents are sets; order carries no
    /// meaning).
    pub fn from_slots(slots: Vec<Vec<Link>>) -> Self {
        Self::from_runs(slots.into_iter().map(|links| (links, 1)))
    }

    /// Creates a single-channel schedule from `(links, multiplicity)` runs,
    /// normalizing patterns, dropping zero-multiplicity runs and merging
    /// adjacent runs with equal patterns.
    pub fn from_runs(runs: impl IntoIterator<Item = (Vec<Link>, u64)>) -> Self {
        Self::from_pattern_runs(
            runs.into_iter()
                .map(|(links, count)| (SlotPattern::from_links(links), count)),
        )
    }

    /// Creates a schedule from channel-annotated `(pattern, multiplicity)`
    /// runs, re-establishing every canonical-form invariant.
    pub fn from_pattern_runs(runs: impl IntoIterator<Item = (SlotPattern, u64)>) -> Self {
        let mut s = Self::new();
        for (pattern, count) in runs {
            s.push_pattern_run(pattern, count);
        }
        s
    }

    /// Number of slots (the schedule length `T` the paper minimizes).
    pub fn length(&self) -> usize {
        self.total as usize
    }

    /// Number of distinct consecutive slot patterns — the size of the compact
    /// representation, which bounds the cost of run-aware consumers like the
    /// verifier.
    pub fn pattern_count(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` if the schedule has no slots.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The maximal runs `(pattern, multiplicity)` in slot order. Iterating
    /// runs instead of [`slots`](Self::slots) is what makes heavy-demand
    /// schedules cheap to verify and measure.
    pub fn runs(&self) -> impl Iterator<Item = (&SlotPattern, u64)> + '_ {
        self.runs.iter().map(|(pattern, count)| (pattern, *count))
    }

    /// The pattern of slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn slot(&self, t: usize) -> &SlotPattern {
        self.find_run(t)
            .map(|(run, _)| &self.runs[run].0)
            .unwrap_or_else(|| panic!("slot {t} out of range (length {})", self.length()))
    }

    /// Iterator over the slot patterns in order. Expands runs — prefer
    /// [`runs`](Self::runs) for heavy-demand schedules.
    pub fn slots(&self) -> impl Iterator<Item = &SlotPattern> + '_ {
        self.runs
            .iter()
            .flat_map(|(pattern, count)| std::iter::repeat_n(pattern, *count as usize))
    }

    /// Expands the schedule into one `Vec<Link>` per slot — the seed's
    /// single-channel representation, kept for round-trip tests and per-slot
    /// consumers. Channel tags are dropped; for single-channel schedules the
    /// round trip through [`from_slots`](Self::from_slots) is exact.
    pub fn expand(&self) -> Vec<Vec<Link>> {
        // lint:allow(H1.hot, reason = "expand() is the explicit expansion entry point; callers opt in")
        self.slots().map(|p| p.links().to_vec()).collect()
    }

    /// Appends a new slot containing the given links on channel 0 and returns
    /// its index, in O(pattern) (the cached length makes the index free).
    pub fn push_slot(&mut self, links: Vec<Link>) -> usize {
        self.push_slot_run(links, 1);
        (self.total - 1) as usize
    }

    /// Appends `count` consecutive slots with the same channel-0 `links`
    /// pattern in O(pattern) — the run-length fast path the greedy scheduler
    /// and the serialized baseline use for leftover demand. A zero `count` is
    /// a no-op.
    pub fn push_slot_run(&mut self, links: Vec<Link>, count: u64) {
        self.push_pattern_run(SlotPattern::from_links(links), count);
    }

    /// Appends `count` consecutive slots with the same channel-annotated
    /// pattern, merging into the previous run when the patterns are equal. A
    /// zero `count` is a no-op.
    pub fn push_pattern_run(&mut self, pattern: SlotPattern, count: u64) {
        if count == 0 {
            return;
        }
        self.total += count;
        match self.runs.last_mut() {
            Some((last, multiplicity)) if *last == pattern => *multiplicity += count,
            _ => self.runs.push((pattern, count)),
        }
    }

    /// Adds `link` to slot `t` on channel 0, extending the schedule with
    /// empty slots if `t` is beyond the current length. Adding the same
    /// entry twice has no effect.
    ///
    /// Costs O(#patterns): the run containing `t` is split around the
    /// modified slot and the run list re-canonicalized.
    pub fn assign(&mut self, t: usize, link: Link) {
        self.assign_on(t, ChannelId::ZERO, link);
    }

    /// Adds `link` to slot `t` on the given channel (see
    /// [`assign`](Self::assign)). The schedule type itself accepts any
    /// combination — feasibility, including the cross-channel half-duplex
    /// rule, is the verifier's job.
    pub fn assign_on(&mut self, t: usize, channel: ChannelId, link: Link) {
        let length = self.length();
        if t >= length {
            self.push_pattern_run(SlotPattern::new(), (t - length + 1) as u64);
        }
        let (run, offset) = self
            .find_run(t)
            .expect("slot t exists after the extension above");
        let (pattern, count) = &self.runs[run];
        if pattern.contains(channel, link) {
            return;
        }
        let with_link = pattern.with_entry(channel, link);
        let count = *count;
        // Split the run into (before, the modified slot, after) and replace
        // it. The pieces are pairwise distinct (old vs old+link), so the only
        // adjacencies that can need re-merging are the two outer boundaries.
        let (old_pattern, _) = self.runs.remove(run);
        let mut insert = run;
        let mut pieces = 1usize;
        if offset > 0 {
            self.runs
                .insert(insert, (old_pattern.clone(), offset as u64));
            insert += 1;
            pieces += 1;
        }
        self.runs.insert(insert, (with_link, 1));
        let after = count - offset as u64 - 1;
        if after > 0 {
            self.runs.insert(insert + 1, (old_pattern, after));
            pieces += 1;
        }
        // Higher boundary first so the lower merge's index stays valid.
        self.merge_into_predecessor(run + pieces);
        self.merge_into_predecessor(run);
    }

    /// Whether slot `t` contains `link` on any channel.
    pub fn contains(&self, t: usize, link: Link) -> bool {
        self.find_run(t)
            .is_some_and(|(run, _)| self.runs[run].0.contains_link(link))
    }

    /// Whether slot `t` contains the exact `(channel, link)` entry.
    pub fn contains_on(&self, t: usize, channel: ChannelId, link: Link) -> bool {
        self.find_run(t)
            .is_some_and(|(run, _)| self.runs[run].0.contains(channel, link))
    }

    /// Number of slots allocated to each link (on whatever channel) across
    /// the whole schedule.
    pub fn allocation_counts(&self) -> BTreeMap<Link, u64> {
        let mut counts = BTreeMap::new();
        for (pattern, count) in &self.runs {
            for (i, &link) in pattern.links().iter().enumerate() {
                // A (degenerate) pattern may repeat a link on two channels;
                // count the slot once per link, as the demand ledger does.
                if pattern.links()[..i].contains(&link) {
                    continue;
                }
                *counts.entry(link).or_insert(0) += count;
            }
        }
        counts
    }

    /// Number of slots in which `link` appears (on any channel).
    pub fn allocated_to(&self, link: Link) -> u64 {
        self.runs
            .iter()
            .filter(|(pattern, _)| pattern.contains_link(link))
            .map(|(_, count)| count)
            .sum()
    }

    /// Total number of (channel, link, slot) transmission opportunities in
    /// the schedule.
    pub fn total_transmissions(&self) -> u64 {
        self.runs
            .iter()
            .map(|(pattern, count)| pattern.len() as u64 * count)
            .sum()
    }

    /// Average number of concurrent transmissions per slot, across all
    /// channels — the spatial-reuse factor the physical model (multiplied by
    /// orthogonal channels) is supposed to unlock relative to serialized
    /// (one-link-per-slot) scheduling.
    pub fn spatial_reuse(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.total_transmissions() as f64 / self.length() as f64
    }

    /// Number of distinct channels used anywhere in the schedule (0 when the
    /// schedule has no transmissions at all).
    pub fn channels_used(&self) -> usize {
        let mut channels: Vec<ChannelId> = self
            .runs
            .iter()
            .flat_map(|(pattern, _)| pattern.channel_groups().map(|(c, _)| c))
            .collect();
        channels.sort_unstable();
        channels.dedup();
        channels.len()
    }

    /// Removes trailing empty slots (produced by some distributed runs when a
    /// round seals an empty slot at termination).
    pub fn trim_empty_slots(&mut self) {
        while self.runs.last().is_some_and(|(p, _)| p.is_empty()) {
            let (_, count) = self.runs.pop().expect("checked non-empty");
            self.total -= count;
        }
    }

    /// All distinct nodes that appear as an endpoint of any scheduled link.
    pub fn participating_nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .runs
            .iter()
            .flat_map(|(pattern, _)| pattern.links().iter())
            .flat_map(|l| [l.head, l.tail])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Locates the run containing slot `t`, returning `(run_index, offset)`
    /// where `offset` is `t`'s position inside the run.
    fn find_run(&self, t: usize) -> Option<(usize, usize)> {
        let mut start = 0usize;
        for (i, (_, count)) in self.runs.iter().enumerate() {
            let end = start + *count as usize;
            if t < end {
                return Some((i, t - start));
            }
            start = end;
        }
        None
    }

    /// Merges run `i` into run `i - 1` if their patterns are equal — the O(1)
    /// boundary repair [`assign`](Self::assign) uses after splicing a run.
    fn merge_into_predecessor(&mut self, i: usize) {
        if i == 0 || i >= self.runs.len() || self.runs[i - 1].0 != self.runs[i].0 {
            return;
        }
        let (_, count) = self.runs.remove(i);
        self.runs[i - 1].1 += count;
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "schedule with {} slots:", self.length())?;
        let mut start = 0usize;
        for (pattern, count) in &self.runs {
            if *count == 1 {
                writeln!(f, "  slot {start:>3}: {pattern}")?;
            } else {
                writeln!(
                    f,
                    "  slots {start}..={} (x{count}): {pattern}",
                    start + *count as usize - 1,
                )?;
            }
            start += *count as usize;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    fn ch(c: u16) -> ChannelId {
        ChannelId::new(c)
    }

    #[test]
    fn empty_schedule_has_zero_length() {
        let s = Schedule::new();
        assert_eq!(s.length(), 0);
        assert!(s.is_empty());
        assert_eq!(s.spatial_reuse(), 0.0);
        assert!(s.participating_nodes().is_empty());
        assert_eq!(s.pattern_count(), 0);
        assert_eq!(s.channels_used(), 0);
    }

    #[test]
    fn push_slot_and_assign_agree() {
        let mut a = Schedule::new();
        a.push_slot(vec![link(1, 0), link(3, 2)]);
        a.push_slot(vec![link(5, 4)]);

        let mut b = Schedule::new();
        b.assign(0, link(3, 2));
        b.assign(0, link(1, 0));
        b.assign(1, link(5, 4));

        assert_eq!(a, b);
        assert_eq!(a.length(), 2);
    }

    #[test]
    fn assign_extends_schedule_and_ignores_duplicates() {
        let mut s = Schedule::new();
        s.assign(3, link(1, 0));
        assert_eq!(s.length(), 4);
        assert!(s.slot(0).is_empty());
        s.assign(3, link(1, 0));
        assert_eq!(s.slot(3).len(), 1);
        assert!(s.contains(3, link(1, 0)));
        assert!(!s.contains(0, link(1, 0)));
        assert!(!s.contains(99, link(1, 0)));
    }

    #[test]
    fn from_slots_normalizes_order_and_duplicates() {
        let a = Schedule::from_slots(vec![vec![link(3, 2), link(1, 0), link(1, 0)]]);
        let b = Schedule::from_slots(vec![vec![link(1, 0), link(3, 2)]]);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_consecutive_slots_share_one_run() {
        let mut s = Schedule::new();
        for _ in 0..1000 {
            s.push_slot(vec![link(1, 0)]);
        }
        s.push_slot_run(vec![link(3, 2)], 1_000_000);
        assert_eq!(s.length(), 1_001_000);
        assert_eq!(s.pattern_count(), 2);
        assert_eq!(s.allocated_to(link(3, 2)), 1_000_000);
        assert_eq!(s.total_transmissions(), 1_001_000);
        assert_eq!(s.slot(999).links(), &[link(1, 0)]);
        assert_eq!(s.slot(1000).links(), &[link(3, 2)]);
    }

    #[test]
    fn run_construction_equals_slot_construction() {
        let by_runs = Schedule::from_runs(vec![
            (vec![link(1, 0)], 3),
            (vec![link(3, 2), link(1, 0)], 1),
            (vec![link(1, 0)], 0), // dropped
            (vec![link(1, 0)], 2),
        ]);
        let by_slots = Schedule::from_slots(vec![
            vec![link(1, 0)],
            vec![link(1, 0)],
            vec![link(1, 0)],
            vec![link(1, 0), link(3, 2)],
            vec![link(1, 0)],
            vec![link(1, 0)],
        ]);
        assert_eq!(by_runs, by_slots);
        assert_eq!(by_runs.pattern_count(), 3);
    }

    #[test]
    fn adjacent_equal_runs_are_merged_to_a_canonical_form() {
        let a = Schedule::from_runs(vec![(vec![link(1, 0)], 2), (vec![link(1, 0)], 3)]);
        let b = Schedule::from_runs(vec![(vec![link(1, 0)], 5)]);
        assert_eq!(a, b);
        assert_eq!(a.pattern_count(), 1);
    }

    #[test]
    fn assign_splits_and_remerges_runs() {
        // A run of 5 identical slots; assigning into the middle splits it.
        let mut s = Schedule::from_runs(vec![(vec![link(1, 0)], 5)]);
        s.assign(2, link(3, 2));
        assert_eq!(s.length(), 5);
        assert_eq!(s.pattern_count(), 3);
        assert_eq!(s.slot(1).links(), &[link(1, 0)]);
        assert_eq!(s.slot(2).links(), &[link(1, 0), link(3, 2)]);
        assert_eq!(s.slot(3).links(), &[link(1, 0)]);
        // Filling the rest re-merges into a single run.
        for t in [0, 1, 3, 4] {
            s.assign(t, link(3, 2));
        }
        assert_eq!(s.pattern_count(), 1);
        assert_eq!(s.allocated_to(link(3, 2)), 5);
        // The round-trip through the expanded form is exact.
        assert_eq!(Schedule::from_slots(s.expand()), s);
    }

    #[test]
    fn allocation_counts_track_per_link_slots() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(5, 4)]);
        assert_eq!(s.allocated_to(link(1, 0)), 2);
        assert_eq!(s.allocated_to(link(3, 2)), 1);
        assert_eq!(s.allocated_to(link(9, 8)), 0);
        let counts = s.allocation_counts();
        assert_eq!(counts[&link(1, 0)], 2);
        assert_eq!(counts.len(), 3);
        assert_eq!(s.total_transmissions(), 4);
    }

    #[test]
    fn spatial_reuse_is_average_concurrency() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(5, 4)]);
        assert!((s.spatial_reuse() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trim_empty_slots_removes_only_trailing_empties() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![]);
        s.push_slot(vec![link(3, 2)]);
        s.push_slot(vec![]);
        s.push_slot(vec![]);
        s.trim_empty_slots();
        assert_eq!(s.length(), 3);
        assert!(s.slot(1).is_empty());
    }

    #[test]
    fn participating_nodes_are_sorted_and_unique() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(1, 0)]);
        assert_eq!(
            s.participating_nodes(),
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn display_mentions_every_slot() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(3, 2)]);
        let text = s.to_string();
        assert!(text.contains("2 slots"));
        assert!(text.contains("n1->n0"));
        assert!(text.contains("n3->n2"));
        // Runs display as compact ranges rather than one line per slot.
        let mut heavy = Schedule::new();
        heavy.push_slot_run(vec![link(1, 0)], 1_000_000);
        let text = heavy.to_string();
        assert!(text.contains("1000000 slots"));
        assert!(text.contains("x1000000"));
        assert!(text.lines().count() < 5);
    }

    #[test]
    fn single_channel_patterns_carry_no_channel_tags() {
        // The C = 1 representation is the plain sorted link list: channel-0
        // entries never materialize a tag vector, whichever constructor
        // produced them.
        let by_links = SlotPattern::from_links(vec![link(3, 2), link(1, 0)]);
        let by_entries = SlotPattern::from_entries(vec![
            (ChannelId::ZERO, link(1, 0)),
            (ChannelId::ZERO, link(3, 2)),
        ]);
        assert_eq!(by_links, by_entries);
        assert!(by_links.is_single_channel());
        assert!(by_entries.is_single_channel());
        assert_eq!(by_links.links(), &[link(1, 0), link(3, 2)]);
        assert_eq!(by_links.channel_of(0), ChannelId::ZERO);
        assert_eq!(by_links.channels_used(), 1);
        assert_eq!(by_links.channel_links(ChannelId::ZERO), by_links.links());
        assert!(by_links.channel_links(ch(1)).is_empty());
        assert!(by_links.node_on_multiple_channels().is_none());
    }

    #[test]
    fn channel_annotated_patterns_group_channel_major() {
        let p = SlotPattern::from_entries(vec![
            (ch(1), link(5, 4)),
            (ch(0), link(1, 0)),
            (ch(1), link(7, 6)),
            (ch(0), link(3, 2)),
            (ch(1), link(5, 4)), // duplicate entry is dropped
        ]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_single_channel());
        assert_eq!(p.channels_used(), 2);
        assert_eq!(p.channel_links(ch(0)), &[link(1, 0), link(3, 2)]);
        assert_eq!(p.channel_links(ch(1)), &[link(5, 4), link(7, 6)]);
        assert!(p.channel_links(ch(2)).is_empty());
        let groups: Vec<(ChannelId, &[Link])> = p.channel_groups().collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (ch(0), &[link(1, 0), link(3, 2)][..]));
        assert_eq!(groups[1], (ch(1), &[link(5, 4), link(7, 6)][..]));
        assert!(p.contains(ch(1), link(7, 6)));
        assert!(!p.contains(ch(0), link(7, 6)));
        assert!(p.contains_link(link(7, 6)));
        assert_eq!(
            p.to_string(),
            "n1->n0@ch0, n3->n2@ch0, n5->n4@ch1, n7->n6@ch1"
        );
    }

    #[test]
    fn node_on_multiple_channels_is_detected() {
        let clean = SlotPattern::from_entries(vec![(ch(0), link(1, 0)), (ch(1), link(3, 2))]);
        assert!(clean.node_on_multiple_channels().is_none());
        let conflicted = SlotPattern::from_entries(vec![(ch(0), link(1, 0)), (ch(1), link(2, 1))]);
        assert_eq!(conflicted.node_on_multiple_channels(), Some(NodeId::new(1)));
        // The same node twice on the *same* channel is not a cross-channel
        // conflict (it is an intra-channel half-duplex violation, caught by
        // the per-channel feasibility check instead).
        let same_channel =
            SlotPattern::from_entries(vec![(ch(1), link(1, 0)), (ch(1), link(2, 1))]);
        assert!(same_channel.node_on_multiple_channels().is_none());
    }

    #[test]
    fn multi_channel_runs_roundtrip_and_compare() {
        let p0 = SlotPattern::from_entries(vec![(ch(0), link(1, 0)), (ch(1), link(3, 2))]);
        let mut s = Schedule::new();
        s.push_pattern_run(p0.clone(), 1_000);
        s.push_pattern_run(p0.clone(), 500); // merges with the previous run
        s.push_pattern_run(SlotPattern::from_links(vec![link(1, 0)]), 2);
        assert_eq!(s.length(), 1_502);
        assert_eq!(s.pattern_count(), 2);
        assert_eq!(s.channels_used(), 2);
        assert_eq!(s.allocated_to(link(3, 2)), 1_000 + 500);
        assert_eq!(s.total_transmissions(), 2 * 1_500 + 2);
        assert!(s.contains_on(0, ch(1), link(3, 2)));
        assert!(!s.contains_on(1_501, ch(1), link(3, 2)));
        assert!(s.contains(0, link(3, 2)));
        let rebuilt = Schedule::from_pattern_runs(s.runs().map(|(p, c)| (p.clone(), c)));
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn assign_on_splits_runs_per_channel_entry() {
        let mut s = Schedule::from_runs(vec![(vec![link(1, 0)], 4)]);
        s.assign_on(1, ch(1), link(3, 2));
        assert_eq!(s.length(), 4);
        assert_eq!(s.pattern_count(), 3);
        assert_eq!(
            s.slot(1),
            &SlotPattern::from_entries(vec![(ch(0), link(1, 0)), (ch(1), link(3, 2))])
        );
        assert_eq!(s.slot(2).links(), &[link(1, 0)]);
        // Re-assigning the exact entry is a no-op; assigning it on the other
        // slots re-merges everything into one run.
        s.assign_on(1, ch(1), link(3, 2));
        assert_eq!(s.pattern_count(), 3);
        for t in [0, 2, 3] {
            s.assign_on(t, ch(1), link(3, 2));
        }
        assert_eq!(s.pattern_count(), 1);
        assert_eq!(s.channels_used(), 2);
    }
}
