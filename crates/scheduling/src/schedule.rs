//! The STDMA schedule representation.
//!
//! A schedule is an ordered sequence of slots, each containing the set of
//! links that transmit concurrently in that slot. Both the centralized
//! GreedyPhysical algorithm and the distributed PDD/FDD protocols produce
//! values of this type, which makes cross-checking them (Theorem 4) a simple
//! equality test.
//!
//! # Run-length representation
//!
//! Heavy-demand instances repeat the same slot *pattern* (link set) many
//! times in a row — a link with a million units of leftover demand occupies a
//! million consecutive identical solo slots. Following the multicoloring view
//! of schedules as slot patterns with multiplicities (Vieira et al.,
//! arXiv:1106.1590 / arXiv:1504.01647), `Schedule` stores **maximal runs**
//! `(pattern, multiplicity)` instead of one `Vec<Link>` per slot, so memory
//! and most queries are O(#patterns) rather than O(#slots). The per-slot API
//! (`slot`, `slots`, `assign`, …) is preserved on top of the compact form;
//! consumers that care about heavy demand (the verifier, the metrics, the
//! greedy scheduler) walk [`runs`](Schedule::runs) directly and pay per
//! *distinct* pattern, not per slot.
//!
//! The run list is kept **canonical** — no empty runs, no two adjacent runs
//! with the same pattern, patterns sorted and deduplicated — by every
//! constructor and mutator, so the derived `PartialEq` compares logical slot
//! sequences exactly as the old expanded form did.

use std::collections::HashMap;

use serde::Serialize;

use scream_topology::{Link, NodeId};

/// An STDMA schedule: logically, `slots[t]` is the set of links transmitting
/// in slot `t`; physically, maximal runs of identical consecutive slots are
/// stored once with a multiplicity.
///
/// Deliberately *not* serde-deserializable (same stance as `ProtocolModel`):
/// equality, allocation counts and the run-aware verifier all rely on the
/// canonical-run invariant, and a derived `Deserialize` would construct
/// values that bypass it. Serialize the runs and rebuild with
/// [`Schedule::from_runs`], which re-establishes the invariant.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct Schedule {
    /// Canonical maximal runs: `(pattern, multiplicity)`, multiplicity ≥ 1,
    /// no two adjacent runs share a pattern.
    runs: Vec<(Vec<Link>, u64)>,
    /// Cached total slot count (the sum of multiplicities), kept in sync by
    /// every mutator so `length` is O(1).
    total: u64,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schedule from explicit slots, normalizing the link order
    /// inside every slot (slot contents are sets; order carries no meaning).
    pub fn from_slots(slots: Vec<Vec<Link>>) -> Self {
        Self::from_runs(slots.into_iter().map(|links| (links, 1)))
    }

    /// Creates a schedule from `(pattern, multiplicity)` runs, normalizing
    /// patterns, dropping zero-multiplicity runs and merging adjacent runs
    /// with equal patterns.
    pub fn from_runs(runs: impl IntoIterator<Item = (Vec<Link>, u64)>) -> Self {
        let mut s = Self::new();
        for (links, count) in runs {
            s.push_slot_run(links, count);
        }
        s
    }

    /// Number of slots (the schedule length `T` the paper minimizes).
    pub fn length(&self) -> usize {
        self.total as usize
    }

    /// Number of distinct consecutive slot patterns — the size of the compact
    /// representation, which bounds the cost of run-aware consumers like the
    /// verifier.
    pub fn pattern_count(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` if the schedule has no slots.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The maximal runs `(pattern, multiplicity)` in slot order. Iterating
    /// runs instead of [`slots`](Self::slots) is what makes heavy-demand
    /// schedules cheap to verify and measure.
    pub fn runs(&self) -> impl Iterator<Item = (&[Link], u64)> + '_ {
        self.runs
            .iter()
            .map(|(links, count)| (links.as_slice(), *count))
    }

    /// The links scheduled in slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn slot(&self, t: usize) -> &[Link] {
        self.find_run(t)
            .map(|(run, _)| self.runs[run].0.as_slice())
            .unwrap_or_else(|| panic!("slot {t} out of range (length {})", self.length()))
    }

    /// Iterator over the slots in order. Expands runs — prefer
    /// [`runs`](Self::runs) for heavy-demand schedules.
    pub fn slots(&self) -> impl Iterator<Item = &[Link]> + '_ {
        self.runs
            .iter()
            .flat_map(|(links, count)| std::iter::repeat_n(links.as_slice(), *count as usize))
    }

    /// Expands the schedule into one `Vec<Link>` per slot — the seed's
    /// representation, kept for round-trip tests and per-slot consumers.
    pub fn expand(&self) -> Vec<Vec<Link>> {
        self.slots().map(<[Link]>::to_vec).collect()
    }

    /// Appends a new slot containing the given links and returns its index,
    /// in O(pattern) (the cached length makes the index free).
    pub fn push_slot(&mut self, links: Vec<Link>) -> usize {
        self.push_slot_run(links, 1);
        (self.total - 1) as usize
    }

    /// Appends `count` consecutive slots with the same `links` pattern in
    /// O(pattern) — the run-length fast path the greedy scheduler and the
    /// serialized baseline use for leftover demand. A zero `count` is a
    /// no-op.
    pub fn push_slot_run(&mut self, links: Vec<Link>, count: u64) {
        if count == 0 {
            return;
        }
        let mut links = links;
        links.sort_unstable();
        links.dedup();
        self.total += count;
        match self.runs.last_mut() {
            Some((pattern, multiplicity)) if *pattern == links => *multiplicity += count,
            _ => self.runs.push((links, count)),
        }
    }

    /// Adds `link` to slot `t`, extending the schedule with empty slots if
    /// `t` is beyond the current length. Adding a link twice to the same slot
    /// has no effect.
    ///
    /// Costs O(#patterns): the run containing `t` is split around the
    /// modified slot and the run list re-canonicalized.
    pub fn assign(&mut self, t: usize, link: Link) {
        let length = self.length();
        if t >= length {
            self.push_slot_run(Vec::new(), (t - length + 1) as u64);
        }
        let (run, offset) = self
            .find_run(t)
            .expect("slot t exists after the extension above");
        let (pattern, count) = &self.runs[run];
        if pattern.contains(&link) {
            return;
        }
        let mut with_link = pattern.clone();
        with_link.push(link);
        with_link.sort_unstable();
        let count = *count;
        // Split the run into (before, the modified slot, after) and replace
        // it. The pieces are pairwise distinct (old vs old+link), so the only
        // adjacencies that can need re-merging are the two outer boundaries.
        let (old_pattern, _) = self.runs.remove(run);
        let mut insert = run;
        let mut pieces = 1usize;
        if offset > 0 {
            self.runs
                .insert(insert, (old_pattern.clone(), offset as u64));
            insert += 1;
            pieces += 1;
        }
        self.runs.insert(insert, (with_link, 1));
        let after = count - offset as u64 - 1;
        if after > 0 {
            self.runs.insert(insert + 1, (old_pattern, after));
            pieces += 1;
        }
        // Higher boundary first so the lower merge's index stays valid.
        self.merge_into_predecessor(run + pieces);
        self.merge_into_predecessor(run);
    }

    /// Whether slot `t` already contains `link`.
    pub fn contains(&self, t: usize, link: Link) -> bool {
        self.find_run(t)
            .is_some_and(|(run, _)| self.runs[run].0.contains(&link))
    }

    /// Number of slots allocated to each link across the whole schedule.
    pub fn allocation_counts(&self) -> HashMap<Link, u64> {
        let mut counts = HashMap::new();
        for (pattern, count) in &self.runs {
            for &link in pattern {
                *counts.entry(link).or_insert(0) += count;
            }
        }
        counts
    }

    /// Number of slots in which `link` appears.
    pub fn allocated_to(&self, link: Link) -> u64 {
        self.runs
            .iter()
            .filter(|(pattern, _)| pattern.contains(&link))
            .map(|(_, count)| count)
            .sum()
    }

    /// Total number of (link, slot) transmission opportunities in the
    /// schedule.
    pub fn total_transmissions(&self) -> u64 {
        self.runs
            .iter()
            .map(|(pattern, count)| pattern.len() as u64 * count)
            .sum()
    }

    /// Average number of concurrent links per slot — the spatial-reuse factor
    /// the physical model is supposed to unlock relative to serialized
    /// (one-link-per-slot) scheduling.
    pub fn spatial_reuse(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.total_transmissions() as f64 / self.length() as f64
    }

    /// Removes trailing empty slots (produced by some distributed runs when a
    /// round seals an empty slot at termination).
    pub fn trim_empty_slots(&mut self) {
        while self.runs.last().is_some_and(|(p, _)| p.is_empty()) {
            let (_, count) = self.runs.pop().expect("checked non-empty");
            self.total -= count;
        }
    }

    /// All distinct nodes that appear as an endpoint of any scheduled link.
    pub fn participating_nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .runs
            .iter()
            .flat_map(|(pattern, _)| pattern.iter())
            .flat_map(|l| [l.head, l.tail])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Locates the run containing slot `t`, returning `(run_index, offset)`
    /// where `offset` is `t`'s position inside the run.
    fn find_run(&self, t: usize) -> Option<(usize, usize)> {
        let mut start = 0usize;
        for (i, (_, count)) in self.runs.iter().enumerate() {
            let end = start + *count as usize;
            if t < end {
                return Some((i, t - start));
            }
            start = end;
        }
        None
    }

    /// Merges run `i` into run `i - 1` if their patterns are equal — the O(1)
    /// boundary repair [`assign`](Self::assign) uses after splicing a run.
    fn merge_into_predecessor(&mut self, i: usize) {
        if i == 0 || i >= self.runs.len() || self.runs[i - 1].0 != self.runs[i].0 {
            return;
        }
        let (_, count) = self.runs.remove(i);
        self.runs[i - 1].1 += count;
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "schedule with {} slots:", self.length())?;
        let mut start = 0usize;
        for (pattern, count) in &self.runs {
            let links: Vec<String> = pattern.iter().map(|l| l.to_string()).collect();
            if *count == 1 {
                writeln!(f, "  slot {start:>3}: {}", links.join(", "))?;
            } else {
                writeln!(
                    f,
                    "  slots {start}..={} (x{count}): {}",
                    start + *count as usize - 1,
                    links.join(", ")
                )?;
            }
            start += *count as usize;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn empty_schedule_has_zero_length() {
        let s = Schedule::new();
        assert_eq!(s.length(), 0);
        assert!(s.is_empty());
        assert_eq!(s.spatial_reuse(), 0.0);
        assert!(s.participating_nodes().is_empty());
        assert_eq!(s.pattern_count(), 0);
    }

    #[test]
    fn push_slot_and_assign_agree() {
        let mut a = Schedule::new();
        a.push_slot(vec![link(1, 0), link(3, 2)]);
        a.push_slot(vec![link(5, 4)]);

        let mut b = Schedule::new();
        b.assign(0, link(3, 2));
        b.assign(0, link(1, 0));
        b.assign(1, link(5, 4));

        assert_eq!(a, b);
        assert_eq!(a.length(), 2);
    }

    #[test]
    fn assign_extends_schedule_and_ignores_duplicates() {
        let mut s = Schedule::new();
        s.assign(3, link(1, 0));
        assert_eq!(s.length(), 4);
        assert!(s.slot(0).is_empty());
        s.assign(3, link(1, 0));
        assert_eq!(s.slot(3).len(), 1);
        assert!(s.contains(3, link(1, 0)));
        assert!(!s.contains(0, link(1, 0)));
        assert!(!s.contains(99, link(1, 0)));
    }

    #[test]
    fn from_slots_normalizes_order_and_duplicates() {
        let a = Schedule::from_slots(vec![vec![link(3, 2), link(1, 0), link(1, 0)]]);
        let b = Schedule::from_slots(vec![vec![link(1, 0), link(3, 2)]]);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_consecutive_slots_share_one_run() {
        let mut s = Schedule::new();
        for _ in 0..1000 {
            s.push_slot(vec![link(1, 0)]);
        }
        s.push_slot_run(vec![link(3, 2)], 1_000_000);
        assert_eq!(s.length(), 1_001_000);
        assert_eq!(s.pattern_count(), 2);
        assert_eq!(s.allocated_to(link(3, 2)), 1_000_000);
        assert_eq!(s.total_transmissions(), 1_001_000);
        assert_eq!(s.slot(999), &[link(1, 0)]);
        assert_eq!(s.slot(1000), &[link(3, 2)]);
    }

    #[test]
    fn run_construction_equals_slot_construction() {
        let by_runs = Schedule::from_runs(vec![
            (vec![link(1, 0)], 3),
            (vec![link(3, 2), link(1, 0)], 1),
            (vec![link(1, 0)], 0), // dropped
            (vec![link(1, 0)], 2),
        ]);
        let by_slots = Schedule::from_slots(vec![
            vec![link(1, 0)],
            vec![link(1, 0)],
            vec![link(1, 0)],
            vec![link(1, 0), link(3, 2)],
            vec![link(1, 0)],
            vec![link(1, 0)],
        ]);
        assert_eq!(by_runs, by_slots);
        assert_eq!(by_runs.pattern_count(), 3);
    }

    #[test]
    fn adjacent_equal_runs_are_merged_to_a_canonical_form() {
        let a = Schedule::from_runs(vec![(vec![link(1, 0)], 2), (vec![link(1, 0)], 3)]);
        let b = Schedule::from_runs(vec![(vec![link(1, 0)], 5)]);
        assert_eq!(a, b);
        assert_eq!(a.pattern_count(), 1);
    }

    #[test]
    fn assign_splits_and_remerges_runs() {
        // A run of 5 identical slots; assigning into the middle splits it.
        let mut s = Schedule::from_runs(vec![(vec![link(1, 0)], 5)]);
        s.assign(2, link(3, 2));
        assert_eq!(s.length(), 5);
        assert_eq!(s.pattern_count(), 3);
        assert_eq!(s.slot(1), &[link(1, 0)]);
        assert_eq!(s.slot(2), &[link(1, 0), link(3, 2)]);
        assert_eq!(s.slot(3), &[link(1, 0)]);
        // Filling the rest re-merges into a single run.
        for t in [0, 1, 3, 4] {
            s.assign(t, link(3, 2));
        }
        assert_eq!(s.pattern_count(), 1);
        assert_eq!(s.allocated_to(link(3, 2)), 5);
        // The round-trip through the expanded form is exact.
        assert_eq!(Schedule::from_slots(s.expand()), s);
    }

    #[test]
    fn allocation_counts_track_per_link_slots() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(5, 4)]);
        assert_eq!(s.allocated_to(link(1, 0)), 2);
        assert_eq!(s.allocated_to(link(3, 2)), 1);
        assert_eq!(s.allocated_to(link(9, 8)), 0);
        let counts = s.allocation_counts();
        assert_eq!(counts[&link(1, 0)], 2);
        assert_eq!(counts.len(), 3);
        assert_eq!(s.total_transmissions(), 4);
    }

    #[test]
    fn spatial_reuse_is_average_concurrency() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(5, 4)]);
        assert!((s.spatial_reuse() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trim_empty_slots_removes_only_trailing_empties() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![]);
        s.push_slot(vec![link(3, 2)]);
        s.push_slot(vec![]);
        s.push_slot(vec![]);
        s.trim_empty_slots();
        assert_eq!(s.length(), 3);
        assert!(s.slot(1).is_empty());
    }

    #[test]
    fn participating_nodes_are_sorted_and_unique() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(1, 0)]);
        assert_eq!(
            s.participating_nodes(),
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn display_mentions_every_slot() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(3, 2)]);
        let text = s.to_string();
        assert!(text.contains("2 slots"));
        assert!(text.contains("n1->n0"));
        assert!(text.contains("n3->n2"));
        // Runs display as compact ranges rather than one line per slot.
        let mut heavy = Schedule::new();
        heavy.push_slot_run(vec![link(1, 0)], 1_000_000);
        let text = heavy.to_string();
        assert!(text.contains("1000000 slots"));
        assert!(text.contains("x1000000"));
        assert!(text.lines().count() < 5);
    }
}
