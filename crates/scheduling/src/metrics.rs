//! Schedule-quality metrics.
//!
//! The paper's headline metric (Figures 6 and 7) is the percentage
//! improvement of a schedule's length over the serialized schedule of length
//! `TD`; this module computes it together with a few companion statistics.

use serde::{Deserialize, Serialize};

use scream_topology::LinkDemands;

use crate::schedule::Schedule;

/// Summary statistics of a schedule relative to its demand instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Number of slots in the schedule.
    pub length: usize,
    /// Length of the serialized baseline (`TD`, the total demand).
    pub serialized_length: u64,
    /// Percentage improvement over the serialized schedule:
    /// `100 * (TD - length) / TD`. This is the y-axis of Figures 6 and 7.
    pub improvement_over_linear_pct: f64,
    /// Average number of concurrent links per slot.
    pub spatial_reuse: f64,
    /// Number of distinct consecutive slot patterns in the run-length
    /// representation — the schedule's actual memory footprint, which stays
    /// O(#links) under heavy demand while `length` grows with `TD`.
    pub pattern_count: usize,
    /// Number of distinct orthogonal channels the schedule transmits on
    /// (1 for every single-channel schedule, 0 for an empty one).
    pub channels_used: usize,
}

impl ScheduleMetrics {
    /// Computes the metrics of `schedule` for the demand instance `demands`.
    pub fn compute(schedule: &Schedule, demands: &LinkDemands) -> Self {
        let length = schedule.length();
        let serialized_length = demands.total_demand();
        let improvement = if serialized_length == 0 {
            0.0
        } else {
            100.0 * (serialized_length as f64 - length as f64) / serialized_length as f64
        };
        Self {
            length,
            serialized_length,
            improvement_over_linear_pct: improvement,
            spatial_reuse: schedule.spatial_reuse(),
            pattern_count: schedule.pattern_count(),
            channels_used: schedule.channels_used(),
        }
    }

    /// Ratio of this schedule's length to another's (e.g. distributed vs
    /// centralized), as a percentage. Values above 100 mean `self` is longer.
    ///
    /// A non-empty schedule compared against an empty one is infinitely
    /// longer, not "equal": the ratio is [`f64::INFINITY`] (rendered `inf` by
    /// the standard formatter, which is what sweep CSVs emit). Only
    /// empty-vs-empty reports 100 — two empty schedules are the same length.
    pub fn length_ratio_pct(&self, other: &ScheduleMetrics) -> f64 {
        if other.length == 0 {
            return if self.length == 0 {
                100.0
            } else {
                f64::INFINITY
            };
        }
        100.0 * self.length as f64 / other.length as f64
    }
}

impl std::fmt::Display for ScheduleMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} slots (TD={}, {:.1}% better than serialized, reuse {:.2}, {} pattern(s), {} channel(s))",
            self.length,
            self.serialized_length,
            self.improvement_over_linear_pct,
            self.spatial_reuse,
            self.pattern_count,
            self.channels_used
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::serialized_schedule;
    use scream_topology::{Link, NodeId};

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    fn demands() -> LinkDemands {
        LinkDemands::from_links(6, &[(link(1, 0), 4), (link(3, 2), 4), (link(5, 4), 2)]).unwrap()
    }

    #[test]
    fn serialized_schedule_has_zero_improvement() {
        let d = demands();
        let m = ScheduleMetrics::compute(&serialized_schedule(&d), &d);
        assert_eq!(m.length, 10);
        assert_eq!(m.serialized_length, 10);
        assert_eq!(m.improvement_over_linear_pct, 0.0);
        assert!((m.spatial_reuse - 1.0).abs() < 1e-12);
        assert_eq!(m.channels_used, 1);
    }

    #[test]
    fn halving_the_length_is_fifty_percent_improvement() {
        let d = demands();
        let mut s = Schedule::new();
        // Pack links two per slot where possible: 5 slots for TD=10.
        for _ in 0..2 {
            s.push_slot(vec![link(1, 0), link(3, 2)]);
            s.push_slot(vec![link(1, 0), link(5, 4)]);
        }
        s.push_slot(vec![link(3, 2)]);
        s.push_slot(vec![link(3, 2)]);
        let m = ScheduleMetrics::compute(&s, &d);
        assert_eq!(m.length, 6);
        assert!((m.improvement_over_linear_pct - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_has_zero_metrics() {
        let d = LinkDemands::from_links(2, &[]).unwrap();
        let m = ScheduleMetrics::compute(&Schedule::new(), &d);
        assert_eq!(m.length, 0);
        assert_eq!(m.improvement_over_linear_pct, 0.0);
    }

    #[test]
    fn length_ratio_compares_schedules() {
        let d = demands();
        let serialized = ScheduleMetrics::compute(&serialized_schedule(&d), &d);
        let mut half = Schedule::new();
        for _ in 0..5 {
            half.push_slot(vec![link(1, 0)]);
        }
        let half = ScheduleMetrics::compute(&half, &d);
        assert!((half.length_ratio_pct(&serialized) - 50.0).abs() < 1e-12);
        assert!((serialized.length_ratio_pct(&half) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn display_reports_the_headline_number() {
        let d = demands();
        let m = ScheduleMetrics::compute(&serialized_schedule(&d), &d);
        let text = m.to_string();
        assert!(text.contains("10 slots"));
        assert!(text.contains("0.0%"));
        assert!(text.contains("pattern(s)"), "{text}");
        assert!(text.contains("1 channel(s)"), "{text}");
    }

    #[test]
    fn degenerate_length_ratios_are_infinite_not_equal() {
        let d = demands();
        let empty = ScheduleMetrics::compute(&Schedule::new(), &d);
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        let nonempty = ScheduleMetrics::compute(&s, &d);
        // Non-empty vs empty is infinitely longer, never "equal length".
        assert_eq!(nonempty.length_ratio_pct(&empty), f64::INFINITY);
        // Empty vs empty really is equal length.
        assert_eq!(empty.length_ratio_pct(&empty), 100.0);
        // Empty vs non-empty is 0%, the finite branch.
        assert_eq!(empty.length_ratio_pct(&nonempty), 0.0);
        // The standard formatter renders the degenerate value as `inf`,
        // which is what the sweep CSV relies on.
        assert_eq!(format!("{:.2}", nonempty.length_ratio_pct(&empty)), "inf");
    }
}
