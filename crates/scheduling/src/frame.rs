//! Per-link service structure of a schedule used as a repeating TDMA frame.
//!
//! A schedule of length `F` can be executed cyclically: slot `t` of real time
//! runs pattern `t mod F` of the schedule forever. Under that reading each
//! link's transmission opportunities form a periodic set of slots, and a
//! packet-level simulator (the `scream-traffic` crate) needs exactly two
//! queries about it:
//!
//! * how many slots per frame serve a link (its **service share**, the
//!   capacity against which offered load decides stability), and
//! * given "the link has a packet ready at absolute slot `s`", which is the
//!   **next scheduled slot** `≥ s` (to assign the packet's departure).
//!
//! [`FrameService`] answers both from the schedule's run-length form: it is
//! built by one pass over [`Schedule::runs`] — never the expanded slots, so a
//! million-slot heavy-demand frame costs O(#patterns · links-per-pattern) to
//! index — and `next_service_slot` is a binary search over a link's service
//! *windows* (maximal runs of consecutive scheduled slots), wrapping around
//! the frame boundary in O(1).

use std::collections::HashMap;

use serde::Serialize;

use scream_topology::Link;

use crate::schedule::Schedule;

/// A maximal window of consecutive frame slots in which a link transmits:
/// slots `start .. start + len` (frame-relative), each carrying `capacity`
/// concurrent `(channel, link)` entries for the link (1 for every verifiable
/// schedule; > 1 only for degenerate patterns repeating a link on several
/// channels, which the verifier rejects but the type admits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ServiceWindow {
    /// First frame slot of the window.
    pub start: u64,
    /// Number of consecutive slots in the window.
    pub len: u64,
    /// Packets the link can send per slot of this window.
    pub capacity: u32,
}

impl ServiceWindow {
    /// One past the last frame slot of the window.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// The service windows of one link within the frame.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
struct LinkService {
    /// Maximal windows in increasing `start` order (disjoint by maximality).
    windows: Vec<ServiceWindow>,
    /// Total `(channel, link)` transmission opportunities per frame:
    /// `Σ len · capacity` over the windows.
    service_slots: u64,
}

/// The next transmission opportunity of a link, as reported by
/// [`FrameService::next_service_slot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextService {
    /// Absolute slot index (frames concatenated: slot `s` runs frame slot
    /// `s mod frame_slots`).
    pub slot: u64,
    /// Packets the link can send in that slot.
    pub capacity: u32,
}

/// Per-link service index of a schedule executed as a repeating TDMA frame.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FrameService {
    frame_slots: u64,
    links: Vec<(Link, LinkService)>,
    /// Lookup index into `links`; derivable, and a map with struct keys and
    /// unstable iteration order has no business in a serialized form.
    #[serde(skip)]
    by_link: HashMap<Link, usize>,
}

impl FrameService {
    /// Indexes `schedule` as a repeating frame. One pass over the run-length
    /// representation; cost is independent of the frame's slot count.
    pub fn from_schedule(schedule: &Schedule) -> Self {
        let mut by_link: HashMap<Link, usize> = HashMap::new();
        let mut links: Vec<(Link, LinkService)> = Vec::new();
        let mut start = 0u64;
        let mut occurrences: HashMap<Link, u32> = HashMap::new();
        for (pattern, count) in schedule.runs() {
            let entries = pattern.links();
            // Entries are sorted channel-major, so a link appearing on
            // several channels is not necessarily contiguous; count every
            // occurrence in the pattern up front (removal below makes the
            // main loop emit each link once, at its first occurrence).
            occurrences.clear();
            for &link in entries {
                *occurrences.entry(link).or_insert(0) += 1;
            }
            for &link in entries {
                let Some(capacity) = occurrences.remove(&link) else {
                    continue;
                };
                let idx = *by_link.entry(link).or_insert_with(|| {
                    links.push((link, LinkService::default()));
                    links.len() - 1
                });
                let service = &mut links[idx].1;
                service.service_slots += count * capacity as u64;
                match service.windows.last_mut() {
                    // Extend the previous window when the runs are adjacent
                    // and the per-slot capacity is unchanged (maximality).
                    Some(w) if w.end() == start && w.capacity == capacity => w.len += count,
                    _ => service.windows.push(ServiceWindow {
                        start,
                        len: count,
                        capacity,
                    }),
                }
            }
            start += count;
        }
        Self {
            frame_slots: start,
            links,
            by_link,
        }
    }

    /// Number of slots in one frame repetition (the schedule length).
    pub fn frame_slots(&self) -> u64 {
        self.frame_slots
    }

    /// Whether the frame has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.frame_slots == 0
    }

    /// The links served anywhere in the frame, in first-appearance order.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        self.links.iter().map(|(l, _)| *l)
    }

    /// Number of distinct links served by the frame.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Transmission opportunities per frame for `link` (0 if never served).
    pub fn service_slots(&self, link: Link) -> u64 {
        self.by_link
            .get(&link)
            .map_or(0, |&i| self.links[i].1.service_slots)
    }

    /// Fraction of frame slots serving `link` — the link's packets-per-slot
    /// service capacity, against which offered load decides stability.
    /// Returns 0 for an empty frame.
    pub fn service_share(&self, link: Link) -> f64 {
        if self.frame_slots == 0 {
            return 0.0;
        }
        self.service_slots(link) as f64 / self.frame_slots as f64
    }

    /// The maximal service windows of `link`, frame-relative and in
    /// increasing slot order (empty if the link is never served).
    pub fn windows(&self, link: Link) -> &[ServiceWindow] {
        self.by_link
            .get(&link)
            .map_or(&[], |&i| &self.links[i].1.windows)
    }

    /// The first absolute slot `≥ from` in which `link` transmits, treating
    /// the frame as repeating forever (absolute slot `s` runs frame slot
    /// `s mod frame_slots`). `None` if the link is never served.
    ///
    /// O(log #windows) via binary search, plus O(1) frame wrap-around.
    pub fn next_service_slot(&self, link: Link, from: u64) -> Option<NextService> {
        let windows = self.windows(link);
        let first = windows.first()?;
        let frame = from / self.frame_slots;
        let offset = from % self.frame_slots;
        // First window that ends after the offset, if any, else wrap.
        let i = windows.partition_point(|w| w.end() <= offset);
        match windows.get(i) {
            Some(w) => {
                let slot_in_frame = w.start.max(offset);
                Some(NextService {
                    slot: frame * self.frame_slots + slot_in_frame,
                    capacity: w.capacity,
                })
            }
            None => Some(NextService {
                slot: (frame + 1) * self.frame_slots + first.start,
                capacity: first.capacity,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SlotPattern;
    use scream_netsim::ChannelId;
    use scream_topology::NodeId;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn empty_schedule_serves_nothing() {
        let frame = FrameService::from_schedule(&Schedule::new());
        assert!(frame.is_empty());
        assert_eq!(frame.frame_slots(), 0);
        assert_eq!(frame.link_count(), 0);
        assert_eq!(frame.service_share(link(1, 0)), 0.0);
        assert!(frame.next_service_slot(link(1, 0), 0).is_none());
    }

    #[test]
    fn windows_follow_the_run_structure() {
        // Slots: [a] x3, [a,b] x2, [b] x1  (a = 1->0, b = 3->2).
        let a = link(1, 0);
        let b = link(3, 2);
        let s = Schedule::from_runs(vec![(vec![a], 3), (vec![a, b], 2), (vec![b], 1)]);
        let frame = FrameService::from_schedule(&s);
        assert_eq!(frame.frame_slots(), 6);
        assert_eq!(frame.link_count(), 2);
        // a is served in slots 0..5 — one maximal window despite spanning two
        // runs; b in slots 3..6.
        assert_eq!(
            frame.windows(a),
            &[ServiceWindow {
                start: 0,
                len: 5,
                capacity: 1
            }]
        );
        assert_eq!(
            frame.windows(b),
            &[ServiceWindow {
                start: 3,
                len: 3,
                capacity: 1
            }]
        );
        assert_eq!(frame.service_slots(a), 5);
        assert_eq!(frame.service_share(b), 0.5);
        assert_eq!(frame.service_slots(link(5, 4)), 0);
    }

    #[test]
    fn next_service_slot_searches_and_wraps() {
        // b is served in frame slots 3, 4, 5 of a 6-slot frame.
        let a = link(1, 0);
        let b = link(3, 2);
        let s = Schedule::from_runs(vec![(vec![a], 3), (vec![a, b], 2), (vec![b], 1)]);
        let frame = FrameService::from_schedule(&s);
        let slot = |from| frame.next_service_slot(b, from).unwrap().slot;
        assert_eq!(slot(0), 3);
        assert_eq!(slot(3), 3);
        assert_eq!(slot(5), 5);
        // Past the last window: wrap into the next frame repetition.
        assert_eq!(slot(6), 6 + 3);
        assert_eq!(slot(4 * 6 + 5), 4 * 6 + 5);
        // a's window covers slots 0..5, so from-slot 5 wraps to slot 6.
        assert_eq!(frame.next_service_slot(a, 5).unwrap().slot, 6);
        assert_eq!(frame.next_service_slot(a, 17).unwrap().slot, 18);
    }

    #[test]
    fn heavy_demand_frames_index_in_pattern_time() {
        // A million-slot frame with two patterns: the index must see two
        // windows, not a million slots.
        let a = link(1, 0);
        let b = link(3, 2);
        let mut s = Schedule::new();
        s.push_slot_run(vec![a], 1_000_000);
        s.push_slot_run(vec![b], 500_000);
        let frame = FrameService::from_schedule(&s);
        assert_eq!(frame.frame_slots(), 1_500_000);
        assert_eq!(frame.windows(a).len(), 1);
        assert_eq!(frame.service_slots(a), 1_000_000);
        assert_eq!(
            frame.next_service_slot(b, 0).unwrap().slot,
            1_000_000,
            "b's first opportunity is after a's run"
        );
        assert_eq!(
            frame.next_service_slot(a, 1_200_000).unwrap().slot,
            1_500_000,
            "a wraps to the next frame repetition"
        );
    }

    #[test]
    fn multi_channel_entries_count_as_capacity() {
        // A (degenerate, verifier-rejected) pattern carrying the same link on
        // two channels yields capacity 2; a clean multi-channel pattern
        // serves each link with capacity 1.
        let a = link(1, 0);
        let b = link(3, 2);
        let doubled = SlotPattern::from_entries(vec![
            (ChannelId::new(0), a),
            (ChannelId::new(1), a),
            (ChannelId::new(1), b),
        ]);
        let mut s = Schedule::new();
        s.push_pattern_run(doubled, 4);
        let frame = FrameService::from_schedule(&s);
        assert_eq!(
            frame.windows(a),
            &[ServiceWindow {
                start: 0,
                len: 4,
                capacity: 2
            }]
        );
        assert_eq!(frame.service_slots(a), 8);
        assert_eq!(frame.service_slots(b), 4);
        assert_eq!(frame.next_service_slot(a, 1).unwrap().capacity, 2);
    }

    #[test]
    fn capacity_changes_split_windows() {
        let a = link(1, 0);
        let double =
            SlotPattern::from_entries(vec![(ChannelId::new(0), a), (ChannelId::new(1), a)]);
        let mut s = Schedule::new();
        s.push_slot_run(vec![a], 2);
        s.push_pattern_run(double, 3);
        let frame = FrameService::from_schedule(&s);
        assert_eq!(
            frame.windows(a),
            &[
                ServiceWindow {
                    start: 0,
                    len: 2,
                    capacity: 1
                },
                ServiceWindow {
                    start: 2,
                    len: 3,
                    capacity: 2
                }
            ]
        );
        assert_eq!(frame.service_slots(a), 2 + 6);
    }
}
