//! The serialized ("linear") baseline schedule.
//!
//! Figures 6 and 7 of the paper report schedule quality as the *percentage
//! improvement over the worst-case serialized schedule*: the schedule that
//! satisfies demands by activating exactly one link per slot, whose length is
//! therefore the total traffic demand `TD`. This module builds that baseline.

use scream_topology::LinkDemands;

use crate::schedule::Schedule;

/// Builds the serialized schedule: one slot per unit of demand, one link per
/// slot, links in increasing owner-id order.
///
/// The result trivially satisfies all demands and is feasible under any
/// interference model that accepts single-link slots, and its length equals
/// [`LinkDemands::total_demand`]. Each link's demand is emitted as a single
/// run, so building (and holding) the baseline costs O(#links) however large
/// the demands are.
pub fn serialized_schedule(demands: &LinkDemands) -> Schedule {
    let mut schedule = Schedule::new();
    for (link, demand) in demands.demanded_links() {
        schedule.push_slot_run(vec![link], demand);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_schedule;
    use scream_topology::{Link, NodeId};

    struct AcceptAll;
    impl crate::feasibility::SlotFeasibility for AcceptAll {
        fn slot_feasible(&self, _links: &[Link]) -> bool {
            true
        }
    }

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn length_equals_total_demand() {
        let demands =
            LinkDemands::from_links(5, &[(link(1, 0), 3), (link(3, 2), 2), (link(4, 0), 0)])
                .unwrap();
        let s = serialized_schedule(&demands);
        assert_eq!(s.length() as u64, demands.total_demand());
        assert_eq!(s.length(), 5);
    }

    #[test]
    fn every_slot_holds_exactly_one_link() {
        let demands = LinkDemands::from_links(5, &[(link(1, 0), 3), (link(3, 2), 2)]).unwrap();
        let s = serialized_schedule(&demands);
        assert!(s.runs().all(|(slot, _)| slot.len() == 1));
        assert!((s.spatial_reuse() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serialized_schedule_satisfies_demands() {
        let demands =
            LinkDemands::from_links(6, &[(link(1, 0), 4), (link(3, 2), 1), (link(5, 4), 2)])
                .unwrap();
        let s = serialized_schedule(&demands);
        verify_schedule(&AcceptAll, &s, &demands).unwrap();
    }

    #[test]
    fn empty_demand_gives_empty_schedule() {
        let demands = LinkDemands::from_links(2, &[]).unwrap();
        assert!(serialized_schedule(&demands).is_empty());
    }
}
