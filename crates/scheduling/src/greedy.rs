//! The centralized GreedyPhysical scheduling algorithm.
//!
//! GreedyPhysical is the polynomial-time, approximation-bounded centralized
//! scheduler from the authors' MobiCom 2006 paper \[4\], which this paper
//! uses both as the evaluation baseline ("Centralized" in Figures 6 and 7)
//! and as the reference point of Theorem 4: the FDD protocol recreates the
//! exact schedule GreedyPhysical computes when edges are considered in
//! decreasing order of their head node's id.
//!
//! The algorithm considers edges one at a time in a fixed order; for every
//! unit of demand on the current edge it scans the slots built so far and
//! places the transmission in the first slot that remains feasible with the
//! edge added, appending a fresh slot if none works (first-fit greedy).

use serde::{Deserialize, Serialize};

use scream_topology::{Link, LinkDemands};

use crate::feasibility::{ChannelId, ChannelSlotAccumulator, SlotFeasibility};
use crate::schedule::{Schedule, SlotPattern};

/// Order in which GreedyPhysical considers the edges.
///
/// The approximation bound of \[4\] holds for any initial ordering; the
/// ordering only matters when comparing against a distributed execution
/// (FDD ≡ GreedyPhysical requires decreasing head-id order, Theorem 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EdgeOrdering {
    /// Decreasing id of the edge's head node — the order FDD realizes through
    /// repeated leader election.
    #[default]
    DecreasingHeadId,
    /// Increasing id of the edge's head node.
    IncreasingHeadId,
    /// Decreasing aggregated demand (longest-processing-time-first flavour),
    /// breaking ties by decreasing head id.
    DecreasingDemand,
    /// Increasing aggregated demand, breaking ties by increasing head id.
    IncreasingDemand,
}

impl EdgeOrdering {
    /// Sorts `(link, demand)` pairs according to this ordering.
    pub fn sort(&self, edges: &mut [(Link, u64)]) {
        match self {
            EdgeOrdering::DecreasingHeadId => {
                edges.sort_by_key(|e| std::cmp::Reverse(e.0.head));
            }
            EdgeOrdering::IncreasingHeadId => {
                edges.sort_by_key(|a| a.0.head);
            }
            EdgeOrdering::DecreasingDemand => {
                edges.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.head.cmp(&a.0.head)));
            }
            EdgeOrdering::IncreasingDemand => {
                edges.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.head.cmp(&b.0.head)));
            }
        }
    }
}

/// The centralized greedy first-fit scheduler for the physical interference
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GreedyPhysical {
    ordering: EdgeOrdering,
}

impl GreedyPhysical {
    /// Creates a scheduler with the given edge ordering.
    pub fn new(ordering: EdgeOrdering) -> Self {
        Self { ordering }
    }

    /// The scheduler used as the paper's baseline (decreasing head-id order,
    /// matching FDD).
    pub fn paper_baseline() -> Self {
        Self::new(EdgeOrdering::DecreasingHeadId)
    }

    /// The configured edge ordering.
    pub fn ordering(&self) -> EdgeOrdering {
        self.ordering
    }

    /// Computes a feasible schedule satisfying every link's demand under the
    /// given interference model.
    ///
    /// The returned schedule allocates exactly `demand(e)` slots to every
    /// demanded link `e`, and every slot is feasible under `model` (both
    /// properties are checked by `verify_schedule` in this crate's tests and
    /// the integration tests).
    ///
    /// # Batched placement
    ///
    /// First-fit is executed at the granularity of **runs** of identical slot
    /// patterns rather than individual slots. Slots are mutually independent
    /// — assigning a link to one slot never changes another slot's
    /// feasibility for that link — so two consecutive slots with the same
    /// pattern accept or reject a candidate identically, and a whole run can
    /// be claimed (or skipped) with a *single* feasibility probe. Each link
    /// therefore costs O(#patterns · #channels) probes and leftover demand is
    /// appended as one run, making demand magnitude nearly free: the work and
    /// memory are O(#links · #patterns), independent of how many units each
    /// link demands. The probe itself stays O(k) through the model's stateful
    /// [`ChannelSlotAccumulator`](crate::feasibility::ChannelSlotAccumulator).
    ///
    /// # Channels
    ///
    /// When the model provides several orthogonal channels
    /// ([`SlotFeasibility::channel_count`]), each unit of demand is first-fit
    /// into the cheapest `(slot, channel)` pair — slots scanned in order,
    /// channels scanned in increasing order within each slot — so a link
    /// rejected by a channel's accumulated interference lands on the first
    /// orthogonal channel (of the same slot) that still accepts it, and the
    /// schedule length shrinks roughly by the channel count on
    /// interference-limited instances. The cross-channel half-duplex rule
    /// (one radio per node) is enforced by the accumulator. With one channel
    /// the channel loop degenerates and the decisions are byte-identical to
    /// the single-channel scheduler — the `C = 1` reduction pinned by the
    /// `single_channel_reduction_matches_per_unit` property test.
    ///
    /// Decision-for-decision equivalence with the seed's per-unit first-fit
    /// loop (kept as [`schedule_per_unit`](Self::schedule_per_unit)) is
    /// pinned by the `batched_placement_matches_per_unit` property test for
    /// every [`EdgeOrdering`], and transitively by the FDD ≡ GreedyPhysical
    /// suite (Theorem 4).
    pub fn schedule<M: SlotFeasibility>(&self, model: &M, demands: &LinkDemands) -> Schedule {
        let mut edges: Vec<(Link, u64)> = demands.demanded_links().collect();
        self.ordering.sort(&mut edges);
        let channel_count = model.channel_count().max(1);
        let channels: Vec<ChannelId> = (0..channel_count)
            .map(|c| ChannelId::new(c as u16))
            .collect();

        // Open runs under construction: one accumulator per distinct
        // consecutive pattern, with the number of slots sharing it.
        struct OpenRun<'m> {
            accumulator: Box<dyn ChannelSlotAccumulator + 'm>,
            count: u64,
        }
        /// Rebuilds a fresh accumulator holding `run`'s assignments plus
        /// `(channel, link)` — O(k²), but a split ends the link's scan, so it
        /// happens at most once per link.
        fn augment<'m, M: SlotFeasibility + ?Sized>(
            model: &'m M,
            run: &OpenRun<'m>,
            channel: ChannelId,
            link: Link,
        ) -> Box<dyn ChannelSlotAccumulator + 'm> {
            let mut augmented = model.open_channel_slot();
            for c in 0..run.accumulator.channel_count() {
                let c = ChannelId::new(c as u16);
                for &l in run.accumulator.links(c) {
                    augmented.assign(c, l);
                }
            }
            augmented.assign(channel, link);
            augmented
        }

        let mut runs: Vec<OpenRun<'_>> = Vec::new();
        for (link, demand) in edges {
            let mut remaining = demand;
            let mut idx = 0usize;
            // Per-link probe profile, flushed to the obs sink after the scan
            // (plain u64 locals — free when no sink is installed).
            let mut probed_runs: u64 = 0;
            let mut rejected_runs: u64 = 0;
            let mut first_fit_depth: Option<u64> = None;
            'slots: while remaining > 0 && idx < runs.len() {
                let run = &mut runs[idx];
                if !run.accumulator.contains_link(link) {
                    for &channel in &channels {
                        probed_runs += 1;
                        if !run.accumulator.can_add(channel, link) {
                            rejected_runs += 1;
                            continue;
                        }
                        if first_fit_depth.is_none() {
                            first_fit_depth = Some(idx as u64);
                        }
                        if remaining >= run.count {
                            // The link joins every slot of the run.
                            run.accumulator.assign(channel, link);
                            remaining -= run.count;
                            break;
                        }
                        // The link joins only the first `remaining` slots:
                        // split the run, keeping the augmented part first so
                        // slot order matches the per-unit first-fit exactly.
                        let augmented = augment(model, run, channel, link);
                        run.count -= remaining;
                        runs.insert(
                            idx,
                            OpenRun {
                                accumulator: augmented,
                                count: remaining,
                            },
                        );
                        remaining = 0;
                        scream_obs::counter_add("greedy.splits", 1);
                        break 'slots;
                    }
                }
                idx += 1;
            }
            scream_obs::counter_add("greedy.links", 1);
            scream_obs::counter_add("greedy.runs.probed", probed_runs);
            scream_obs::counter_add("greedy.runs.rejected", rejected_runs);
            if remaining > 0 {
                scream_obs::counter_add("greedy.solo_runs", 1);
            }
            scream_obs::observe(
                "greedy.firstfit.depth",
                first_fit_depth.unwrap_or(runs.len() as u64),
            );
            scream_obs::event(
                "greedy.link",
                &[
                    ("head", link.head.index() as u64),
                    ("tail", link.tail.index() as u64),
                    ("probed", probed_runs),
                    ("rejected", rejected_runs),
                ],
            );
            if remaining > 0 {
                // No existing (slot, channel) pair accepts the leftover
                // demand: append it as one solo run on the first channel. A
                // single link alone is always feasible if the link is usable
                // at all; if even the solo slot is infeasible (link out of
                // range under `model`) we still allocate it so the demand
                // accounting stays consistent — the verifier will flag the
                // infeasibility explicitly.
                // lint:allow(H1.alloc, reason = "one solo-run accumulator per leftover link, not per probe")
                let mut accumulator = model.open_channel_slot();
                accumulator.assign(ChannelId::ZERO, link);
                runs.push(OpenRun {
                    accumulator,
                    count: remaining,
                });
            }
        }
        let schedule = Schedule::from_pattern_runs(runs.into_iter().map(|run| {
            let entries: Vec<(ChannelId, Link)> = channels
                .iter()
                .flat_map(|&c| run.accumulator.links(c).iter().map(move |&l| (c, l)))
                .collect();
            (SlotPattern::from_entries(entries), run.count)
        }));
        scream_obs::gauge_set("greedy.schedule.length", schedule.length() as u64);
        scream_obs::gauge_set("greedy.schedule.patterns", schedule.pattern_count() as u64);
        scream_obs::set_slot(schedule.length() as u64);
        schedule
    }

    /// The seed's per-unit first-fit loop: every unit of demand is placed by
    /// scanning the open slots individually, materializing one slot per unit
    /// — O(total demand) time and memory.
    ///
    /// Kept (like [`FromScratch`](crate::feasibility::FromScratch) for the
    /// ledger) as the pre-batching baseline: the `heavy_demand` bench and the
    /// `bench_summary` binary measure [`schedule`](Self::schedule) against
    /// it, and the equivalence property tests pin that both produce the same
    /// schedule on every instance and ordering.
    // lint:allow(H1.hot, reason = "definition of the per-unit baseline the benches and equivalence properties measure against")
    pub fn schedule_per_unit<M: SlotFeasibility>(
        &self,
        model: &M,
        demands: &LinkDemands,
    ) -> Schedule {
        let mut edges: Vec<(Link, u64)> = demands.demanded_links().collect();
        self.ordering.sort(&mut edges);

        let mut schedule = Schedule::new();
        let mut open_slots = Vec::new();
        for (link, demand) in edges {
            let mut remaining = demand;
            let mut slot = 0usize;
            while remaining > 0 {
                if slot == open_slots.len() {
                    // lint:allow(H1.alloc, reason = "per-unit baseline kept for bench comparison; opens one accumulator per materialized slot")
                    let mut accumulator = model.open_slot();
                    accumulator.assign(link);
                    open_slots.push(accumulator);
                    schedule.push_slot(vec![link]);
                    remaining -= 1;
                    slot += 1;
                    continue;
                }
                let accumulator = &mut open_slots[slot];
                if !accumulator.contains(link) && accumulator.can_add(link) {
                    accumulator.assign(link);
                    schedule.assign(slot, link);
                    remaining -= 1;
                }
                slot += 1;
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::ProtocolModel;
    use crate::verify::verify_schedule;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use scream_netsim::{PropagationModel, RadioEnvironment};
    use scream_topology::{
        DemandConfig, DemandVector, Deployment, GridDeployment, NodeId, RoutingForest,
        UnitDiskGraphBuilder,
    };

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    /// A permissive model that only enforces the shared-endpoint rule —
    /// convenient for exercising the packing logic deterministically.
    struct EndpointOnly;
    impl SlotFeasibility for EndpointOnly {
        fn slot_feasible(&self, links: &[Link]) -> bool {
            for (i, a) in links.iter().enumerate() {
                for b in links.iter().skip(i + 1) {
                    if a.shares_endpoint(b) {
                        return false;
                    }
                }
            }
            true
        }
    }

    fn grid_instance(side: usize, step: f64, seed: u64) -> (RadioEnvironment, LinkDemands) {
        let d: Deployment = GridDeployment::new(side, side, step).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        let gws = d.corner_nodes();
        let forest = RoutingForest::shortest_path(&graph, &gws, seed).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
        let ld = LinkDemands::aggregate(&forest, &demands).unwrap();
        (env, ld)
    }

    #[test]
    fn ordering_sorts_as_documented() {
        let mut edges = vec![(link(2, 0), 5), (link(7, 0), 1), (link(4, 0), 3)];
        EdgeOrdering::DecreasingHeadId.sort(&mut edges);
        assert_eq!(
            edges.iter().map(|e| e.0.head.0).collect::<Vec<_>>(),
            vec![7, 4, 2]
        );
        EdgeOrdering::IncreasingHeadId.sort(&mut edges);
        assert_eq!(
            edges.iter().map(|e| e.0.head.0).collect::<Vec<_>>(),
            vec![2, 4, 7]
        );
        EdgeOrdering::DecreasingDemand.sort(&mut edges);
        assert_eq!(edges.iter().map(|e| e.1).collect::<Vec<_>>(), vec![5, 3, 1]);
        EdgeOrdering::IncreasingDemand.sort(&mut edges);
        assert_eq!(edges.iter().map(|e| e.1).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn single_link_demand_fills_exactly_that_many_slots() {
        let demands = LinkDemands::from_links(3, &[(link(1, 0), 4)]).unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&EndpointOnly, &demands);
        assert_eq!(schedule.length(), 4);
        assert_eq!(schedule.allocated_to(link(1, 0)), 4);
    }

    #[test]
    fn independent_links_share_slots() {
        // Two endpoint-disjoint links with equal demand pack perfectly.
        let demands = LinkDemands::from_links(4, &[(link(1, 0), 3), (link(3, 2), 3)]).unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&EndpointOnly, &demands);
        assert_eq!(schedule.length(), 3);
        assert!((schedule.spatial_reuse() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn conflicting_links_are_serialized() {
        // Links sharing node 1 can never coexist.
        let demands = LinkDemands::from_links(3, &[(link(1, 0), 2), (link(2, 1), 2)]).unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&EndpointOnly, &demands);
        assert_eq!(schedule.length(), 4);
        verify_schedule(&EndpointOnly, &schedule, &demands).unwrap();
    }

    #[test]
    fn schedule_satisfies_demands_and_feasibility_on_grid_instance() {
        let (env, ld) = grid_instance(5, 200.0, 3);
        let schedule = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        verify_schedule(&env, &schedule, &ld).unwrap();
        // The greedy schedule must never be longer than full serialization.
        assert!(schedule.length() <= ld.total_demand() as usize);
        // And with 25 nodes spread over 800x800 m there must be some reuse.
        assert!(schedule.spatial_reuse() > 1.0);
    }

    #[test]
    fn ledger_backed_schedule_equals_from_scratch_schedule() {
        // The incremental accumulator must make the exact same first-fit
        // decisions as the original re-check-everything implementation.
        for seed in [1u64, 3, 9] {
            let (env, ld) = grid_instance(5, 180.0, seed);
            let ledger_backed = GreedyPhysical::paper_baseline().schedule(&env, &ld);
            let from_scratch = GreedyPhysical::paper_baseline()
                .schedule(&crate::feasibility::FromScratch(&env), &ld);
            assert_eq!(ledger_backed, from_scratch, "divergence for seed {seed}");
        }
    }

    #[test]
    fn batched_schedule_equals_per_unit_schedule_for_every_ordering() {
        for seed in [1u64, 4, 9] {
            let (env, ld) = grid_instance(5, 180.0, seed);
            for ordering in [
                EdgeOrdering::DecreasingHeadId,
                EdgeOrdering::IncreasingHeadId,
                EdgeOrdering::DecreasingDemand,
                EdgeOrdering::IncreasingDemand,
            ] {
                let batched = GreedyPhysical::new(ordering).schedule(&env, &ld);
                let per_unit = GreedyPhysical::new(ordering).schedule_per_unit(&env, &ld);
                assert_eq!(
                    batched, per_unit,
                    "batched placement diverged for seed {seed}, ordering {ordering:?}"
                );
            }
        }
    }

    #[test]
    fn heavy_demand_costs_patterns_not_slots() {
        // Two independent links and one conflicting neighbor, all with huge
        // demands: the schedule must be correct (exact allocation counts) and
        // compact (a handful of patterns for millions of slots).
        let demands = LinkDemands::from_links(
            6,
            &[
                (link(1, 0), 1_000_000),
                (link(3, 2), 700_000),
                (link(2, 1), 500_000),
            ],
        )
        .unwrap();
        let schedule =
            GreedyPhysical::new(EdgeOrdering::DecreasingDemand).schedule(&EndpointOnly, &demands);
        assert_eq!(schedule.allocated_to(link(1, 0)), 1_000_000);
        assert_eq!(schedule.allocated_to(link(3, 2)), 700_000);
        assert_eq!(schedule.allocated_to(link(2, 1)), 500_000);
        verify_schedule(&EndpointOnly, &schedule, &demands).unwrap();
        assert!(
            schedule.pattern_count() <= 6,
            "expected O(#links) patterns, got {}",
            schedule.pattern_count()
        );
        // (1,0) ∥ (3,2) pack together; (2,1) conflicts with both.
        assert_eq!(schedule.length(), 1_000_000 + 500_000);
    }

    #[test]
    fn splitting_a_run_preserves_first_fit_order() {
        // Link A demands 5 (one solo run), then B (disjoint) demands 2: B
        // must land in the *first* two of A's five slots, exactly as the
        // per-unit scan would place it.
        let demands = LinkDemands::from_links(4, &[(link(1, 0), 5), (link(3, 2), 2)]).unwrap();
        let schedule =
            GreedyPhysical::new(EdgeOrdering::DecreasingDemand).schedule(&EndpointOnly, &demands);
        assert_eq!(schedule.length(), 5);
        assert_eq!(schedule.slot(0).links(), &[link(1, 0), link(3, 2)]);
        assert_eq!(schedule.slot(1).links(), &[link(1, 0), link(3, 2)]);
        assert_eq!(schedule.slot(2).links(), &[link(1, 0)]);
        assert_eq!(
            schedule,
            GreedyPhysical::new(EdgeOrdering::DecreasingDemand)
                .schedule_per_unit(&EndpointOnly, &demands)
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let (env, ld) = grid_instance(4, 200.0, 9);
        let a = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        let b = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        assert_eq!(a, b);
    }

    #[test]
    fn different_orderings_still_produce_valid_schedules() {
        let (env, ld) = grid_instance(4, 200.0, 5);
        for ordering in [
            EdgeOrdering::DecreasingHeadId,
            EdgeOrdering::IncreasingHeadId,
            EdgeOrdering::DecreasingDemand,
            EdgeOrdering::IncreasingDemand,
        ] {
            let schedule = GreedyPhysical::new(ordering).schedule(&env, &ld);
            verify_schedule(&env, &schedule, &ld)
                .unwrap_or_else(|e| panic!("ordering {ordering:?} produced invalid schedule: {e}"));
        }
    }

    #[test]
    fn protocol_model_schedules_collide_under_sinr_while_physical_ones_do_not() {
        // The paper's argument against protocol-model (CSMA/CA-style)
        // scheduling is not that it always packs worse, but that its notion of
        // "non-conflicting" ignores aggregate interference: schedules it
        // accepts are not actually decodable under the physical model. Here
        // the greedy scheduler is run against both models on the same
        // instance; every slot of the physical-model schedule verifies under
        // SINR, while the protocol-model schedule contains slots that do not.
        let d = GridDeployment::new(6, 6, 150.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        let gws = d.corner_nodes();
        let forest = RoutingForest::shortest_path(&graph, &gws, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
        let ld = LinkDemands::aggregate(&forest, &demands).unwrap();

        let physical = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        verify_schedule(&env, &physical, &ld).unwrap();

        let protocol_model = ProtocolModel::new(UnitDiskGraphBuilder::new(260.0).build(&d), 2);
        let protocol = GreedyPhysical::paper_baseline().schedule(&protocol_model, &ld);
        verify_schedule(&protocol_model, &protocol, &ld).unwrap();
        // Walk runs, not slots: each distinct pattern is SINR-checked once.
        let sinr_violations = protocol
            .runs()
            .filter(|(slot, _)| slot.len() > 1 && !env.slot_feasible(slot.links()))
            .count();
        assert!(
            sinr_violations > 0,
            "expected the protocol-model schedule to contain SINR-infeasible slots"
        );
    }

    #[test]
    fn multi_hop_grid_achieves_substantial_improvement_over_serialized() {
        // On a multi-hop grid with per-node demands, the physical-model
        // greedy must achieve a clearly non-trivial improvement over the
        // serialized schedule (Figure 6 reports tens of percent).
        let d = GridDeployment::new(6, 6, 150.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let graph = env.communication_graph();
        let gws = d.corner_nodes();
        let forest = RoutingForest::shortest_path(&graph, &gws, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
        let ld = LinkDemands::aggregate(&forest, &demands).unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&env, &ld);
        verify_schedule(&env, &schedule, &ld).unwrap();
        let metrics = crate::metrics::ScheduleMetrics::compute(&schedule, &ld);
        assert!(
            metrics.improvement_over_linear_pct > 20.0,
            "expected >20% improvement, got {:.1}%",
            metrics.improvement_over_linear_pct
        );
        assert!(metrics.spatial_reuse > 1.2);
    }

    #[test]
    fn orthogonal_channels_absorb_sinr_conflicts() {
        // Adjacent links on a 200 m line conflict under SINR on one channel;
        // with two channels the same two links share every slot, halving the
        // schedule.
        let d = GridDeployment::new(8, 1, 200.0).build();
        let single = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let dual = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(scream_netsim::RadioConfig::mesh_default().with_channel_count(2))
            .build(&d);
        let demands = LinkDemands::from_links(8, &[(link(0, 1), 6), (link(2, 3), 6)]).unwrap();
        let on_one = GreedyPhysical::paper_baseline().schedule(&single, &demands);
        let on_two = GreedyPhysical::paper_baseline().schedule(&dual, &demands);
        verify_schedule(&single, &on_one, &demands).unwrap();
        verify_schedule(&dual, &on_two, &demands).unwrap();
        assert_eq!(on_one.length(), 12, "conflicting links serialize on C = 1");
        assert_eq!(
            on_two.length(),
            6,
            "orthogonal channels run them side by side"
        );
        assert_eq!(on_two.channels_used(), 2);
        assert!(on_two
            .runs()
            .all(|(p, _)| p.node_on_multiple_channels().is_none()));
    }

    #[test]
    fn channel_aware_schedule_respects_half_duplex_across_channels() {
        // Links sharing node 1 can never coexist, not even on different
        // channels: the cross-channel half-duplex rule keeps them apart and
        // the schedule stays fully serialized.
        let d = GridDeployment::new(8, 1, 200.0).build();
        let dual = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(scream_netsim::RadioConfig::mesh_default().with_channel_count(2))
            .build(&d);
        let demands = LinkDemands::from_links(8, &[(link(0, 1), 2), (link(1, 2), 2)]).unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&dual, &demands);
        verify_schedule(&dual, &schedule, &demands).unwrap();
        assert_eq!(schedule.length(), 4);
        assert!(schedule.slots().all(|slot| slot.len() == 1));
    }

    #[test]
    fn single_channel_environment_reduces_to_the_plain_scheduler() {
        // C = 1 through the channel-aware path must reproduce the per-unit
        // baseline exactly — runs, length, metrics and verifier verdict.
        for seed in [2u64, 6] {
            let (env, ld) = grid_instance(5, 180.0, seed);
            assert_eq!(scream_scheduling_channels(&env), 1);
            let batched = GreedyPhysical::paper_baseline().schedule(&env, &ld);
            let per_unit = GreedyPhysical::paper_baseline().schedule_per_unit(&env, &ld);
            assert_eq!(batched, per_unit);
            assert!(batched.runs().all(|(p, _)| p.is_single_channel()));
        }
    }

    fn scream_scheduling_channels(env: &RadioEnvironment) -> usize {
        SlotFeasibility::channel_count(env)
    }

    #[test]
    fn zero_demand_instance_yields_empty_schedule() {
        let demands = LinkDemands::from_links(3, &[(link(1, 0), 0)]).unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&EndpointOnly, &demands);
        assert!(schedule.is_empty());
    }
}
