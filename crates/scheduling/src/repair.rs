//! Incremental run-level repair of a compact schedule after faults.
//!
//! When links die or demands shift (a rescheduling event), rebuilding the
//! whole frame with [`GreedyPhysical`] pays the full first-fit placement cost
//! for *every* link. Most of that work is wasted: a single link failure
//! leaves the vast majority of runs untouched. [`repair_schedule`] instead
//! patches the existing run-length schedule in three passes —
//!
//! 1. **strip** links that the new demand target no longer schedules (dead
//!    links, rerouted-away links) from every run they appear in; slot
//!    patterns are downward-closed under the physical model, so removing a
//!    transmitter never invalidates a feasible pattern;
//! 2. **trim** surplus allocation of links whose target demand shrank,
//!    splitting tail runs where needed;
//! 3. **place** the deficits — links whose target grew or that are new —
//!    with exactly the batched first-fit probing [`GreedyPhysical`] uses
//!    (whole-run assignment, run splitting via a rebuilt accumulator, solo
//!    runs for the remainder), but probing only the deficit links.
//!
//! The repaired schedule is then probe-verified with
//! [`verify_schedule`](crate::verify::verify_schedule); if verification fails
//! (e.g. the input schedule was stale against a perturbed environment), the
//! repair falls back to a full [`GreedyPhysical`] rebuild. Either way the
//! caller receives a schedule whose allocation exactly matches the target,
//! tagged with which path produced it.

use std::collections::BTreeMap;

use scream_netsim::ChannelId;
use scream_topology::{Link, LinkDemands};

use crate::feasibility::{ChannelSlotAccumulator, SlotFeasibility};
use crate::greedy::{EdgeOrdering, GreedyPhysical};
use crate::schedule::{Schedule, SlotPattern};
use crate::verify::verify_schedule;

/// Which path produced the repaired schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum RepairOutcome {
    /// The existing runs were patched in place and the result verified.
    Incremental,
    /// The incremental patch failed verification; the schedule is a full
    /// [`GreedyPhysical`] rebuild against the target.
    Rebuilt,
}

/// A repaired schedule plus how it was obtained and how much changed.
#[derive(Debug, Clone)]
pub struct RepairedSchedule {
    /// The repaired frame; its allocation equals the target exactly and it
    /// passes [`verify_schedule`](crate::verify::verify_schedule) whenever
    /// the fallback rebuild does.
    pub schedule: Schedule,
    /// Which path produced it.
    pub outcome: RepairOutcome,
    /// Link-slot allocations removed by the strip/trim passes (meaningful
    /// for the incremental path; 0 when rebuilt).
    pub removed_allocation: u64,
    /// Link-slot allocations added by the deficit pass (0 when rebuilt).
    pub added_allocation: u64,
}

/// Repairs `schedule` so its allocation matches `target` exactly, patching
/// runs incrementally and falling back to a full [`GreedyPhysical`] rebuild
/// if the patched frame does not verify under `model`.
///
/// Deterministic: the same `(schedule, target)` pair always produces the
/// same repaired schedule (deficits are placed in the paper's
/// decreasing-head-id order).
pub fn repair_schedule<M: SlotFeasibility>(
    model: &M,
    schedule: &Schedule,
    target: &LinkDemands,
) -> RepairedSchedule {
    // BTreeMap, not HashMap: both trim and deficit passes iterate `want`, so
    // the map order must be the deterministic Link order (D1.iter).
    let want: BTreeMap<Link, u64> = target.demanded_links().collect();

    // Working copy of the run list as raw entry vectors.
    let mut runs: Vec<(Vec<(ChannelId, Link)>, u64)> = schedule
        .runs()
        .map(|(pattern, count)| (pattern.entries().collect(), count))
        .collect();

    // Pass 1: strip links the target no longer schedules.
    let mut removed: u64 = 0;
    for (entries, count) in &mut runs {
        let before = entries.len();
        entries.retain(|(_, link)| want.contains_key(link));
        removed += (before - entries.len()) as u64 * *count;
    }

    // Current allocation after stripping.
    let mut alloc: BTreeMap<Link, u64> = BTreeMap::new();
    for (entries, count) in &runs {
        for &(_, link) in entries {
            *alloc.entry(link).or_insert(0) += *count;
        }
    }

    // Pass 2: trim surplus from the tail, splitting runs where needed.
    // Already in ascending Link order because `want` is a BTreeMap — the
    // order the old explicit sort produced.
    let surplus: Vec<(Link, u64)> = want
        .iter()
        .filter_map(|(&link, &w)| {
            let have = alloc.get(&link).copied().unwrap_or(0);
            (have > w).then(|| (link, have - w))
        })
        .collect();
    for (link, mut excess) in surplus {
        removed += excess;
        let mut idx = runs.len();
        while excess > 0 && idx > 0 {
            idx -= 1;
            let (entries, count) = &runs[idx];
            if !entries.iter().any(|&(_, l)| l == link) {
                continue;
            }
            if *count <= excess {
                excess -= *count;
                runs[idx].0.retain(|&(_, l)| l != link);
            } else {
                // Split: keep `count - excess` slots with the link, then
                // `excess` slots without it, preserving slot order.
                let mut tail = runs[idx].0.clone();
                tail.retain(|&(_, l)| l != link);
                let tail_count = excess;
                runs[idx].1 -= excess;
                runs.insert(idx + 1, (tail, tail_count));
                excess = 0;
            }
        }
    }
    runs.retain(|(entries, _)| !entries.is_empty());

    // Pass 3: place deficits with the batched first-fit probe. Rebuild one
    // accumulator per surviving run (assignment only — no probing), then scan
    // them for each deficit link exactly as `GreedyPhysical::schedule` does.
    struct OpenRun<'m> {
        accumulator: Box<dyn ChannelSlotAccumulator + 'm>,
        count: u64,
    }
    fn rebuild<'m, M: SlotFeasibility + ?Sized>(
        model: &'m M,
        entries: &[(ChannelId, Link)],
    ) -> Box<dyn ChannelSlotAccumulator + 'm> {
        let mut accumulator = model.open_channel_slot();
        for &(channel, link) in entries {
            accumulator.assign(channel, link);
        }
        accumulator
    }

    let mut deficits: Vec<(Link, u64)> = want
        .iter()
        .filter_map(|(&link, &w)| {
            let have = alloc.get(&link).copied().unwrap_or(0);
            (have < w).then(|| (link, w - have))
        })
        .collect();
    EdgeOrdering::DecreasingHeadId.sort(&mut deficits);
    let added: u64 = deficits.iter().map(|&(_, d)| d).sum();

    let channel_count = model.channel_count().max(1);
    let channels: Vec<ChannelId> = (0..channel_count)
        .map(|c| ChannelId::new(c as u16))
        .collect();
    let mut open_runs: Vec<OpenRun<'_>> = runs
        .iter()
        .map(|(entries, count)| OpenRun {
            accumulator: rebuild(model, entries),
            count: *count,
        })
        .collect();
    for (link, demand) in deficits {
        let mut remaining = demand;
        let mut idx = 0usize;
        // Refill probe profile, flushed to the obs sink after the scan.
        let mut probed_runs: u64 = 0;
        let mut rejected_runs: u64 = 0;
        'slots: while remaining > 0 && idx < open_runs.len() {
            let run = &mut open_runs[idx];
            if !run.accumulator.contains_link(link) {
                for &channel in &channels {
                    probed_runs += 1;
                    if !run.accumulator.can_add(channel, link) {
                        rejected_runs += 1;
                        continue;
                    }
                    if remaining >= run.count {
                        run.accumulator.assign(channel, link);
                        remaining -= run.count;
                        break;
                    }
                    // Split the run, augmented part first (first-fit order).
                    // lint:allow(H1.alloc, reason = "a split ends this link's scan, so at most one rebuild per deficit link")
                    let mut augmented = model.open_channel_slot();
                    for c in 0..run.accumulator.channel_count() {
                        let c = ChannelId::new(c as u16);
                        for &l in run.accumulator.links(c) {
                            augmented.assign(c, l);
                        }
                    }
                    augmented.assign(channel, link);
                    run.count -= remaining;
                    open_runs.insert(
                        idx,
                        OpenRun {
                            accumulator: augmented,
                            count: remaining,
                        },
                    );
                    remaining = 0;
                    break 'slots;
                }
            }
            idx += 1;
        }
        scream_obs::counter_add("repair.refill.links", 1);
        scream_obs::counter_add("repair.runs.probed", probed_runs);
        scream_obs::counter_add("repair.runs.rejected", rejected_runs);
        if remaining > 0 {
            scream_obs::counter_add("repair.refill.solo_runs", 1);
            // lint:allow(H1.alloc, reason = "one solo-run accumulator per leftover deficit link, not per probe")
            let mut accumulator = model.open_channel_slot();
            accumulator.assign(ChannelId::ZERO, link);
            open_runs.push(OpenRun {
                accumulator,
                count: remaining,
            });
        }
    }

    let repaired = Schedule::from_pattern_runs(open_runs.into_iter().map(|run| {
        let entries: Vec<(ChannelId, Link)> = channels
            .iter()
            .flat_map(|&c| run.accumulator.links(c).iter().map(move |&l| (c, l)))
            .collect();
        (SlotPattern::from_entries(entries), run.count)
    }));

    scream_obs::counter_add("repair.stripped_allocation", removed);
    scream_obs::counter_add("repair.added_allocation", added);
    scream_obs::event("repair.patch", &[("removed", removed), ("added", added)]);

    if verify_schedule(model, &repaired, target).is_ok() {
        scream_obs::counter_add("repair.outcome.incremental", 1);
        return RepairedSchedule {
            schedule: repaired,
            outcome: RepairOutcome::Incremental,
            removed_allocation: removed,
            added_allocation: added,
        };
    }
    scream_obs::counter_add("repair.outcome.rebuilt", 1);
    RepairedSchedule {
        schedule: GreedyPhysical::paper_baseline().schedule(model, target),
        outcome: RepairOutcome::Rebuilt,
        removed_allocation: 0,
        added_allocation: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scream_topology::NodeId;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    /// Shared-endpoint-only model (as in the greedy tests): deterministic
    /// packing without SINR noise.
    struct EndpointOnly;
    impl SlotFeasibility for EndpointOnly {
        fn slot_feasible(&self, links: &[Link]) -> bool {
            for (i, a) in links.iter().enumerate() {
                for b in links.iter().skip(i + 1) {
                    if a.shares_endpoint(b) {
                        return false;
                    }
                }
            }
            true
        }
    }

    #[test]
    fn stripping_a_dead_link_shrinks_the_frame_and_verifies() {
        // (1,0) and (3,2) pack together; (2,1) conflicts with both.
        let demands =
            LinkDemands::from_links(6, &[(link(1, 0), 10), (link(3, 2), 10), (link(2, 1), 4)])
                .unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&EndpointOnly, &demands);
        assert_eq!(schedule.length(), 14);

        // Link (2,1) dies: the target drops it, nothing else changes.
        let target = LinkDemands::from_links(6, &[(link(1, 0), 10), (link(3, 2), 10)]).unwrap();
        let repaired = repair_schedule(&EndpointOnly, &schedule, &target);
        assert_eq!(repaired.outcome, RepairOutcome::Incremental);
        assert_eq!(repaired.removed_allocation, 4);
        assert_eq!(repaired.added_allocation, 0);
        assert_eq!(repaired.schedule.allocated_to(link(2, 1)), 0);
        assert_eq!(repaired.schedule.length(), 10, "empty tail slots dropped");
        verify_schedule(&EndpointOnly, &repaired.schedule, &target).unwrap();
    }

    #[test]
    fn rerouted_demand_is_trimmed_and_placed_incrementally() {
        let demands = LinkDemands::from_links(6, &[(link(1, 0), 8), (link(3, 2), 5)]).unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&EndpointOnly, &demands);

        // Reroute: (3,2) loses 3 units, (1,0) gains 3, and a new disjoint
        // link (5,4) appears with demand 6.
        let target =
            LinkDemands::from_links(6, &[(link(1, 0), 11), (link(3, 2), 2), (link(5, 4), 6)])
                .unwrap();
        let repaired = repair_schedule(&EndpointOnly, &schedule, &target);
        assert_eq!(repaired.outcome, RepairOutcome::Incremental);
        for (l, d) in target.demanded_links() {
            assert_eq!(repaired.schedule.allocated_to(l), d, "allocation of {l}");
        }
        verify_schedule(&EndpointOnly, &repaired.schedule, &target).unwrap();
        // All three links are pairwise disjoint, so the frame is exactly the
        // longest single demand.
        assert_eq!(repaired.schedule.length(), 11);
    }

    #[test]
    fn an_unverifiable_input_falls_back_to_a_full_rebuild() {
        // Hand-build a frame whose only slot packs two conflicting links —
        // stale state the incremental patch preserves, so verification fails
        // and the repair must fall back to GreedyPhysical.
        let mut stale = Schedule::new();
        stale.push_slot_run(vec![link(1, 0), link(2, 1)], 3);
        let target = LinkDemands::from_links(4, &[(link(1, 0), 3), (link(2, 1), 3)]).unwrap();
        let repaired = repair_schedule(&EndpointOnly, &stale, &target);
        assert_eq!(repaired.outcome, RepairOutcome::Rebuilt);
        verify_schedule(&EndpointOnly, &repaired.schedule, &target).unwrap();
        assert_eq!(repaired.schedule.length(), 6, "conflicts serialized");
    }

    #[test]
    fn repair_is_deterministic() {
        let demands =
            LinkDemands::from_links(8, &[(link(1, 0), 7), (link(3, 2), 4), (link(5, 4), 9)])
                .unwrap();
        let schedule = GreedyPhysical::paper_baseline().schedule(&EndpointOnly, &demands);
        let target =
            LinkDemands::from_links(8, &[(link(1, 0), 2), (link(5, 4), 12), (link(7, 6), 3)])
                .unwrap();
        let a = repair_schedule(&EndpointOnly, &schedule, &target);
        let b = repair_schedule(&EndpointOnly, &schedule, &target);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.outcome, b.outcome);
    }
}
