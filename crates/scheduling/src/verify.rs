//! Schedule verification: demand satisfaction and per-slot feasibility.
//!
//! Both the centralized and distributed schedulers are validated against this
//! single verifier, which re-checks every slot against the interference model
//! and every link against its demand. The distributed protocols never get to
//! "grade their own homework".

use scream_topology::{Link, LinkDemands};

use crate::feasibility::SlotFeasibility;
use crate::schedule::Schedule;

/// Ways a schedule can fail verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// A slot's link set is not feasible under the interference model.
    InfeasibleSlot {
        /// Index of the offending slot.
        slot: usize,
        /// The links scheduled in that slot.
        links: Vec<Link>,
    },
    /// A link received a different number of slots than its demand.
    DemandMismatch {
        /// The link in question.
        link: Link,
        /// Slots the schedule allocated to it.
        allocated: u64,
        /// Slots its demand requires.
        required: u64,
    },
    /// A link appears in the schedule but is not part of the demanded set.
    UnknownLink {
        /// The offending link.
        link: Link,
        /// The slot it first appears in.
        slot: usize,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::InfeasibleSlot { slot, links } => {
                let links: Vec<String> = links.iter().map(|l| l.to_string()).collect();
                write!(f, "slot {slot} is infeasible: [{}]", links.join(", "))
            }
            ScheduleViolation::DemandMismatch {
                link,
                allocated,
                required,
            } => write!(
                f,
                "link {link} allocated {allocated} slot(s) but its demand is {required}"
            ),
            ScheduleViolation::UnknownLink { link, slot } => {
                write!(f, "link {link} (first seen in slot {slot}) is not a demanded link")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// Verifies that `schedule` satisfies `demands` exactly and that every slot
/// is feasible under `model`.
///
/// # Errors
///
/// Returns the first violation found, checking slots in order and then
/// demands in link order.
pub fn verify_schedule<M: SlotFeasibility>(
    model: &M,
    schedule: &Schedule,
    demands: &LinkDemands,
) -> Result<(), ScheduleViolation> {
    // Every scheduled link must be a demanded link.
    for (t, slot) in schedule.slots().enumerate() {
        for &l in slot {
            if demands.demand_of_link(l).is_none() {
                return Err(ScheduleViolation::UnknownLink { link: l, slot: t });
            }
        }
    }
    // Every slot must be feasible.
    for (t, slot) in schedule.slots().enumerate() {
        if !slot.is_empty() && !model.slot_feasible(slot) {
            return Err(ScheduleViolation::InfeasibleSlot {
                slot: t,
                links: slot.to_vec(),
            });
        }
    }
    // Every demanded link must get exactly its demand.
    for (link, required) in demands.demanded_links() {
        let allocated = schedule.allocated_to(link);
        if allocated != required {
            return Err(ScheduleViolation::DemandMismatch {
                link,
                allocated,
                required,
            });
        }
    }
    Ok(())
}

/// Verifies only the feasibility of every slot, ignoring demands. Useful for
/// partially built schedules (e.g. inspecting a distributed run mid-flight).
pub fn verify_slots_feasible<M: SlotFeasibility>(
    model: &M,
    schedule: &Schedule,
) -> Result<(), ScheduleViolation> {
    for (t, slot) in schedule.slots().enumerate() {
        if !slot.is_empty() && !model.slot_feasible(slot) {
            return Err(ScheduleViolation::InfeasibleSlot {
                slot: t,
                links: slot.to_vec(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scream_topology::NodeId;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    /// Model that only rejects shared endpoints.
    struct EndpointOnly;
    impl SlotFeasibility for EndpointOnly {
        fn slot_feasible(&self, links: &[Link]) -> bool {
            for (i, a) in links.iter().enumerate() {
                for b in links.iter().skip(i + 1) {
                    if a.shares_endpoint(b) {
                        return false;
                    }
                }
            }
            true
        }
    }

    fn demands() -> LinkDemands {
        LinkDemands::from_links(6, &[(link(1, 0), 2), (link(3, 2), 1)]).unwrap()
    }

    #[test]
    fn valid_schedule_passes() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(1, 0)]);
        verify_schedule(&EndpointOnly, &s, &demands()).unwrap();
        verify_slots_feasible(&EndpointOnly, &s).unwrap();
    }

    #[test]
    fn underallocation_is_reported() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        let err = verify_schedule(&EndpointOnly, &s, &demands()).unwrap_err();
        assert_eq!(
            err,
            ScheduleViolation::DemandMismatch {
                link: link(1, 0),
                allocated: 1,
                required: 2
            }
        );
        assert!(err.to_string().contains("n1->n0"));
    }

    #[test]
    fn overallocation_is_reported() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        let err = verify_schedule(&EndpointOnly, &s, &demands()).unwrap_err();
        assert!(matches!(err, ScheduleViolation::DemandMismatch { allocated: 3, .. }));
    }

    #[test]
    fn infeasible_slot_is_reported_with_its_contents() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(2, 1)]);
        let err = verify_slots_feasible(&EndpointOnly, &s).unwrap_err();
        match err {
            ScheduleViolation::InfeasibleSlot { slot, links } => {
                assert_eq!(slot, 0);
                assert_eq!(links.len(), 2);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn unknown_link_is_reported() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(5, 4)]);
        let err = verify_schedule(&EndpointOnly, &s, &demands()).unwrap_err();
        assert!(matches!(err, ScheduleViolation::UnknownLink { .. }));
        assert!(err.to_string().contains("n5->n4"));
    }

    #[test]
    fn empty_slots_are_tolerated_by_feasibility_check() {
        let s = Schedule::from_slots(vec![vec![], vec![link(1, 0)], vec![], vec![link(1, 0)], vec![link(3, 2)]]);
        verify_schedule(&EndpointOnly, &s, &demands()).unwrap();
    }

    #[test]
    fn violations_implement_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&ScheduleViolation::UnknownLink {
            link: link(1, 0),
            slot: 0,
        });
    }
}
