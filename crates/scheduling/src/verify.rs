//! Schedule verification: demand satisfaction and per-slot feasibility.
//!
//! Both the centralized and distributed schedulers are validated against this
//! single verifier, which re-checks every slot against the interference model
//! and every link against its demand. The distributed protocols never get to
//! "grade their own homework".
//!
//! Slots are re-built link by link through the model's stateful
//! [`SlotAccumulator`](crate::feasibility::SlotAccumulator), so verification
//! of a slot with `k` links costs O(k²) additions under the physical model
//! (k probes of O(k) each) with no intermediate `Vec` cloning, and an
//! infeasible slot is reported together with every link's SINR margin so the
//! failing handshake direction is visible in the error itself.
//!
//! Verification walks the schedule's run-length form
//! ([`Schedule::runs`]): every distinct consecutive slot pattern is checked
//! **once** regardless of its multiplicity, and a single accumulator is
//! [`clear`](crate::feasibility::SlotAccumulator::clear)ed and refilled
//! across patterns instead of being reallocated per slot — verifying a
//! million-slot heavy-demand schedule costs O(#patterns · k²), not
//! O(#slots · k²).
//!
//! Channel-annotated patterns are verified per channel: orthogonal channels
//! do not interfere, so each channel's link group must be feasible on its
//! own, the channel ids must be within the model's
//! [`channel_count`](crate::feasibility::SlotFeasibility::channel_count),
//! and — because every node has a single radio — no node may appear in links
//! of two different channels of the same slot (the **cross-channel
//! half-duplex rule**, [`ScheduleViolation::CrossChannelConflict`]).

use scream_topology::{Link, LinkDemands, NodeId};

use crate::feasibility::{ChannelId, LinkSinrMargin, SlotFeasibility};
use crate::schedule::Schedule;

/// Ways a schedule can fail verification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// One channel of a slot schedules a link set that is not feasible under
    /// the interference model.
    InfeasibleSlot {
        /// Index of the offending slot.
        slot: usize,
        /// The channel whose link group fails (always channel 0 for
        /// single-channel schedules).
        channel: ChannelId,
        /// The links scheduled on that channel in that slot.
        links: Vec<Link>,
        /// Per-link SINR margins relative to the model's threshold, when the
        /// model can report them (empty for graph-based models). Negative
        /// margins identify the failing links and directions.
        margins: Vec<LinkSinrMargin>,
    },
    /// A node appears in links of two different channels of the same slot —
    /// impossible with one radio per node, however clean each channel's SINR
    /// is.
    CrossChannelConflict {
        /// Index of the offending slot.
        slot: usize,
        /// The node scheduled on two channels at once.
        node: NodeId,
    },
    /// A slot uses a channel id outside the model's channel range.
    ChannelOutOfRange {
        /// Index of the offending slot.
        slot: usize,
        /// The out-of-range channel.
        channel: ChannelId,
        /// The model's channel count.
        channel_count: usize,
    },
    /// A link received a different number of slots than its demand.
    DemandMismatch {
        /// The link in question.
        link: Link,
        /// Slots the schedule allocated to it.
        allocated: u64,
        /// Slots its demand requires.
        required: u64,
    },
    /// A link appears in the schedule but is not part of the demanded set.
    UnknownLink {
        /// The offending link.
        link: Link,
        /// The slot it first appears in.
        slot: usize,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::InfeasibleSlot {
                slot,
                channel,
                links,
                margins,
            } => {
                let links: Vec<String> = links.iter().map(|l| l.to_string()).collect();
                write!(f, "slot {slot} is infeasible: [{}]", links.join(", "))?;
                if *channel != ChannelId::ZERO {
                    write!(f, " on {channel}")?;
                }
                let failing: Vec<String> = margins
                    .iter()
                    .filter(|m| !m.ok())
                    .map(|m| m.to_string())
                    .collect();
                if !failing.is_empty() {
                    write!(f, "; failing SINR margins: {}", failing.join("; "))?;
                }
                Ok(())
            }
            ScheduleViolation::CrossChannelConflict { slot, node } => write!(
                f,
                "slot {slot} schedules node {node} on two different channels (one radio per node)"
            ),
            ScheduleViolation::ChannelOutOfRange {
                slot,
                channel,
                channel_count,
            } => write!(
                f,
                "slot {slot} uses {channel} but the model provides only {channel_count} channel(s)"
            ),
            ScheduleViolation::DemandMismatch {
                link,
                allocated,
                required,
            } => write!(
                f,
                "link {link} allocated {allocated} slot(s) but its demand is {required}"
            ),
            ScheduleViolation::UnknownLink { link, slot } => {
                write!(
                    f,
                    "link {link} (first seen in slot {slot}) is not a demanded link"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// Re-checks one slot pattern through a reused accumulator, returning the
/// violation (with margins) if the pattern is infeasible. `index` is the
/// first slot the pattern occupies.
///
/// Building incrementally is equivalent to checking the whole set because
/// interference models are downward-closed — see the
/// [`feasibility`](crate::feasibility) module docs.
fn check_slot<M: SlotFeasibility>(
    model: &M,
    accumulator: &mut (impl crate::feasibility::SlotAccumulator + ?Sized),
    index: usize,
    channel: ChannelId,
    links: &[Link],
) -> Result<(), ScheduleViolation> {
    accumulator.clear();
    for &link in links {
        if !accumulator.can_add(link) {
            return Err(ScheduleViolation::InfeasibleSlot {
                slot: index,
                channel,
                links: links.to_vec(),
                margins: model.slot_margins(links),
            });
        }
        accumulator.assign(link);
    }
    Ok(())
}

/// Verifies that `schedule` satisfies `demands` exactly and that every slot
/// is feasible under `model`.
///
/// # Errors
///
/// Returns the first violation found, checking slots in order and then
/// demands in link order.
pub fn verify_schedule<M: SlotFeasibility>(
    model: &M,
    schedule: &Schedule,
    demands: &LinkDemands,
) -> Result<(), ScheduleViolation> {
    // Every scheduled link must be a demanded link (checked per pattern; the
    // reported slot is the first one the pattern occupies).
    let mut t = 0usize;
    for (pattern, count) in schedule.runs() {
        for &l in pattern.links() {
            if demands.demand_of_link(l).is_none() {
                return Err(ScheduleViolation::UnknownLink { link: l, slot: t });
            }
        }
        t += count as usize;
    }
    // Every slot must be feasible.
    verify_slots_feasible(model, schedule)?;
    // Every demanded link must get exactly its demand.
    for (link, required) in demands.demanded_links() {
        let allocated = schedule.allocated_to(link);
        if allocated != required {
            return Err(ScheduleViolation::DemandMismatch {
                link,
                allocated,
                required,
            });
        }
    }
    Ok(())
}

/// Verifies only the feasibility of every slot, ignoring demands. Useful for
/// partially built schedules (e.g. inspecting a distributed run mid-flight).
///
/// Channel-annotated slots are checked per channel (orthogonal channels do
/// not interfere) through one reused accumulator, after validating the
/// channel ids against the model's channel count and the cross-channel
/// half-duplex rule: a node with its single radio may not appear in links of
/// two different channels of the same slot.
pub fn verify_slots_feasible<M: SlotFeasibility>(
    model: &M,
    schedule: &Schedule,
) -> Result<(), ScheduleViolation> {
    let channel_count = model.channel_count().max(1);
    let mut accumulator = model.open_slot();
    let mut t = 0usize;
    for (pattern, count) in schedule.runs() {
        if let Some(channel) = pattern
            .channel_groups()
            .map(|(c, _)| c)
            .find(|c| c.index() >= channel_count)
        {
            return Err(ScheduleViolation::ChannelOutOfRange {
                slot: t,
                channel,
                channel_count,
            });
        }
        if let Some(node) = pattern.node_on_multiple_channels() {
            return Err(ScheduleViolation::CrossChannelConflict { slot: t, node });
        }
        for (channel, links) in pattern.channel_groups() {
            check_slot(model, accumulator.as_mut(), t, channel, links)?;
        }
        t += count as usize;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SlotPattern;
    use scream_netsim::{PropagationModel, RadioConfig, RadioEnvironment};
    use scream_topology::{GridDeployment, NodeId};

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    fn ch(c: u16) -> ChannelId {
        ChannelId::new(c)
    }

    /// Model that only rejects shared endpoints.
    struct EndpointOnly;
    impl SlotFeasibility for EndpointOnly {
        fn slot_feasible(&self, links: &[Link]) -> bool {
            for (i, a) in links.iter().enumerate() {
                for b in links.iter().skip(i + 1) {
                    if a.shares_endpoint(b) {
                        return false;
                    }
                }
            }
            true
        }
    }

    fn demands() -> LinkDemands {
        LinkDemands::from_links(6, &[(link(1, 0), 2), (link(3, 2), 1)]).unwrap()
    }

    #[test]
    fn valid_schedule_passes() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        s.push_slot(vec![link(1, 0)]);
        verify_schedule(&EndpointOnly, &s, &demands()).unwrap();
        verify_slots_feasible(&EndpointOnly, &s).unwrap();
    }

    #[test]
    fn underallocation_is_reported() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        let err = verify_schedule(&EndpointOnly, &s, &demands()).unwrap_err();
        assert_eq!(
            err,
            ScheduleViolation::DemandMismatch {
                link: link(1, 0),
                allocated: 1,
                required: 2
            }
        );
        assert!(err.to_string().contains("n1->n0"));
    }

    #[test]
    fn overallocation_is_reported() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(1, 0)]);
        s.push_slot(vec![link(1, 0), link(3, 2)]);
        let err = verify_schedule(&EndpointOnly, &s, &demands()).unwrap_err();
        assert!(matches!(
            err,
            ScheduleViolation::DemandMismatch { allocated: 3, .. }
        ));
    }

    #[test]
    fn infeasible_slot_is_reported_with_its_contents() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(1, 0), link(2, 1)]);
        let err = verify_slots_feasible(&EndpointOnly, &s).unwrap_err();
        match err {
            ScheduleViolation::InfeasibleSlot {
                slot,
                channel,
                links,
                margins,
            } => {
                assert_eq!(slot, 0);
                assert_eq!(channel, ChannelId::ZERO);
                assert_eq!(links.len(), 2);
                // EndpointOnly has no SINR notion, so no margins.
                assert!(margins.is_empty());
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn physical_model_violations_carry_sinr_margins() {
        // Adjacent links on a 200 m line: the slot fails under SINR, and the
        // error must identify the failing links by negative margins.
        let d = GridDeployment::new(8, 1, 200.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let mut s = Schedule::new();
        s.push_slot(vec![link(0, 1), link(2, 3)]);
        let err = verify_slots_feasible(&env, &s).unwrap_err();
        match err {
            ScheduleViolation::InfeasibleSlot {
                slot,
                links,
                margins,
                ..
            } => {
                assert_eq!(slot, 0);
                assert_eq!(links.len(), 2);
                assert_eq!(margins.len(), 2);
                assert!(
                    margins.iter().any(|m| !m.ok()),
                    "at least one link must report a negative margin: {margins:?}"
                );
            }
            other => panic!("unexpected violation {other:?}"),
        }
        // The rendered message names the failing margins.
        let text = verify_slots_feasible(&env, &s).unwrap_err().to_string();
        assert!(text.contains("failing SINR margins"), "{text}");
        assert!(text.contains("dB"), "{text}");
    }

    #[test]
    fn unknown_link_is_reported() {
        let mut s = Schedule::new();
        s.push_slot(vec![link(5, 4)]);
        let err = verify_schedule(&EndpointOnly, &s, &demands()).unwrap_err();
        assert!(matches!(err, ScheduleViolation::UnknownLink { .. }));
        assert!(err.to_string().contains("n5->n4"));
    }

    #[test]
    fn empty_slots_are_tolerated_by_feasibility_check() {
        let s = Schedule::from_slots(vec![
            vec![],
            vec![link(1, 0)],
            vec![],
            vec![link(1, 0)],
            vec![link(3, 2)],
        ]);
        verify_schedule(&EndpointOnly, &s, &demands()).unwrap();
    }

    #[test]
    fn heavy_runs_are_verified_once_per_pattern() {
        // A counting model proves the verifier pays per distinct pattern, not
        // per slot: a million-slot schedule with two patterns costs a handful
        // of probes and returns instantly.
        struct Counting(std::cell::Cell<u64>);
        impl SlotFeasibility for Counting {
            fn slot_feasible(&self, links: &[Link]) -> bool {
                self.0.set(self.0.get() + 1);
                EndpointOnly.slot_feasible(links)
            }
        }
        let demands =
            LinkDemands::from_links(6, &[(link(1, 0), 1_000_000), (link(3, 2), 999_990)]).unwrap();
        let mut s = Schedule::new();
        s.push_slot_run(vec![link(1, 0), link(3, 2)], 999_990);
        s.push_slot_run(vec![link(1, 0)], 10);
        let model = Counting(std::cell::Cell::new(0));
        verify_schedule(&model, &s, &demands).unwrap();
        assert!(
            model.0.get() <= 8,
            "expected O(#patterns) probes, got {}",
            model.0.get()
        );
    }

    #[test]
    fn infeasible_run_reports_its_first_slot_index() {
        let mut s = Schedule::new();
        s.push_slot_run(vec![link(1, 0)], 10);
        s.push_slot_run(vec![link(1, 0), link(2, 1)], 5);
        let err = verify_slots_feasible(&EndpointOnly, &s).unwrap_err();
        match err {
            ScheduleViolation::InfeasibleSlot { slot, links, .. } => {
                assert_eq!(slot, 10, "first slot of the offending run");
                assert_eq!(links.len(), 2);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn multi_channel_slots_are_checked_per_channel() {
        // Adjacent links on a 200 m line: SINR-infeasible on a shared channel
        // but fine on orthogonal channels of the same slot.
        let d = GridDeployment::new(8, 1, 200.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(RadioConfig::mesh_default().with_channel_count(2))
            .build(&d);
        let split = Schedule::from_pattern_runs(vec![(
            SlotPattern::from_entries(vec![(ch(0), link(0, 1)), (ch(1), link(2, 3))]),
            3,
        )]);
        verify_slots_feasible(&env, &split).unwrap();
        let same_channel = Schedule::from_pattern_runs(vec![(
            SlotPattern::from_entries(vec![(ch(1), link(0, 1)), (ch(1), link(2, 3))]),
            1,
        )]);
        let err = verify_slots_feasible(&env, &same_channel).unwrap_err();
        match err {
            ScheduleViolation::InfeasibleSlot { channel, .. } => assert_eq!(channel, ch(1)),
            other => panic!("unexpected violation {other:?}"),
        }
        let text = verify_slots_feasible(&env, &same_channel)
            .unwrap_err()
            .to_string();
        assert!(text.contains("ch1"), "{text}");
    }

    #[test]
    fn node_on_two_channels_of_one_slot_is_rejected() {
        // The cross-channel half-duplex rule: node 1 is an endpoint on both
        // channels, which a single radio cannot serve — even though each
        // channel's SINR is clean on its own.
        let d = GridDeployment::new(8, 1, 200.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(RadioConfig::mesh_default().with_channel_count(2))
            .build(&d);
        let s = Schedule::from_pattern_runs(vec![(
            SlotPattern::from_entries(vec![(ch(0), link(0, 1)), (ch(1), link(1, 2))]),
            1,
        )]);
        assert!(env.slot_feasible(&[link(0, 1)]));
        assert!(env.slot_feasible(&[link(1, 2)]));
        let err = verify_slots_feasible(&env, &s).unwrap_err();
        assert_eq!(
            err,
            ScheduleViolation::CrossChannelConflict {
                slot: 0,
                node: NodeId::new(1)
            }
        );
        assert!(err.to_string().contains("two different channels"));
    }

    #[test]
    fn channels_beyond_the_model_range_are_rejected() {
        // EndpointOnly is a single-channel model; a pattern on ch1 is out of
        // range however feasible its links are.
        let s = Schedule::from_pattern_runs(vec![(
            SlotPattern::from_entries(vec![(ch(1), link(1, 0))]),
            1,
        )]);
        let err = verify_slots_feasible(&EndpointOnly, &s).unwrap_err();
        assert_eq!(
            err,
            ScheduleViolation::ChannelOutOfRange {
                slot: 0,
                channel: ch(1),
                channel_count: 1
            }
        );
        assert!(err.to_string().contains("only 1 channel"));
    }

    #[test]
    fn violations_implement_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&ScheduleViolation::UnknownLink {
            link: link(1, 0),
            slot: 0,
        });
    }
}
