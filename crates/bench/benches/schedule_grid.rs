//! Criterion bench for the Figure 6 pipeline (planned grid): centralized
//! GreedyPhysical, FDD and PDD on a reduced grid instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_bench::PaperScenario;
use scream_core::ProtocolKind;

fn bench_schedule_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_grid_schedule");
    group.sample_size(10);
    for density in [2_000.0f64, 10_000.0] {
        let instance = PaperScenario::grid(density).with_node_count(36).instantiate(1);
        group.bench_with_input(
            BenchmarkId::new("centralized", density as u64),
            &instance,
            |b, inst| b.iter(|| inst.run_centralized()),
        );
        group.bench_with_input(
            BenchmarkId::new("fdd", density as u64),
            &instance,
            |b, inst| b.iter(|| inst.run_protocol(ProtocolKind::Fdd)),
        );
        group.bench_with_input(
            BenchmarkId::new("pdd_0.6", density as u64),
            &instance,
            |b, inst| b.iter(|| inst.run_protocol(ProtocolKind::pdd(0.6))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_grid);
criterion_main!(benches);
