//! Criterion bench for the Figure 6 pipeline (planned grid): centralized
//! GreedyPhysical, FDD and PDD on a reduced grid instance.
//!
//! `centralized` runs through the interference-ledger accumulator;
//! `centralized_from_scratch` pins the pre-ledger implementation (every
//! probe re-checks the whole slot) on the same instance, so the end-to-end
//! speedup of the ledger refactor is visible directly in this bench's
//! output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_bench::PaperScenario;
use scream_core::ProtocolKind;
use scream_scheduling::{FromScratch, GreedyPhysical};

fn bench_schedule_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_grid_schedule");
    group.sample_size(10);
    for density in [2_000.0f64, 10_000.0] {
        let instance = PaperScenario::grid(density)
            .with_node_count(36)
            .instantiate(1);
        group.bench_with_input(
            BenchmarkId::new("centralized", density as u64),
            &instance,
            |b, inst| b.iter(|| inst.run_centralized()),
        );
        group.bench_with_input(
            BenchmarkId::new("centralized_from_scratch", density as u64),
            &instance,
            |b, inst| {
                let model = FromScratch(&inst.env);
                b.iter(|| GreedyPhysical::paper_baseline().schedule(&model, &inst.link_demands))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fdd", density as u64),
            &instance,
            |b, inst| b.iter(|| inst.run_protocol(ProtocolKind::Fdd)),
        );
        group.bench_with_input(
            BenchmarkId::new("pdd_0.6", density as u64),
            &instance,
            |b, inst| b.iter(|| inst.run_protocol(ProtocolKind::pdd_unchecked(0.6))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_grid);
criterion_main!(benches);
