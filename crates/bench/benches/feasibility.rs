//! Criterion bench for the interference ledger: from-scratch vs incremental
//! slot-feasibility at slot sizes 4 / 16 / 64, plus the cost of building a
//! whole slot each way.
//!
//! `from_scratch_can_add` clones the slot and recomputes every receiver's
//! SINR (O(k²) per probe, the pre-ledger implementation, kept as
//! `RadioEnvironment::can_add_to_slot`); `ledger_can_add` answers the same
//! probe from the ledger's cached per-receiver interference sums (O(k)).
//! The acceptance bar for the ledger refactor is ≥ 5× at k = 64.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_netsim::{PropagationModel, RadioConfig, RadioEnvironment, SlotLedger};
use scream_topology::{GridDeployment, Link, NodeId};

/// A 16×16 grid with 65+ pairwise endpoint-disjoint horizontal links:
/// enough to fill a 64-link slot and still have a probe candidate left.
///
/// The SINR threshold is lowered to −10 dB so that even the 64-link slot is
/// genuinely feasible: every probe then performs its full amount of work
/// instead of early-exiting on the first failing handshake, which is the
/// regime the k-scaling comparison is about. (Slot-feasibility *decisions*
/// are identical between the two paths at any β — the property tests pin
/// that down.)
fn dense_instance() -> (RadioEnvironment, Vec<Link>) {
    let side = 16u32;
    let deployment = GridDeployment::new(side as usize, side as usize, 90.0).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .config(RadioConfig::mesh_default().with_sinr_threshold_db(-10.0))
        .build(&deployment);
    let mut links = Vec::new();
    for row in 0..side {
        for col in (0..side - 1).step_by(2) {
            links.push(Link::new(
                NodeId::new(row * side + col),
                NodeId::new(row * side + col + 1),
            ));
        }
    }
    assert!(links.len() > 64, "need at least 65 disjoint links");
    (env, links)
}

fn bench_feasibility(c: &mut Criterion) {
    let (env, links) = dense_instance();
    let mut group = c.benchmark_group("slot_feasibility");

    for k in [4usize, 16, 64] {
        let slot = &links[..k];
        let candidate = links[k];

        group.bench_with_input(
            BenchmarkId::new("from_scratch_can_add", k),
            &candidate,
            |b, &candidate| b.iter(|| env.can_add_to_slot(slot, candidate)),
        );
        let ledger = SlotLedger::with_links(&env, slot);
        group.bench_with_input(
            BenchmarkId::new("ledger_can_add", k),
            &candidate,
            |b, &candidate| b.iter(|| ledger.can_add(candidate)),
        );

        // Whole-slot construction: k from-scratch feasibility checks of
        // growing prefixes vs k incremental O(k) assignments.
        group.bench_with_input(BenchmarkId::new("from_scratch_build", k), &k, |b, &k| {
            b.iter(|| {
                let mut slot_links: Vec<Link> = Vec::with_capacity(k);
                for &link in &links[..k] {
                    assert!(env.can_add_to_slot(&slot_links, link));
                    slot_links.push(link);
                }
                slot_links.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("ledger_build", k), &k, |b, &k| {
            b.iter(|| {
                let mut ledger = env.open_slot_ledger();
                for &link in &links[..k] {
                    assert!(ledger.can_add(link));
                    ledger.assign(link);
                }
                ledger.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
