//! Criterion bench for the Figure 8 pipeline: execution-time accounting as a
//! function of SCREAM size and interference-diameter parameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_bench::PaperScenario;
use scream_core::ProtocolKind;

fn bench_exec_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_exec_time");
    group.sample_size(10);
    let instance = PaperScenario::grid(5_000.0)
        .with_node_count(25)
        .instantiate(3);
    for scream_bytes in [15usize, 60] {
        group.bench_with_input(
            BenchmarkId::new("fdd_scream_bytes", scream_bytes),
            &scream_bytes,
            |b, &bytes| {
                b.iter(|| {
                    let config = instance.protocol_config().with_scream_bytes(bytes);
                    instance.run_protocol_with(ProtocolKind::Fdd, config)
                })
            },
        );
    }
    for k in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("fdd_k_slots", k), &k, |b, &k| {
            b.iter(|| {
                let config = instance
                    .protocol_config()
                    .with_scream_slots(k.max(instance.interference_diameter));
                instance.run_protocol_with(ProtocolKind::Fdd, config)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exec_time);
criterion_main!(benches);
