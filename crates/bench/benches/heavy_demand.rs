//! Criterion bench for the heavy-demand fast path: batched run-level
//! placement vs the seed's per-unit first-fit loop, swept over demand
//! magnitude on the fixed 64-link instance of
//! [`scream_bench::heavy_demand_instance`].
//!
//! `batched` is `GreedyPhysical::schedule` (run-length schedules, one probe
//! per pattern per link); `per_unit_baseline` is
//! `GreedyPhysical::schedule_per_unit`, the pre-batching implementation kept
//! as a baseline shim. The baseline materializes one slot per unit of demand
//! — O(total demand) time and memory — so it is benched only up to
//! demand 10⁴ (at 10⁶ a single iteration would take minutes); the batched
//! path runs the full sweep to 10⁶, where its cost is visibly flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_bench::{heavy_demand_instance, heavy_demand_instance_on_channels};
use scream_scheduling::GreedyPhysical;

fn bench_heavy_demand(c: &mut Criterion) {
    let mut group = c.benchmark_group("heavy_demand_64_links");
    group.sample_size(10);
    for demand in [1u64, 100, 10_000, 1_000_000] {
        let (env, demands) = heavy_demand_instance(demand);
        group.bench_with_input(
            BenchmarkId::new("batched", demand),
            &demands,
            |b, demands| b.iter(|| GreedyPhysical::paper_baseline().schedule(&env, demands)),
        );
        if demand <= 10_000 {
            group.bench_with_input(
                BenchmarkId::new("per_unit_baseline", demand),
                &demands,
                |b, demands| {
                    b.iter(|| GreedyPhysical::paper_baseline().schedule_per_unit(&env, demands))
                },
            );
        }
    }
    group.finish();
}

/// Channel ablation on the same fixed 64-link instance at demand 10⁴: the
/// channel-aware scheduler's cost per channel count, with the resulting
/// schedule length (shrinking ~1/C — 12·10⁴ slots at C = 1, 6·10⁴ at C = 2,
/// 3·10⁴ at C = 4) reported on stderr alongside the timings.
fn bench_multi_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("heavy_demand_channels");
    group.sample_size(10);
    for channels in [1usize, 2, 4] {
        let (env, demands) = heavy_demand_instance_on_channels(10_000, channels);
        let length = GreedyPhysical::paper_baseline()
            .schedule(&env, &demands)
            .length();
        eprintln!("# heavy_demand_channels: C={channels} -> {length} slots");
        group.bench_with_input(
            BenchmarkId::new("batched", channels),
            &demands,
            |b, demands| b.iter(|| GreedyPhysical::paper_baseline().schedule(&env, demands)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_heavy_demand, bench_multi_channel);
criterion_main!(benches);
