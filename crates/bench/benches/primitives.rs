//! Criterion micro-benchmarks for the building blocks: the SCREAM primitive
//! (physical vs ideal fidelity), leader election, SINR slot-feasibility
//! checks and the centralized greedy packing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_core::{LeaderElection, ProtocolConfig, ScreamChannel, ScreamFidelity};
use scream_netsim::{PropagationModel, ProtocolTiming, RadioEnvironment};
use scream_topology::{GridDeployment, Link, NodeId};

fn bench_primitives(c: &mut Criterion) {
    let deployment = GridDeployment::new(8, 8, 120.0).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .build(&deployment);
    let id = env.interference_diameter();

    let mut group = c.benchmark_group("primitives");
    for fidelity in [ScreamFidelity::Ideal, ScreamFidelity::Physical] {
        let channel = ScreamChannel::new(
            &env,
            &ProtocolConfig::paper_default()
                .with_scream_slots(id.max(5))
                .with_fidelity(fidelity),
        )
        .unwrap();
        let mut initial = vec![false; 64];
        initial[0] = true;
        group.bench_with_input(
            BenchmarkId::new("scream_network_or", format!("{fidelity:?}")),
            &channel,
            |b, ch| {
                b.iter(|| {
                    let mut timing = ProtocolTiming::new();
                    ch.network_or(&initial, &mut timing)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("leader_election", format!("{fidelity:?}")),
            &channel,
            |b, ch| {
                b.iter(|| {
                    let mut timing = ProtocolTiming::new();
                    LeaderElection::new().elect(ch, &[true; 64], &mut timing)
                })
            },
        );
    }

    let links: Vec<Link> = (0..8)
        .map(|i| Link::new(NodeId::new(i * 8 + 1), NodeId::new(i * 8)))
        .collect();
    group.bench_function("sinr_slot_feasible_8_links", |b| {
        b.iter(|| env.slot_feasible(&links))
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
