//! Criterion bench for the Figure 7 pipeline (unplanned uniform placement,
//! heterogeneous power).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_bench::PaperScenario;
use scream_core::ProtocolKind;
use scream_scheduling::{FromScratch, GreedyPhysical};

fn bench_schedule_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_uniform_schedule");
    group.sample_size(10);
    let instance = PaperScenario::uniform(5_000.0)
        .with_node_count(36)
        .instantiate(2);
    group.bench_function("centralized", |b| b.iter(|| instance.run_centralized()));
    group.bench_function("centralized_from_scratch", |b| {
        let model = FromScratch(&instance.env);
        b.iter(|| GreedyPhysical::paper_baseline().schedule(&model, &instance.link_demands))
    });
    group.bench_with_input(BenchmarkId::new("fdd", 36), &instance, |b, inst| {
        b.iter(|| inst.run_protocol(ProtocolKind::Fdd))
    });
    group.bench_with_input(BenchmarkId::new("pdd_0.8", 36), &instance, |b, inst| {
        b.iter(|| inst.run_protocol(ProtocolKind::pdd_unchecked(0.8)))
    });
    group.finish();
}

criterion_group!(benches, bench_schedule_uniform);
criterion_main!(benches);
