//! Criterion bench for the Figure 9 pipeline: protocol runs under different
//! clock-skew bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_bench::PaperScenario;
use scream_core::ProtocolKind;
use scream_netsim::{ClockSkewConfig, SimTime};

fn bench_clock_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_clock_skew");
    group.sample_size(10);
    let instance = PaperScenario::grid(5_000.0)
        .with_node_count(25)
        .instantiate(4);
    for skew_us in [1u64, 100, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("fdd_skew_us", skew_us),
            &skew_us,
            |b, &us| {
                b.iter(|| {
                    let config =
                        instance.config_with_skew(ClockSkewConfig::new(SimTime::from_micros(us)));
                    instance.run_protocol_with(ProtocolKind::Fdd, config)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clock_skew);
criterion_main!(benches);
