//! Criterion bench for the Figure 4/5 pipeline: the mote SCREAM-detection
//! discrete-event simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scream_mote::{MoteExperiment, MoteExperimentConfig};

fn bench_mote_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_mote_detection");
    group.sample_size(10);
    for bytes in [8usize, 24] {
        group.bench_with_input(
            BenchmarkId::new("scream_bytes", bytes),
            &bytes,
            |b, &bytes| {
                b.iter(|| {
                    MoteExperiment::new(
                        MoteExperimentConfig::paper_default()
                            .with_scream_bytes(bytes)
                            .with_scream_count(100),
                    )
                    .run()
                    .error_percentage()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mote_detection);
criterion_main!(benches);
