//! The paper's simulation scenario (Section VI-A), parameterized.
//!
//! All simulations in the paper use 64 nodes with 4 gateways, per-node
//! demands uniform in `[1, 10]`, a log-normal propagation model with path
//! loss exponent 3, SCREAM size 15 bytes and interference diameter 5. Node
//! density is varied by changing the deployment area while holding the node
//! count fixed. Two topology families are used: a planned grid with
//! homogeneous transmit power and an unplanned uniform-random placement with
//! heterogeneous power.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scream_core::{DistributedScheduler, ProtocolConfig, ProtocolKind};
use scream_netsim::{ClockSkewConfig, PropagationModel, RadioEnvironment};
use scream_scheduling::{GreedyPhysical, Schedule, ScheduleMetrics};
use scream_topology::{
    density_to_area_m2, DemandConfig, DemandVector, Deployment, GridDeployment, LinkDemands,
    RoutingForest, UniformDeployment,
};
use scream_traffic::{FlowSet, TrafficConfig, TrafficEngine, TrafficReport};

/// Which of the two Section VI-A topology families to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Planned grid layout with homogeneous transmission power.
    PlannedGrid,
    /// Unplanned uniform-random placement with heterogeneous transmission
    /// power.
    UnplannedUniform,
}

/// Generator for the paper's simulation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperScenario {
    /// Topology family.
    pub topology: Topology,
    /// Number of mesh nodes (64 in the paper).
    pub node_count: usize,
    /// Number of gateway nodes (4 in the paper).
    pub gateway_count: usize,
    /// Node density in nodes per square kilometer (the paper sweeps roughly
    /// 1 000 – 25 000).
    pub density_per_km2: f64,
    /// Per-node demand distribution (uniform `[1, 10]` in the paper).
    pub demand: DemandConfig,
    /// Log-normal shadowing standard deviation in dB (0 disables shadowing).
    pub shadowing_sigma_db: f64,
    /// Path-loss exponent (3 in the paper).
    pub path_loss_exponent: f64,
    /// Mean transmit power in dBm. The paper does not state the power used in
    /// GTNetS; 10 dBm gives a ~100 m interference-free range under the
    /// defaults here, which makes the 64-node deployments genuinely
    /// multi-hop across the evaluated density range.
    pub tx_power_dbm: f64,
    /// SINR threshold β in dB. The paper does not state β; 6 dB corresponds
    /// to a DSSS-rate 802.11 link and is the reproduction default (see
    /// EXPERIMENTS.md for the sensitivity of the figures to this choice).
    pub sinr_threshold_db: f64,
    /// Number of orthogonal channels available to the schedulers (the paper
    /// — and hence the default — is the single shared channel).
    pub channel_count: usize,
}

impl PaperScenario {
    /// The planned (grid) scenario of Figure 6 at the given density.
    pub fn grid(density_per_km2: f64) -> Self {
        Self {
            topology: Topology::PlannedGrid,
            node_count: 64,
            gateway_count: 4,
            density_per_km2,
            demand: DemandConfig::PAPER,
            shadowing_sigma_db: 4.0,
            path_loss_exponent: 3.0,
            tx_power_dbm: 10.0,
            sinr_threshold_db: 6.0,
            channel_count: 1,
        }
    }

    /// The unplanned (uniform random) scenario of Figure 7 at the given
    /// density.
    pub fn uniform(density_per_km2: f64) -> Self {
        Self {
            topology: Topology::UnplannedUniform,
            ..Self::grid(density_per_km2)
        }
    }

    /// Overrides the node count (the paper always uses 64; smaller counts are
    /// useful for fast tests and Criterion benches).
    pub fn with_node_count(mut self, nodes: usize) -> Self {
        self.node_count = nodes;
        self
    }

    /// Overrides the shadowing standard deviation.
    pub fn with_shadowing(mut self, sigma_db: f64) -> Self {
        self.shadowing_sigma_db = sigma_db;
        self
    }

    /// Overrides the mean transmit power in dBm.
    pub fn with_tx_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Overrides the SINR threshold β in dB.
    pub fn with_sinr_threshold_db(mut self, beta_db: f64) -> Self {
        self.sinr_threshold_db = beta_db;
        self
    }

    /// Overrides the number of orthogonal channels.
    pub fn with_channel_count(mut self, channels: usize) -> Self {
        self.channel_count = channels;
        self
    }

    /// Builds one concrete instance of the scenario. The same seed always
    /// yields the same instance.
    ///
    /// Instances are retried (perturbing the draw, never the parameters)
    /// until the SINR communication graph is connected, as the paper's
    /// analysis assumes; at the densities evaluated disconnection is rare.
    pub fn instantiate(&self, seed: u64) -> ScenarioInstance {
        for attempt in 0..64u64 {
            if let Some(instance) = self.try_instantiate(seed.wrapping_add(attempt * 0x9e37)) {
                return instance;
            }
        }
        panic!(
            "could not draw a connected {:?} instance at density {} nodes/km^2",
            self.topology, self.density_per_km2
        );
    }

    fn try_instantiate(&self, seed: u64) -> Option<ScenarioInstance> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let deployment = self.build_deployment(&mut rng);
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(self.path_loss_exponent))
            .shadowing(self.shadowing_sigma_db, seed)
            .config(
                scream_netsim::RadioConfig::mesh_default()
                    .with_sinr_threshold_db(self.sinr_threshold_db)
                    .with_channel_count(self.channel_count),
            )
            .build(&deployment);
        let graph = env.communication_graph();
        if !graph.is_connected() {
            return None;
        }
        // Gateways: the nodes closest to the region corners (up to
        // gateway_count of them), mirroring the planned placement of 4
        // gateways in the paper.
        let mut gateways = deployment.corner_nodes();
        gateways.truncate(self.gateway_count);
        let forest = RoutingForest::shortest_path(&graph, &gateways, seed).ok()?;
        let demands = DemandVector::generate(deployment.len(), self.demand, &gateways, &mut rng);
        let link_demands = LinkDemands::aggregate(&forest, &demands).ok()?;
        let interference_diameter = env.interference_diameter();
        if interference_diameter == usize::MAX {
            return None;
        }
        Some(ScenarioInstance {
            deployment,
            env,
            forest,
            demands,
            link_demands,
            interference_diameter,
            seed,
        })
    }

    fn build_deployment(&self, rng: &mut ChaCha8Rng) -> Deployment {
        let area_m2 = density_to_area_m2(self.node_count, self.density_per_km2);
        match self.topology {
            Topology::PlannedGrid => {
                let side = (self.node_count as f64).sqrt().round() as usize;
                let step = (area_m2 / self.node_count as f64).sqrt();
                GridDeployment::new(side, side.max(1), step)
                    .tx_power_dbm(self.tx_power_dbm)
                    .build()
            }
            Topology::UnplannedUniform => UniformDeployment::new(self.node_count, area_m2.sqrt())
                .tx_power_dbm(self.tx_power_dbm)
                .heterogeneous_power(6.0)
                .build(rng),
        }
    }
}

/// A fixed deterministic heavy-demand instance: 128 nodes on a 16 × 8 planned
/// grid (150 m lattice step, homogeneous 20 dBm power), with exactly **64
/// horizontal links** — one per disjoint column pair per row — each demanding
/// `demand_per_link` slots.
///
/// Unlike [`PaperScenario`], the demand magnitude is the only knob, which is
/// what the `heavy_demand` bench and the `bench_summary` binary sweep to show
/// that batched placement and run-length schedules make demand nearly free
/// (the link set, and hence the packing problem, never changes).
pub fn heavy_demand_instance(demand_per_link: u64) -> (RadioEnvironment, LinkDemands) {
    heavy_demand_instance_on_channels(demand_per_link, 1)
}

/// [`heavy_demand_instance`] with `channel_count` orthogonal channels — the
/// channel-ablation instance: the 64 links are pairwise endpoint-disjoint, so
/// their conflicts are purely SINR-driven and orthogonal channels shrink the
/// schedule by almost exactly `1/C`.
pub fn heavy_demand_instance_on_channels(
    demand_per_link: u64,
    channel_count: usize,
) -> (RadioEnvironment, LinkDemands) {
    use scream_topology::{Link, NodeId};

    const COLUMNS: usize = 16;
    const ROWS: usize = 8;
    let deployment = GridDeployment::new(COLUMNS, ROWS, 150.0).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .config(scream_netsim::RadioConfig::mesh_default().with_channel_count(channel_count))
        .build(&deployment);
    let links: Vec<(Link, u64)> = (0..ROWS)
        .flat_map(|row| {
            (0..COLUMNS / 2).map(move |pair| {
                let tail = (row * COLUMNS + 2 * pair) as u32;
                (
                    Link::new(NodeId::new(tail + 1), NodeId::new(tail)),
                    demand_per_link,
                )
            })
        })
        .collect();
    let demands = LinkDemands::from_links(deployment.len(), &links)
        .expect("the 64 fixed links are distinct and in range");
    (env, demands)
}

/// The `large_scale` scenario family: planned grids sized to hit a target
/// **link** count (10⁴–10⁶), the scale axis of the ROADMAP's million-node
/// item.
///
/// The construction generalizes [`heavy_demand_instance`]: nodes on a
/// `columns × rows` grid (columns kept even), one horizontal link per
/// disjoint column pair per row — links are pairwise endpoint-disjoint, every
/// head is distinct and conflicts are purely SINR-driven — with unit demand
/// per link. The radio environment is built with **streamed gains** (no n×n
/// matrix, no shadowing), which is what makes 10⁵–10⁶-link instances
/// representable in memory; feasibility probes run through the spatially
/// pruned `SlotLedger` automatically.
///
/// The default geometry (250 m lattice step, 32 dBm homogeneous power,
/// β = 10 dB) gives every link ≈ 10 dB of interference-free SINR headroom —
/// an interference budget of ≈ 9× the noise floor — so slots pack thousands
/// of concurrent links at kilometer-scale reuse distances. That density is
/// what exercises the pruned ledger: exact probes must sum every co-slot
/// interferer, while the pruned path scans a cutoff disc and covers the rest
/// with the far-field bound. (With only ≈ 1 dB of headroom the budget drops
/// below the aggregate far field, a single row of links saturates each slot,
/// and both paths degenerate to small-k scans.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LargeScaleScenario {
    /// Number of links to generate (the grid is sized to fit exactly this).
    pub target_links: usize,
    /// Grid lattice step in meters.
    pub step_m: f64,
    /// Homogeneous transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Number of orthogonal channels.
    pub channel_count: usize,
}

impl LargeScaleScenario {
    /// The family at its default geometry with the given link count.
    pub fn with_target_links(target_links: usize) -> Self {
        assert!(target_links > 0, "the scenario needs at least one link");
        Self {
            target_links,
            step_m: 250.0,
            tx_power_dbm: 32.0,
            channel_count: 1,
        }
    }

    /// Grid dimensions `(columns, rows)` for the target link count: columns
    /// is the smallest even number making the grid roughly square, rows the
    /// smallest count fitting `target_links` disjoint column pairs.
    pub fn grid_dimensions(&self) -> (usize, usize) {
        let columns = ((2.0 * self.target_links as f64).sqrt().ceil() as usize).next_multiple_of(2);
        let rows = self.target_links.div_ceil(columns / 2);
        (columns, rows)
    }

    /// Builds the instance: a streamed-gain environment plus unit demand on
    /// each of exactly `target_links` disjoint horizontal links.
    pub fn instantiate(&self) -> (RadioEnvironment, LinkDemands) {
        use scream_topology::{Link, NodeId};

        let (columns, rows) = self.grid_dimensions();
        let deployment = GridDeployment::new(columns, rows, self.step_m)
            .tx_power_dbm(self.tx_power_dbm)
            .build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(
                scream_netsim::RadioConfig::mesh_default().with_channel_count(self.channel_count),
            )
            .streamed_gains()
            .build(&deployment);
        let links: Vec<(Link, u64)> = (0..rows)
            .flat_map(|row| {
                (0..columns / 2).map(move |pair| {
                    let tail = (row * columns + 2 * pair) as u32;
                    (Link::new(NodeId::new(tail + 1), NodeId::new(tail)), 1)
                })
            })
            .take(self.target_links)
            .collect();
        let demands = LinkDemands::from_links(deployment.len(), &links)
            .expect("the generated links are distinct and in range");
        (env, demands)
    }
}

/// One concrete, connected instance of the paper scenario.
#[derive(Debug, Clone)]
pub struct ScenarioInstance {
    /// The node placement.
    pub deployment: Deployment,
    /// The radio environment (gains, SINR, carrier sensing).
    pub env: RadioEnvironment,
    /// The routing forest towards the gateways (the flow routes of the
    /// packet-level traffic evaluation).
    pub forest: RoutingForest,
    /// The generated per-node demands the link demands were aggregated from.
    pub demands: DemandVector,
    /// Aggregated per-link demands along the routing forest.
    pub link_demands: LinkDemands,
    /// Interference diameter of the sensitivity graph.
    pub interference_diameter: usize,
    /// Seed the instance was drawn from.
    pub seed: u64,
}

impl ScenarioInstance {
    /// A protocol configuration sized for this instance: `K` set to the
    /// measured interference diameter (at least the paper's 5) and the
    /// paper's 15-byte SCREAM size.
    pub fn protocol_config(&self) -> ProtocolConfig {
        ProtocolConfig::paper_default()
            .with_scream_slots(self.interference_diameter.max(5))
            .with_seed(self.seed)
    }

    /// Runs the centralized GreedyPhysical baseline on this instance.
    pub fn run_centralized(&self) -> Schedule {
        GreedyPhysical::paper_baseline().schedule(&self.env, &self.link_demands)
    }

    /// Runs a distributed protocol on this instance with the default
    /// (paper-sized) configuration.
    pub fn run_protocol(&self, kind: ProtocolKind) -> scream_core::DistributedRun {
        self.run_protocol_with(kind, self.protocol_config())
    }

    /// Runs a distributed protocol with an explicit configuration (used by
    /// the execution-time sweeps that vary SCREAM size, `K` and clock skew).
    pub fn run_protocol_with(
        &self,
        kind: ProtocolKind,
        config: ProtocolConfig,
    ) -> scream_core::DistributedRun {
        DistributedScheduler::new(kind, config)
            .run(&self.env, &self.link_demands)
            .expect("paper-scenario instances are connected and well sized")
    }

    /// Schedule metrics of an arbitrary schedule against this instance's
    /// demands.
    pub fn metrics(&self, schedule: &Schedule) -> ScheduleMetrics {
        ScheduleMetrics::compute(schedule, &self.link_demands)
    }

    /// A clock-skew-adjusted configuration for the Figure 9 sweep.
    pub fn config_with_skew(&self, skew: ClockSkewConfig) -> ProtocolConfig {
        self.protocol_config().with_clock_skew(skew)
    }

    /// The paper's traffic pattern at load factor `rho` against a frame of
    /// `frame_slots` slots: one deterministic flow per non-gateway node,
    /// routed along the forest, injecting `rho · demand(v) / frame_slots`
    /// packets per slot.
    ///
    /// Because a demand-satisfying frame serves link `e` for exactly
    /// `aggregate_demand(e)` of its `frame_slots` slots, this puts **every**
    /// link at utilization exactly `rho`: the whole network crosses its
    /// stability knee together at `rho = 1`, which is what makes `rho` a
    /// clean sweep axis.
    pub fn flows_at_load(&self, rho: f64, frame_slots: u64) -> FlowSet {
        assert!(rho > 0.0 && rho.is_finite(), "load factor must be positive");
        assert!(frame_slots > 0, "the frame must have slots");
        FlowSet::along_forest(&self.forest, &self.demands, rho / frame_slots as f64)
    }

    /// Runs the packet-level traffic engine over `schedule` (as a repeating
    /// TDMA frame) at load factor `rho` **relative to that schedule's own
    /// capacity**, for `horizon_frames` frame repetitions.
    pub fn run_traffic(&self, schedule: &Schedule, rho: f64, horizon_frames: u64) -> TrafficReport {
        self.run_traffic_against(schedule, rho, schedule.length() as u64, horizon_frames)
    }

    /// Like [`run_traffic`](Self::run_traffic) but with the load factor
    /// expressed relative to an explicit reference frame length — the
    /// absolute-rate comparison the `delay_vs_load` figure uses so that
    /// Centralized, FDD and PDD face the *same* packet streams.
    pub fn run_traffic_against(
        &self,
        schedule: &Schedule,
        rho: f64,
        reference_frame_slots: u64,
        horizon_frames: u64,
    ) -> TrafficReport {
        TrafficEngine::on_schedule(
            schedule,
            self.flows_at_load(rho, reference_frame_slots),
            TrafficConfig::new(horizon_frames).with_seed(self.seed),
        )
        .expect("paper-scenario instances have non-empty frames and flows")
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_scenario_produces_a_connected_64_node_instance() {
        let instance = PaperScenario::grid(2000.0).instantiate(1);
        assert_eq!(instance.deployment.len(), 64);
        assert!(instance.env.communication_graph().is_connected());
        assert!(instance.link_demands.total_demand() > 0);
        assert!(instance.interference_diameter >= 1);
    }

    #[test]
    fn uniform_scenario_uses_heterogeneous_power() {
        let instance = PaperScenario::uniform(3000.0).instantiate(2);
        let powers: Vec<f64> = instance
            .deployment
            .nodes()
            .iter()
            .map(|n| n.tx_power_dbm)
            .collect();
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1.0, "powers should vary, spread {}", max - min);
    }

    #[test]
    fn instances_are_reproducible_per_seed() {
        let a = PaperScenario::grid(2000.0).instantiate(7);
        let b = PaperScenario::grid(2000.0).instantiate(7);
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.link_demands, b.link_demands);
    }

    #[test]
    fn small_instance_protocols_and_baseline_agree_on_validity() {
        let instance = PaperScenario::grid(1500.0)
            .with_node_count(16)
            .instantiate(3);
        let centralized = instance.run_centralized();
        let fdd = instance.run_protocol(ProtocolKind::Fdd);
        scream_scheduling::verify_schedule(&instance.env, &centralized, &instance.link_demands)
            .unwrap();
        scream_scheduling::verify_schedule(&instance.env, &fdd.schedule, &instance.link_demands)
            .unwrap();
        assert_eq!(fdd.schedule, centralized);
    }

    #[test]
    fn heavy_demand_instance_has_64_links_scaled_by_demand() {
        let (env, light) = heavy_demand_instance(1);
        let (_, heavy) = heavy_demand_instance(10_000);
        assert_eq!(light.demanded_links().count(), 64);
        assert_eq!(heavy.total_demand(), 640_000);
        // The link set is fixed; only multiplicities change, so the greedy
        // packing (pattern structure) is identical at every demand level.
        let light_schedule =
            scream_scheduling::GreedyPhysical::paper_baseline().schedule(&env, &light);
        let heavy_schedule =
            scream_scheduling::GreedyPhysical::paper_baseline().schedule(&env, &heavy);
        scream_scheduling::verify_schedule(&env, &heavy_schedule, &heavy).unwrap();
        assert!(light_schedule.spatial_reuse() > 1.0);
        assert_eq!(
            heavy_schedule.length(),
            light_schedule.length() * 10_000,
            "per-link demand scales the schedule uniformly on this instance"
        );
    }

    #[test]
    fn flows_at_load_put_every_link_at_exactly_rho() {
        let instance = PaperScenario::grid(1500.0)
            .with_node_count(16)
            .instantiate(3);
        let schedule = instance.run_centralized();
        let frame_slots = schedule.length() as u64;
        let flows = instance.flows_at_load(0.7, frame_slots);
        assert_eq!(
            flows.len(),
            instance
                .forest
                .flow_routes()
                .filter(|(v, _)| instance.demands.demand(*v) > 0)
                .count()
        );
        // The schedule allocates exactly demand(e) slots per frame to link e,
        // so the offered/share ratio is rho on every demanded link.
        for (link, demand) in instance.link_demands.demanded_links() {
            let share = demand as f64 / frame_slots as f64;
            assert!(
                (flows.offered_on(link) - 0.7 * share).abs() < 1e-9,
                "link {link} is not at utilization rho"
            );
        }
    }

    #[test]
    fn run_traffic_is_stable_below_the_knee_and_overloaded_above() {
        // The acceptance scenario: Centralized and FDD frames on the paper
        // grid carry sub-capacity load and saturate above it, byte-for-byte
        // reproducibly per seed.
        let instance = PaperScenario::grid(1500.0)
            .with_node_count(16)
            .instantiate(3);
        let centralized = instance.run_centralized();
        let fdd = instance.run_protocol(ProtocolKind::Fdd);
        assert_eq!(fdd.schedule, centralized);
        for schedule in [&centralized, &fdd.schedule] {
            let below = instance.run_traffic(schedule, 0.6, 300);
            assert!(below.verdict.is_stable());
            assert!(below.sustained_throughput_pct > 98.0, "{below}");
            assert!(
                below.final_backlog < below.injected / 20,
                "bounded backlog below the knee: {below}"
            );

            let above = instance.run_traffic(schedule, 1.5, 300);
            assert!(!above.verdict.is_stable());
            assert!(above.sustained_throughput_pct < 90.0, "{above}");
            // Delay grows with the simulated horizon in overload.
            let above_longer = instance.run_traffic(schedule, 1.5, 600);
            assert!(above_longer.delay.mean_slots > above.delay.mean_slots);
            // Determinism across reruns of the same seed.
            assert_eq!(below, instance.run_traffic(schedule, 0.6, 300));
            assert_eq!(above, instance.run_traffic(schedule, 1.5, 300));
        }
    }

    #[test]
    fn large_scale_family_builds_streamed_verified_instances() {
        let scenario = LargeScaleScenario::with_target_links(2_000);
        let (columns, rows) = scenario.grid_dimensions();
        assert_eq!(columns % 2, 0);
        assert!((columns / 2) * rows >= 2_000);
        assert!((columns / 2) * (rows - 1) < 2_000, "no wasted rows");
        let (env, demands) = scenario.instantiate();
        assert!(env.is_streamed(), "large instances must not hold n² gains");
        assert_eq!(demands.demanded_links().count(), 2_000);
        assert_eq!(demands.total_demand(), 2_000);
        let schedule = GreedyPhysical::paper_baseline().schedule(&env, &demands);
        scream_scheduling::verify_schedule(&env, &schedule, &demands).unwrap();
        assert!(
            schedule.spatial_reuse() > 10.0,
            "kilometer-scale reuse should pack many links per slot, got {}",
            schedule.spatial_reuse()
        );
    }

    #[test]
    fn large_scale_instances_do_not_depend_on_pruning() {
        // The committed scale benchmark compares pruned vs exact probes on
        // this family, which is only meaningful if both paths schedule it
        // byte-identically. 4000 links ≈ 22 km across — wide enough that the
        // default ledger actually builds its spatial index (the extent
        // heuristic skips it below the ~25 km far-field cutoff).
        let (env, demands) = LargeScaleScenario::with_target_links(4_000).instantiate();
        assert!(
            env.open_slot_ledger().is_pruned(),
            "the instance must be wide enough to engage spatial pruning"
        );
        let pruned = GreedyPhysical::paper_baseline().schedule(&env, &demands);
        let exact = GreedyPhysical::paper_baseline()
            .schedule(&scream_scheduling::ExactPhysical(&env), &demands);
        assert_eq!(pruned, exact);
    }

    #[test]
    fn density_changes_the_region_not_the_node_count() {
        let sparse = PaperScenario::grid(1000.0).instantiate(5);
        let dense = PaperScenario::grid(10_000.0).instantiate(5);
        assert_eq!(sparse.deployment.len(), dense.deployment.len());
        assert!(sparse.deployment.region().area() > dense.deployment.region().area());
    }
}
