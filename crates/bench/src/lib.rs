//! Figure-reproduction harness for the SCREAM paper's evaluation section.
//!
//! Every figure of the paper has a corresponding function here that
//! regenerates its data series, plus a binary (under `src/bin/`) that prints
//! the series as a table and a Criterion bench that exercises a reduced
//! version of the same pipeline. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for the measured-vs-paper comparison.
//!
//! | Paper figure | Function | Binary |
//! |---|---|---|
//! | Fig. 4 (mote detection error) | [`figures::fig4_mote_detection`] | `fig4_mote_error` |
//! | Fig. 5 (RSSI moving average)  | [`figures::fig5_rssi_trace`] | `fig5_mote_rssi` |
//! | Fig. 6 (grid schedule length) | [`figures::fig6_grid_improvement`] | `fig6_grid` |
//! | Fig. 7 (uniform schedule length) | [`figures::fig7_uniform_improvement`] | `fig7_uniform` |
//! | Fig. 8 (execution time vs size/diameter) | [`figures::fig8_execution_time`] | `fig8_exec_time` |
//! | Fig. 9 (execution time vs clock skew) | [`figures::fig9_clock_skew`] | `fig9_clock_skew` |
//! | Delay vs. load (traffic engine, beyond the paper) | [`figures::delay_vs_load`] | `delay_vs_load` |
//! | Recovery vs. load (fault injection, beyond the paper) | [`recovery::recovery_vs_load`] | `recovery_vs_load` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod recovery;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use recovery::{recovery_vs_load, RecoveryExperiment, RecoveryPoint, RecoveryReport};
pub use report::Table;
pub use scenario::{
    heavy_demand_instance, heavy_demand_instance_on_channels, LargeScaleScenario, PaperScenario,
    ScenarioInstance, Topology,
};
pub use sweep::{ScenarioSweep, SweepCell, SweepPoint, SweepReport, TrafficPoint};
