//! Plain-text table rendering for the figure binaries.
//!
//! The binaries print the regenerated data series as aligned text tables (one
//! row per x-axis point, one column per series), which is the closest
//! ASCII-friendly analogue of the paper's figures and is easy to diff or pipe
//! into a plotting tool.

use serde::{Deserialize, Serialize};

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a row of floating-point values after the given x-axis label,
    /// formatted with one decimal place.
    pub fn push_values(&mut self, x: impl std::fmt::Display, values: &[f64]) {
        let mut cells = vec![x.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.1}")));
        self.push_row(cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Fig. X", &["density", "FDD", "PDD"]);
        t.push_values(1000, &[55.0, 44.123]);
        t.push_values(25_000, &[60.5, 50.0]);
        let text = t.render();
        assert!(text.starts_with("# Fig. X"));
        assert!(text.contains("density"));
        assert!(text.contains("55.0"));
        assert!(text.contains("44.1"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "Fig. X");
        // Every data line has the same number of columns.
        let lines: Vec<&str> = text.lines().skip(3).collect();
        assert!(lines.iter().all(|l| l.split_whitespace().count() == 3));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
