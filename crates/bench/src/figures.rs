//! Data-series generators for every figure of the paper's evaluation.
//!
//! Each function regenerates the series behind one figure and returns plain
//! data; the corresponding binary prints it with [`Table`](crate::report::Table).
//! Node counts and repetition counts are parameters so the Criterion benches
//! and unit tests can run reduced versions of the same pipeline.

use serde::{Deserialize, Serialize};

use scream_core::ProtocolKind;
use scream_mote::{DetectionErrorPoint, MoteExperiment, MoteExperimentConfig, RssiTrace};
use scream_netsim::{ClockSkewConfig, SimTime};
use scream_scheduling::{verify_schedule, GreedyPhysical, Schedule};

use crate::report::Table;
use crate::scenario::{heavy_demand_instance_on_channels, PaperScenario};

/// One row of the Figure 6 series: percentage improvement over the serialized
/// schedule, per protocol, at one density.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprovementRow {
    /// Node density in nodes per square kilometer.
    pub density_per_km2: f64,
    /// Centralized GreedyPhysical improvement (%).
    pub centralized: f64,
    /// FDD improvement (%).
    pub fdd: f64,
    /// PDD improvement (%) with p = 0.2.
    pub pdd_02: f64,
    /// PDD improvement (%) with p = 0.6.
    pub pdd_06: f64,
    /// PDD improvement (%) with p = 0.8.
    pub pdd_08: f64,
}

/// Figure 6: schedule-length improvement over the serialized schedule for the
/// planned grid topology, across node densities.
///
/// `runs_per_point` instances are averaged per density (the paper reports
/// 95 % confidence intervals over repeated runs).
pub fn fig6_grid_improvement(
    densities: &[f64],
    node_count: usize,
    runs_per_point: usize,
    base_seed: u64,
) -> Vec<ImprovementRow> {
    improvement_rows(densities, node_count, runs_per_point, base_seed, true)
}

/// Figure 7: schedule-length improvement for the unplanned uniform-random
/// topology with heterogeneous transmit power. The paper plots FDD,
/// PDD (p = 0.8) and the centralized algorithm; the other PDD probabilities
/// are filled in as well for completeness.
pub fn fig7_uniform_improvement(
    densities: &[f64],
    node_count: usize,
    runs_per_point: usize,
    base_seed: u64,
) -> Vec<ImprovementRow> {
    improvement_rows(densities, node_count, runs_per_point, base_seed, false)
}

fn improvement_rows(
    densities: &[f64],
    node_count: usize,
    runs_per_point: usize,
    base_seed: u64,
    planned: bool,
) -> Vec<ImprovementRow> {
    densities
        .iter()
        .map(|&density| {
            let mut acc = [0.0f64; 5];
            for run in 0..runs_per_point.max(1) {
                let seed = base_seed + run as u64 * 1000;
                let scenario = if planned {
                    PaperScenario::grid(density)
                } else {
                    PaperScenario::uniform(density)
                }
                .with_node_count(node_count);
                let instance = scenario.instantiate(seed);
                let centralized = instance.metrics(&instance.run_centralized());
                let fdd = instance
                    .run_protocol(ProtocolKind::Fdd)
                    .metrics(&instance.link_demands);
                let pdd = |p: f64| {
                    instance
                        .run_protocol(ProtocolKind::pdd_unchecked(p))
                        .metrics(&instance.link_demands)
                        .improvement_over_linear_pct
                };
                acc[0] += centralized.improvement_over_linear_pct;
                acc[1] += fdd.improvement_over_linear_pct;
                acc[2] += pdd(0.2);
                acc[3] += pdd(0.6);
                acc[4] += pdd(0.8);
            }
            let k = runs_per_point.max(1) as f64;
            ImprovementRow {
                density_per_km2: density,
                centralized: acc[0] / k,
                fdd: acc[1] / k,
                pdd_02: acc[2] / k,
                pdd_06: acc[3] / k,
                pdd_08: acc[4] / k,
            }
        })
        .collect()
}

/// Renders improvement rows as a table titled like the paper figure.
pub fn improvement_table(title: &str, rows: &[ImprovementRow]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "density(nodes/km2)",
            "Centralized(%)",
            "FDD(%)",
            "PDD p=0.2(%)",
            "PDD p=0.6(%)",
            "PDD p=0.8(%)",
        ],
    );
    for row in rows {
        table.push_values(
            format!("{:.0}", row.density_per_km2),
            &[row.centralized, row.fdd, row.pdd_02, row.pdd_06, row.pdd_08],
        );
    }
    table
}

/// One row of the Figure 8 series: protocol execution time for a given value
/// of the swept parameter (SCREAM size in bytes, or interference diameter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTimeRow {
    /// The swept parameter value (bytes or slots, depending on the series).
    pub parameter: usize,
    /// FDD execution time in seconds.
    pub fdd_secs: f64,
    /// PDD (p = 0.8) execution time in seconds.
    pub pdd_secs: f64,
}

/// Figure 8 data: execution time as a function of SCREAM size (first vector)
/// and of the interference-diameter parameter `K` (second vector), for FDD
/// and PDD on the same instance.
pub fn fig8_execution_time(
    scream_sizes: &[usize],
    diameters: &[usize],
    node_count: usize,
    seed: u64,
) -> (Vec<ExecutionTimeRow>, Vec<ExecutionTimeRow>) {
    let instance = PaperScenario::grid(5_000.0)
        .with_node_count(node_count)
        .instantiate(seed);
    let run_pair = |config: scream_core::ProtocolConfig| {
        let fdd = instance.run_protocol_with(ProtocolKind::Fdd, config);
        let pdd = instance.run_protocol_with(ProtocolKind::pdd_unchecked(0.8), config);
        (fdd.execution_secs(), pdd.execution_secs())
    };

    let by_size = scream_sizes
        .iter()
        .map(|&bytes| {
            let config = instance.protocol_config().with_scream_bytes(bytes);
            let (fdd_secs, pdd_secs) = run_pair(config);
            ExecutionTimeRow {
                parameter: bytes,
                fdd_secs,
                pdd_secs,
            }
        })
        .collect();

    let by_diameter = diameters
        .iter()
        .map(|&k| {
            let k = k.max(instance.interference_diameter);
            let config = instance.protocol_config().with_scream_slots(k);
            let (fdd_secs, pdd_secs) = run_pair(config);
            ExecutionTimeRow {
                parameter: k,
                fdd_secs,
                pdd_secs,
            }
        })
        .collect();

    (by_size, by_diameter)
}

/// Renders Figure 8 rows as a table.
pub fn execution_time_table(title: &str, parameter_name: &str, rows: &[ExecutionTimeRow]) -> Table {
    let mut table = Table::new(title, &[parameter_name, "FDD(s)", "PDD p=0.8(s)"]);
    for row in rows {
        table.push_values(row.parameter, &[row.fdd_secs, row.pdd_secs]);
    }
    table
}

/// One row of the Figure 9 series: execution time under a clock-skew bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockSkewRow {
    /// Clock-skew bound in seconds.
    pub skew_secs: f64,
    /// FDD execution time in seconds.
    pub fdd_secs: f64,
    /// PDD (p = 0.2) execution time in seconds.
    pub pdd_secs: f64,
}

/// Figure 9 data: execution time as a function of the clock-skew bound
/// (both axes are logarithmic in the paper) for FDD and PDD (p = 0.2).
pub fn fig9_clock_skew(skews_secs: &[f64], node_count: usize, seed: u64) -> Vec<ClockSkewRow> {
    let instance = PaperScenario::grid(5_000.0)
        .with_node_count(node_count)
        .instantiate(seed);
    skews_secs
        .iter()
        .map(|&skew| {
            let config =
                instance.config_with_skew(ClockSkewConfig::new(SimTime::from_secs_f64(skew)));
            let fdd = instance.run_protocol_with(ProtocolKind::Fdd, config);
            let pdd = instance.run_protocol_with(ProtocolKind::pdd_unchecked(0.2), config);
            ClockSkewRow {
                skew_secs: skew,
                fdd_secs: fdd.execution_secs(),
                pdd_secs: pdd.execution_secs(),
            }
        })
        .collect()
}

/// Renders Figure 9 rows as a table.
pub fn clock_skew_table(rows: &[ClockSkewRow]) -> Table {
    let mut table = Table::new(
        "Fig. 9 — Execution Time vs. Clock Skew (log-log in the paper)",
        &["skew(s)", "FDD(s)", "PDD p=0.2(s)"],
    );
    for row in rows {
        table.push_row(vec![
            format!("{:.6}", row.skew_secs),
            format!("{:.2}", row.fdd_secs),
            format!("{:.2}", row.pdd_secs),
        ]);
    }
    table
}

/// One row of the channel-ablation series: the verified channel-aware
/// centralized schedule on the fixed 64-link heavy-demand instance, per
/// channel count, optionally alongside the distributed FDD run on the same
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelAblationRow {
    /// Number of orthogonal channels.
    pub channel_count: usize,
    /// Length of the channel-aware centralized schedule.
    pub slots: usize,
    /// The ideal multi-channel length `ceil(single_channel_slots / C)`.
    pub ideal_slots: usize,
    /// `slots / ideal_slots` — 1.0 means the schedule achieves the full
    /// `1/C` shrink; the acceptance bar is ≤ 1.1 (within 10 % of ideal).
    pub ratio_vs_ideal: f64,
    /// Average concurrent transmissions per slot, across all channels.
    pub spatial_reuse: f64,
    /// Length of the verified channel-aware **distributed** FDD schedule on
    /// the same instance, when the FDD column was requested
    /// ([`channel_ablation_with_fdd`]). By the channel-aware Theorem 4 it
    /// equals `slots`, so FDD reproduces the exact `1/C` shrink.
    pub fdd_slots: Option<usize>,
    /// `fdd_slots / ideal_slots`, when the FDD column was requested.
    pub fdd_ratio_vs_ideal: Option<f64>,
}

/// Channel-ablation data: the centralized schedule on the fixed 64-link
/// heavy-demand instance ([`heavy_demand_instance_on_channels`]) for each
/// requested channel count, each verified, compared against the ideal
/// `ceil(L₁ / C)` shrink. The instance's links are pairwise
/// endpoint-disjoint, so its conflicts are purely SINR-driven — exactly the
/// regime where orthogonal channels multiply capacity (Halldórsson & Mitra;
/// Zhou et al.).
pub fn channel_ablation(demand_per_link: u64, channel_counts: &[usize]) -> Vec<ChannelAblationRow> {
    channel_ablation_impl(demand_per_link, channel_counts, false)
}

/// [`channel_ablation`] with the **distributed** column filled in: the
/// channel-aware FDD runtime is executed (and verified) on every cell and
/// must reproduce the centralized `1/C` shrink slot for slot. The runtime
/// executes one round per slot, so this variant costs O(schedule length)
/// protocol rounds per cell — run it at moderate demand (the acceptance
/// instance uses 100 slots/link → 1200 → 600 → 300 slots for C = 1, 2, 4),
/// not at the million-slot demands the centralized column handles.
pub fn channel_ablation_with_fdd(
    demand_per_link: u64,
    channel_counts: &[usize],
) -> Vec<ChannelAblationRow> {
    channel_ablation_impl(demand_per_link, channel_counts, true)
}

fn channel_ablation_impl(
    demand_per_link: u64,
    channel_counts: &[usize],
    with_fdd: bool,
) -> Vec<ChannelAblationRow> {
    use scream_core::{DistributedScheduler, ProtocolConfig};

    let (env, demands) = heavy_demand_instance_on_channels(demand_per_link, 1);
    let single = GreedyPhysical::paper_baseline().schedule(&env, &demands);
    verify_schedule(&env, &single, &demands).expect("single-channel heavy schedule verifies");
    channel_counts
        .iter()
        .map(|&channels| {
            // The C = 1 cell reuses the outer instance (and its
            // already-verified centralized baseline); other channel counts
            // redraw the instance with their own radio configuration.
            let cell = (channels != 1)
                .then(|| heavy_demand_instance_on_channels(demand_per_link, channels));
            let (cell_env, cell_demands) = cell.as_ref().map_or((&env, &demands), |(e, d)| (e, d));
            let (length, spatial_reuse) = if channels == 1 {
                (single.length(), single.spatial_reuse())
            } else {
                let schedule = GreedyPhysical::paper_baseline().schedule(cell_env, cell_demands);
                verify_schedule(cell_env, &schedule, cell_demands)
                    .expect("channel-aware heavy schedule verifies");
                (schedule.length(), schedule.spatial_reuse())
            };
            let ideal_slots = single.length().div_ceil(channels);
            let fdd_slots = with_fdd.then(|| {
                let config = ProtocolConfig::paper_default()
                    .with_scream_slots(cell_env.interference_diameter().max(5));
                let run = DistributedScheduler::fdd()
                    .with_config(config)
                    .run(cell_env, cell_demands)
                    .expect("FDD completes on the heavy-demand instance");
                verify_schedule(cell_env, &run.schedule, cell_demands)
                    .expect("distributed multi-channel heavy schedule verifies");
                run.schedule.length()
            });
            ChannelAblationRow {
                channel_count: channels,
                slots: length,
                ideal_slots,
                ratio_vs_ideal: length as f64 / ideal_slots as f64,
                spatial_reuse,
                fdd_slots,
                fdd_ratio_vs_ideal: fdd_slots.map(|f| f as f64 / ideal_slots as f64),
            }
        })
        .collect()
}

/// Renders channel-ablation rows as a table (the FDD columns show `-` when
/// the distributed run was not requested).
pub fn channel_ablation_table(demand_per_link: u64, rows: &[ChannelAblationRow]) -> Table {
    let mut table = Table::new(
        format!(
            "Channel ablation — 64-link heavy-demand instance, {demand_per_link} slots/link demand"
        ),
        &[
            "channels",
            "slots",
            "ideal ceil(L1/C)",
            "ratio vs ideal",
            "spatial reuse",
            "FDD slots",
            "FDD ratio vs ideal",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.channel_count.to_string(),
            row.slots.to_string(),
            row.ideal_slots.to_string(),
            format!("{:.3}", row.ratio_vs_ideal),
            format!("{:.2}", row.spatial_reuse),
            row.fdd_slots
                .map_or_else(|| "-".to_string(), |s| s.to_string()),
            row.fdd_ratio_vs_ideal
                .map_or_else(|| "-".to_string(), |r| format!("{r:.3}")),
        ]);
    }
    table
}

/// One schedule's packet-level outcome at one offered-load factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Mean end-to-end delay over delivered packets, in slots.
    pub mean_delay_slots: f64,
    /// 95th-percentile end-to-end delay, in slots.
    pub delay_p95_slots: f64,
    /// Percentage of injected packets delivered within the horizon.
    pub throughput_pct: f64,
    /// Analytic stability verdict at this load.
    pub stable: bool,
}

/// One row of the delay-vs-load series: the traffic engine's outcome on the
/// Centralized, FDD and PDD (p = 0.8) frames at one offered-load factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayVsLoadRow {
    /// Offered-load factor relative to the **centralized** frame's capacity
    /// (1.0 saturates every link of the centralized/FDD frame).
    pub offered_load: f64,
    /// Outcome on the centralized GreedyPhysical frame.
    pub centralized: LoadPoint,
    /// Outcome on the distributed FDD frame (equal to the centralized frame
    /// by Theorem 4, so its knee coincides).
    pub fdd: LoadPoint,
    /// Outcome on the distributed PDD (p = 0.8) frame. PDD frames are
    /// longer, so their per-link shares are smaller and the knee arrives at
    /// a lower absolute load — the measurable cost of randomization.
    pub pdd_08: LoadPoint,
}

/// Delay-vs-load data on the paper grid scenario: the same absolute packet
/// streams (per-node rates scaled by `load / centralized_frame_slots`, so
/// `load = 1` is the centralized frame's exact capacity) are driven over the
/// Centralized, FDD and PDD (p = 0.8) frames. Every column simulates the
/// same **absolute** slot budget — `horizon_frames` repetitions of the
/// centralized frame, converted to each schedule's own frame count — so the
/// per-row comparison is horizon-fair even though the frames differ in
/// length. The stability knee is where delay turns vertical and throughput
/// leaves 100%: at `load ≈ 1` for Centralized/FDD, and at
/// `load ≈ L_centralized / L_pdd` for PDD.
pub fn delay_vs_load(
    loads: &[f64],
    node_count: usize,
    seed: u64,
    horizon_frames: u64,
) -> Vec<DelayVsLoadRow> {
    let instance = PaperScenario::grid(2_000.0)
        .with_node_count(node_count)
        .instantiate(seed);
    let centralized = instance.run_centralized();
    let fdd = instance.run_protocol(ProtocolKind::Fdd).schedule;
    let pdd = instance
        .run_protocol(ProtocolKind::pdd_unchecked(0.8))
        .schedule;
    let reference = centralized.length() as u64;
    loads
        .iter()
        .map(|&load| {
            let point = |schedule: &Schedule| {
                // Same absolute horizon for every schedule: the shared slot
                // budget in units of this schedule's own frame.
                let slot_budget = reference * horizon_frames;
                let frames = slot_budget.div_ceil(schedule.length() as u64).max(1);
                let report = instance.run_traffic_against(schedule, load, reference, frames);
                LoadPoint {
                    mean_delay_slots: report.delay.mean_slots,
                    delay_p95_slots: report.delay.p95_slots,
                    throughput_pct: report.sustained_throughput_pct,
                    stable: report.verdict.is_stable(),
                }
            };
            DelayVsLoadRow {
                offered_load: load,
                centralized: point(&centralized),
                fdd: point(&fdd),
                pdd_08: point(&pdd),
            }
        })
        .collect()
}

/// Renders delay-vs-load rows as a table ("+"/"sat" marks the verdict).
pub fn delay_vs_load_table(rows: &[DelayVsLoadRow]) -> Table {
    let mut table = Table::new(
        "Delay vs. offered load — paper grid, Centralized / FDD / PDD p=0.8 frames",
        &[
            "load",
            "Cent delay p95",
            "Cent thr(%)",
            "Cent",
            "FDD delay p95",
            "FDD thr(%)",
            "FDD",
            "PDD delay p95",
            "PDD thr(%)",
            "PDD",
        ],
    );
    let mark = |stable: bool| if stable { "+" } else { "sat" }.to_string();
    for row in rows {
        table.push_row(vec![
            format!("{:.2}", row.offered_load),
            format!("{:.1}", row.centralized.delay_p95_slots),
            format!("{:.1}", row.centralized.throughput_pct),
            mark(row.centralized.stable),
            format!("{:.1}", row.fdd.delay_p95_slots),
            format!("{:.1}", row.fdd.throughput_pct),
            mark(row.fdd.stable),
            format!("{:.1}", row.pdd_08.delay_p95_slots),
            format!("{:.1}", row.pdd_08.throughput_pct),
            mark(row.pdd_08.stable),
        ]);
    }
    table
}

/// Figure 4 data: SCREAM detection error versus SCREAM size on the simulated
/// mote testbed.
pub fn fig4_mote_detection(
    sizes: &[usize],
    screams_per_run: usize,
    seed: u64,
) -> Vec<DetectionErrorPoint> {
    let base = MoteExperimentConfig::paper_default()
        .with_scream_count(screams_per_run)
        .with_seed(seed);
    DetectionErrorPoint::sweep(base, sizes)
}

/// Renders Figure 4 points as a table.
pub fn mote_detection_table(points: &[DetectionErrorPoint]) -> Table {
    let mut table = Table::new(
        "Fig. 4 — Percentage Error in SCREAM detection vs SCREAM size (bytes)",
        &["scream(bytes)", "error(%)", "detection rate"],
    );
    for p in points {
        table.push_row(vec![
            p.scream_bytes.to_string(),
            format!("{:.1}", p.error_percentage),
            format!("{:.3}", p.detection_rate),
        ]);
    }
    table
}

/// Figure 5 data: the monitor's RSSI moving-average trace for a 24-byte
/// SCREAM, over the requested window.
pub fn fig5_rssi_trace(scream_bytes: usize, window: SimTime, seed: u64) -> RssiTrace {
    let config = MoteExperimentConfig::paper_default()
        .with_scream_bytes(scream_bytes)
        .with_scream_count(((window.as_secs_f64() / 0.1).ceil() as usize + 2).max(2))
        .with_seed(seed);
    let result = MoteExperiment::new(config).run_with_trace(SimTime::ZERO, window);
    result.trace().clone()
}

/// Renders the Figure 5 moving-average series as a table (time vs dBm).
pub fn rssi_trace_table(trace: &RssiTrace) -> Table {
    let mut table = Table::new(
        "Fig. 5 — Moving Average of RSSI values (24-byte SCREAMs)",
        &["time(ms)", "moving average(dBm)"],
    );
    for (time, value) in trace.moving_average_series() {
        table.push_row(vec![
            format!("{:.1}", time.as_secs_f64() * 1000.0),
            format!("{value:.1}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reduced_instance_shows_fdd_tracking_centralized() {
        let rows = fig6_grid_improvement(&[2000.0, 8000.0], 16, 1, 3);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(
                (row.fdd - row.centralized).abs() < 1e-9,
                "FDD must equal the centralized schedule length: {row:?}"
            );
            assert!(row.centralized >= row.pdd_08 - 1e-9, "{row:?}");
            assert!(row.centralized >= 0.0 && row.centralized <= 100.0);
        }
        let table = improvement_table("Fig. 6", &rows);
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn fig7_reduced_instance_produces_rows_for_every_density() {
        let rows = fig7_uniform_improvement(&[3000.0], 16, 1, 5);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].fdd - rows[0].centralized).abs() < 1e-9);
    }

    #[test]
    fn fig8_execution_time_grows_with_both_parameters() {
        let (by_size, by_diameter) = fig8_execution_time(&[5, 40], &[6, 24], 16, 7);
        assert!(by_size[1].fdd_secs > by_size[0].fdd_secs);
        assert!(by_diameter[1].fdd_secs > by_diameter[0].fdd_secs);
        // PDD is always faster than FDD at the same parameter value.
        for row in by_size.iter().chain(by_diameter.iter()) {
            assert!(row.pdd_secs < row.fdd_secs, "{row:?}");
        }
        let table = execution_time_table("Fig. 8", "bytes", &by_size);
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn fig9_execution_time_grows_with_clock_skew() {
        // 36 nodes rather than 16: the FDD-over-PDD execution-time gap is a
        // per-iteration election cost, which only dominates once the node
        // count (and hence the number of iterations per round) is large
        // enough — at toy sizes the two protocols are within noise of each
        // other, which is consistent with the paper evaluating 64 nodes.
        let rows = fig9_clock_skew(&[1e-6, 1e-3, 1e-1], 36, 9);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].fdd_secs > rows[0].fdd_secs * 10.0);
        assert!(rows[2].pdd_secs > rows[0].pdd_secs);
        assert!(rows[0].fdd_secs > rows[0].pdd_secs);
        assert_eq!(clock_skew_table(&rows).row_count(), 3);
    }

    #[test]
    fn channel_ablation_shrinks_the_schedule_by_one_over_c() {
        // The acceptance criterion: on the fixed 64-link heavy-demand
        // instance the channel-aware schedule length stays within 10 % of
        // ceil(L1 / C) for C in {2, 4}.
        let rows = channel_ablation(100, &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].channel_count, 1);
        assert_eq!(rows[0].slots, rows[0].ideal_slots, "C = 1 is its own ideal");
        for row in &rows[1..] {
            assert!(
                row.ratio_vs_ideal <= 1.10,
                "C = {} misses the 10% bar: {} slots vs ideal {}",
                row.channel_count,
                row.slots,
                row.ideal_slots
            );
            assert!(
                row.ratio_vs_ideal >= 1.0 - 1e-12,
                "a verified schedule cannot beat the ideal shrink: {row:?}"
            );
        }
        // Spatial reuse multiplies with the channel count on this instance.
        assert!(rows[2].spatial_reuse > rows[0].spatial_reuse * 3.0);
        // Without the distributed run the FDD columns stay empty and render
        // as placeholders.
        assert!(rows.iter().all(|r| r.fdd_slots.is_none()));
        let table = channel_ablation_table(100, &rows);
        assert_eq!(table.row_count(), 3);
        let rendered = table.render();
        assert!(rendered.contains("ideal ceil(L1/C)"));
        assert!(rendered.contains("FDD slots"));
    }

    #[test]
    fn distributed_fdd_reproduces_the_exact_one_over_c_shrink() {
        // The acceptance criterion: channel-aware FDD reproduces the exact
        // 1/C shrink of centralized GreedyPhysical on the 64-link
        // heavy-demand instance — 1200 → 600 → 300 slots for C = 1, 2, 4 at
        // 100 slots/link — with every distributed run verified.
        let rows = channel_ablation_with_fdd(100, &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        let lengths: Vec<usize> = rows.iter().map(|r| r.fdd_slots.unwrap()).collect();
        assert_eq!(lengths, vec![1200, 600, 300]);
        for row in &rows {
            // Channel-aware Theorem 4 on the bench surface: FDD tracks the
            // centralized column slot for slot at every channel count.
            assert_eq!(row.fdd_slots, Some(row.slots), "C = {}", row.channel_count);
            assert_eq!(row.fdd_ratio_vs_ideal, Some(row.ratio_vs_ideal));
            assert!(row.fdd_ratio_vs_ideal.unwrap() <= 1.10);
        }
        let table = channel_ablation_table(100, &rows);
        assert!(table.render().contains("1200"));
        assert!(
            !table.render().contains(" - "),
            "no placeholder cells when the FDD column is filled"
        );
    }

    #[test]
    fn delay_vs_load_finds_the_stability_knee() {
        // Reduced instance of the figure: loads straddling the centralized
        // frame's capacity. Below the knee all three frames carry the load
        // (PDD too, unless its frame is long enough that 0.5 already
        // saturates it); far above, every frame saturates and delay blows up.
        let rows = delay_vs_load(&[0.5, 1.6], 16, 3, 150);
        assert_eq!(rows.len(), 2);
        let (below, above) = (&rows[0], &rows[1]);
        assert!(below.centralized.stable && below.fdd.stable);
        assert!(below.centralized.throughput_pct > 98.0);
        // Theorem 4: the FDD frame *is* the centralized frame, so the
        // packet-level outcome matches exactly.
        assert_eq!(below.fdd, below.centralized);
        assert_eq!(above.fdd, above.centralized);
        assert!(!above.centralized.stable);
        assert!(!above.pdd_08.stable);
        assert!(above.centralized.throughput_pct < 90.0);
        assert!(above.centralized.delay_p95_slots > below.centralized.delay_p95_slots);
        // PDD's knee is earlier (longer frame): at any load it is at least
        // as saturated as the centralized frame.
        assert!(above.pdd_08.throughput_pct <= above.centralized.throughput_pct + 1e-9);
        let table = delay_vs_load_table(&rows);
        assert_eq!(table.row_count(), 2);
        let rendered = table.render();
        assert!(rendered.contains("sat"));
        assert!(rendered.contains("load"));
    }

    #[test]
    fn fig4_error_falls_with_scream_size() {
        let points = fig4_mote_detection(&[4, 24], 120, 1);
        assert_eq!(points.len(), 2);
        assert!(points[0].error_percentage > points[1].error_percentage);
        assert_eq!(mote_detection_table(&points).row_count(), 2);
    }

    #[test]
    fn fig5_trace_contains_scream_peaks() {
        let trace = fig5_rssi_trace(24, SimTime::from_millis(350), 2);
        assert!(!trace.is_empty());
        assert!(trace.peak_moving_average_dbm() > -60.0);
        assert!(rssi_trace_table(&trace).row_count() > 10);
    }
}
