//! Fault-injection recovery experiments on the paper scenario: the
//! `recovery_vs_load` figure data and its CSV/table exports.
//!
//! Each point runs the **same seeded single-link failure** twice on one
//! [`PaperScenario`] instance — once with the no-repair baseline (the
//! outage just strands packets) and once with the full rescheduler
//! (reroute + incremental frame repair + admission control) — and records
//! the graceful-degradation headline numbers side by side: delivery during
//! the outage, time-to-recover, repair counts and the final stability
//! verdict. The failed link is always the *busiest uplink* (the tree edge
//! under the largest routing subtree), the worst single-link case short of
//! partition.

use rayon::prelude::*;

use scream_netsim::RadioEnvironment;
use scream_resilience::{FaultPlan, ReschedulerConfig, ResilienceHarness, ResilienceReport};
use scream_topology::{DemandVector, Link, NodeId, RoutingForest};

use crate::report::Table;
use crate::scenario::{PaperScenario, ScenarioInstance};

/// One paper-scenario world prepared for fault-injection runs: the radio
/// environment, gateways and per-node demands of a [`ScenarioInstance`],
/// plus the seed that reproduces its routing and arrivals.
#[derive(Debug, Clone)]
pub struct RecoveryExperiment {
    env: RadioEnvironment,
    gateways: Vec<NodeId>,
    demands: DemandVector,
    seed: u64,
}

impl RecoveryExperiment {
    /// Prepares the experiment from a drawn scenario instance.
    pub fn from_instance(instance: &ScenarioInstance) -> Self {
        let gateways = (0..instance.deployment.len() as u32)
            .map(NodeId::new)
            .filter(|&v| instance.forest.is_gateway(v))
            .collect();
        Self {
            env: instance.env.clone(),
            gateways,
            demands: instance.demands.clone(),
            seed: instance.seed,
        }
    }

    /// The link the experiment fails: the uplink of the non-gateway node
    /// with the largest routing subtree under the harness's own forest —
    /// the single-link failure that strands the most traffic.
    pub fn failed_link(&self) -> Link {
        let graph = self.env.communication_graph();
        let (forest, _) = RoutingForest::shortest_path_partial(&graph, &self.gateways, self.seed)
            .expect("paper-scenario instances have a valid gateway set");
        (0..forest.node_count() as u32)
            .map(NodeId::new)
            .filter(|&v| !forest.is_gateway(v) && forest.is_reachable(v))
            .max_by_key(|&v| (forest.subtree(v).len(), std::cmp::Reverse(v)))
            .and_then(|v| forest.link_of(v))
            .expect("a non-gateway node with an uplink exists")
    }

    /// A harness over this world at load factor `rho`.
    pub fn harness(&self, rho: f64) -> ResilienceHarness {
        ResilienceHarness::new(
            self.env.clone(),
            self.gateways.clone(),
            self.demands.clone(),
            rho,
        )
    }

    /// The initial (pre-fault) frame length at load `rho`, from a one-slot
    /// probe run.
    pub fn initial_frame_slots(&self, rho: f64) -> u64 {
        self.harness(rho)
            .run(&FaultPlan::new().build(), 1, self.seed)
            .expect("paper-scenario instances offer traffic")
            .frame_slots_initial
    }

    /// Runs the busiest-uplink single-link failure at load `rho` over
    /// `horizon_frames` initial-frame repetitions (fault at one quarter of
    /// the horizon), with and without the rescheduler, and returns both
    /// outcomes as one [`RecoveryPoint`].
    pub fn single_link_outage(&self, rho: f64, horizon_frames: u64) -> RecoveryPoint {
        let frame_slots = self.initial_frame_slots(rho);
        let horizon = horizon_frames.max(4) * frame_slots;
        let fault_slot = horizon / 4;
        let trace = FaultPlan::new()
            .link_down(self.failed_link(), fault_slot)
            .build();
        let repaired = self
            .harness(rho)
            .run(&trace, horizon, self.seed)
            .expect("the repair arm runs to the horizon");
        let baseline = self
            .harness(rho)
            .with_config(ReschedulerConfig::baseline())
            .run(&trace, horizon, self.seed)
            .expect("the baseline arm runs to the horizon");
        RecoveryPoint::from_reports(rho, self.seed, fault_slot, &baseline, &repaired)
    }
}

/// One load point of the recovery figure: the same seeded single-link
/// failure with and without online recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPoint {
    /// Offered-load factor (per-link utilization of the pre-fault frame).
    pub offered_load: f64,
    /// Instance seed.
    pub seed: u64,
    /// Pre-fault frame length in slots.
    pub frame_slots_initial: u64,
    /// Slot of the injected link failure.
    pub fault_slot: u64,
    /// No-repair baseline: overall delivery percentage.
    pub baseline_delivery_pct: f64,
    /// No-repair baseline: delivery percentage after the fault.
    pub baseline_outage_delivery_pct: f64,
    /// No-repair baseline: analytic verdict at the horizon.
    pub baseline_stable: bool,
    /// Rescheduler: overall delivery percentage.
    pub delivery_pct: f64,
    /// Rescheduler: delivery percentage over the outage window.
    pub outage_delivery_pct: f64,
    /// Rescheduler: sustained delivery percentage after recovery.
    pub post_recovery_delivery_pct: f64,
    /// Rescheduler: slots from the fault to sustained recovery.
    pub time_to_recover_slots: Option<u64>,
    /// Rescheduler: repairs installed.
    pub repairs: usize,
    /// Rescheduler: repairs applied incrementally (vs. full rebuilds).
    pub incremental_repairs: usize,
    /// Rescheduler: peak in-flight backlog (the disruption cost).
    pub disruption_peak_backlog: u64,
    /// Rescheduler: flows still deferred by admission at the horizon.
    pub deferred_flows: usize,
    /// Rescheduler: analytic verdict at the horizon.
    pub stable: bool,
}

impl RecoveryPoint {
    fn from_reports(
        offered_load: f64,
        seed: u64,
        fault_slot: u64,
        baseline: &ResilienceReport,
        repaired: &ResilienceReport,
    ) -> Self {
        Self {
            offered_load,
            seed,
            frame_slots_initial: repaired.frame_slots_initial,
            fault_slot,
            baseline_delivery_pct: baseline.delivery_pct(),
            baseline_outage_delivery_pct: baseline.outage_delivery_pct,
            baseline_stable: baseline.final_verdict_stable,
            delivery_pct: repaired.delivery_pct(),
            outage_delivery_pct: repaired.outage_delivery_pct,
            post_recovery_delivery_pct: repaired.post_recovery_delivery_pct,
            time_to_recover_slots: repaired.time_to_recover_slots,
            repairs: repaired.repairs.len(),
            incremental_repairs: repaired.incremental_repairs(),
            disruption_peak_backlog: repaired.disruption_peak_backlog,
            deferred_flows: repaired.deferred_flows,
            stable: repaired.final_verdict_stable,
        }
    }
}

/// The recovery-vs-load figure data: the busiest-uplink single-link failure
/// on one paper grid instance, swept across offered-load factors in
/// parallel. Deterministic per `(node_count, seed)`.
pub fn recovery_vs_load(
    loads: &[f64],
    node_count: usize,
    seed: u64,
    horizon_frames: u64,
) -> Vec<RecoveryPoint> {
    let instance = PaperScenario::grid(2_000.0)
        .with_node_count(node_count)
        .instantiate(seed);
    let experiment = RecoveryExperiment::from_instance(&instance);
    loads
        .par_iter()
        .map(|&rho| experiment.single_link_outage(rho, horizon_frames))
        .collect()
}

/// The collected recovery points, exportable as CSV or an aligned table.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Per-load points in sweep order.
    pub points: Vec<RecoveryPoint>,
}

impl RecoveryReport {
    /// Column headers shared by the CSV and table exports.
    pub const COLUMNS: [&'static str; 16] = [
        "offered_load",
        "seed",
        "frame_slots",
        "fault_slot",
        "base_delivery_pct",
        "base_outage_pct",
        "base_stable",
        "delivery_pct",
        "outage_pct",
        "post_recovery_pct",
        "ttr_slots",
        "repairs",
        "incremental",
        "peak_backlog",
        "deferred",
        "stable",
    ];

    fn row(p: &RecoveryPoint) -> Vec<String> {
        let ttr = match p.time_to_recover_slots {
            // `-1` keeps the CSV numeric; the run never recovered.
            None => "-1".to_string(),
            Some(slots) => slots.to_string(),
        };
        vec![
            format!("{:.2}", p.offered_load),
            p.seed.to_string(),
            p.frame_slots_initial.to_string(),
            p.fault_slot.to_string(),
            format!("{:.2}", p.baseline_delivery_pct),
            format!("{:.2}", p.baseline_outage_delivery_pct),
            u8::from(p.baseline_stable).to_string(),
            format!("{:.2}", p.delivery_pct),
            format!("{:.2}", p.outage_delivery_pct),
            format!("{:.2}", p.post_recovery_delivery_pct),
            ttr,
            p.repairs.to_string(),
            p.incremental_repairs.to_string(),
            p.disruption_peak_backlog.to_string(),
            p.deferred_flows.to_string(),
            u8::from(p.stable).to_string(),
        ]
    }

    /// Plain `\n`-terminated CSV: a header row plus one row per point.
    pub fn to_csv(&self) -> String {
        let mut out = Self::COLUMNS.join(",");
        out.push('\n');
        for p in &self.points {
            out.push_str(&Self::row(p).join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the points as an aligned text [`Table`].
    pub fn to_table(&self, title: impl Into<String>) -> Table {
        let mut table = Table::new(title, &Self::COLUMNS);
        for p in &self.points {
            table.push_row(Self::row(p));
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_experiment() -> RecoveryExperiment {
        let instance = PaperScenario::grid(1_500.0)
            .with_node_count(16)
            .instantiate(3);
        RecoveryExperiment::from_instance(&instance)
    }

    #[test]
    fn the_rescheduler_beats_the_baseline_on_the_same_failure() {
        let point = small_experiment().single_link_outage(0.7, 40);
        assert!(
            !point.baseline_stable,
            "a dead uplink overloads the baseline"
        );
        assert!(point.stable, "the rescheduler reroutes back to Stable");
        assert!(point.repairs >= 1);
        let ttr = point
            .time_to_recover_slots
            .expect("the repair arm recovers");
        assert!(ttr < 30 * point.frame_slots_initial);
        // The denominator counts the backlog carried into the window, so
        // the ratio is <= 100 by construction; the shortfall from 100 is
        // the in-flight pipeline at the horizon, not loss.
        assert!(point.post_recovery_delivery_pct >= 98.5);
        assert!(point.post_recovery_delivery_pct <= 100.0);
        assert!(
            point.delivery_pct > point.baseline_delivery_pct,
            "recovery must deliver more overall: {} vs {}",
            point.delivery_pct,
            point.baseline_delivery_pct
        );
    }

    #[test]
    fn recovery_points_are_deterministic() {
        let experiment = small_experiment();
        let a = experiment.single_link_outage(0.7, 20);
        let b = experiment.single_link_outage(0.7, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn csv_and_table_share_the_column_contract() {
        let report = RecoveryReport {
            points: vec![small_experiment().single_link_outage(0.7, 20)],
        };
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert_eq!(line.split(',').count(), RecoveryReport::COLUMNS.len());
        }
        assert!(!csv.contains('\r') && !csv.contains('"'));
        let rendered = report.to_table("recovery").render();
        for column in RecoveryReport::COLUMNS {
            assert!(rendered.contains(column), "table misses column {column}");
        }
    }
}
