//! Parallel density × channel × load × seed scenario sweeps.
//!
//! The paper's evaluation (and every dense-scenario workload on the roadmap)
//! is a grid of independent experiments: one [`PaperScenario`] family,
//! swept over node densities (and optionally channel counts and packet-level
//! offered-load factors), with several seeds per cell. Each cell is pure — [`PaperScenario::instantiate`] is
//! deterministic per seed and `RadioEnvironment` is `Sync` — and since the
//! interference-ledger refactor all scheduling state is per-slot-local, so
//! cells parallelize across cores with no shared mutable state.
//!
//! [`ScenarioSweep`] runs the grid via rayon's `par_iter`, preserving cell
//! order, which makes parallel sweeps **deterministic**: the result vector
//! for a given (scenario, densities, channels, loads, seeds) tuple is
//! identical however many worker threads execute it, cell by cell, byte for
//! byte.
//!
//! ```
//! use scream_bench::{PaperScenario, ScenarioSweep};
//!
//! let sweep = ScenarioSweep::new(PaperScenario::grid(2_000.0).with_node_count(16))
//!     .densities(&[1_500.0, 3_000.0])
//!     .seeds(&[1, 2]);
//! let points = sweep.run();
//! assert_eq!(points.len(), 4);
//! assert!(points.iter().all(|p| p.centralized.improvement_over_linear_pct >= 0.0));
//! ```

use rayon::prelude::*;

use scream_core::ProtocolKind;
use scream_scheduling::{serialized_schedule, verify_schedule, ScheduleMetrics};

use crate::report::Table;
use crate::scenario::{PaperScenario, ScenarioInstance};

/// A density × channel × load × seed grid of paper-scenario experiments,
/// executed across all available cores.
#[derive(Debug, Clone)]
pub struct ScenarioSweep {
    base: PaperScenario,
    densities: Vec<f64>,
    channel_counts: Vec<usize>,
    offered_loads: Vec<f64>,
    seeds: Vec<u64>,
    traffic_horizon_frames: u64,
}

/// One sweep cell's coordinates plus the value the sweep computed for it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell<T> {
    /// Node density of this cell, in nodes per km².
    pub density_per_km2: f64,
    /// Number of orthogonal channels of this cell.
    pub channel_count: usize,
    /// Offered-load factor of this cell (1.0 = the frame's capacity).
    pub offered_load: f64,
    /// Instance seed of this cell.
    pub seed: u64,
    /// Whatever the sweep's function computed on the instance.
    pub value: T,
}

/// The packet-level outcome of one sweep cell: the traffic engine run on
/// the cell's verified schedule (used as a repeating TDMA frame) at the
/// cell's offered-load factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficPoint {
    /// Offered-load factor (per-link utilization; 1.0 is the knee).
    pub offered_load: f64,
    /// Percentage of injected packets delivered within the horizon.
    pub sustained_throughput_pct: f64,
    /// 95th-percentile end-to-end delay, in slots.
    pub delay_p95_slots: f64,
    /// Analytic stability verdict (offered load vs. per-link share).
    pub stable: bool,
}

/// The default per-cell result of [`ScenarioSweep::run`]: the verified
/// centralized GreedyPhysical schedule plus the FDD and serialized-baseline
/// comparisons, with their schedule metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Node density of this cell, in nodes per km².
    pub density_per_km2: f64,
    /// Number of orthogonal channels of this cell.
    pub channel_count: usize,
    /// Instance seed of this cell.
    pub seed: u64,
    /// Measured interference diameter of the drawn instance.
    pub interference_diameter: usize,
    /// Total traffic demand `TD` of the drawn instance.
    pub total_demand: u64,
    /// Schedule metrics of the verified centralized GreedyPhysical schedule.
    pub centralized: ScheduleMetrics,
    /// Schedule metrics of the verified FDD run on the same instance. The
    /// distributed runtime is channel-aware, so on multi-channel cells this
    /// is a true distributed multi-channel schedule — by the channel-aware
    /// Theorem 4 it tracks the centralized column exactly, and the
    /// `fdd_vs_centralized_pct` report column pins that at 100.
    pub fdd: ScheduleMetrics,
    /// Schedule metrics of the serialized (one link per slot) baseline.
    pub linear: ScheduleMetrics,
    /// Packet-level traffic outcome on the centralized frame (which the FDD
    /// frame equals by Theorem 4) at this cell's offered-load factor.
    pub traffic: TrafficPoint,
}

impl ScenarioSweep {
    /// Starts a sweep over the given scenario family. Density values from
    /// the base scenario are replaced by [`densities`](Self::densities); the
    /// base's other parameters (topology, node count, shadowing, β, …) apply
    /// to every cell.
    pub fn new(base: PaperScenario) -> Self {
        Self {
            base,
            densities: vec![base.density_per_km2],
            channel_counts: vec![base.channel_count],
            offered_loads: vec![0.9],
            seeds: vec![0],
            traffic_horizon_frames: 50,
        }
    }

    /// Sets the densities to sweep (nodes per km²).
    pub fn densities(mut self, densities: &[f64]) -> Self {
        assert!(!densities.is_empty(), "sweep needs at least one density");
        self.densities = densities.to_vec();
        self
    }

    /// Sets the channel counts to sweep (the channel-ablation axis).
    pub fn channel_counts(mut self, channel_counts: &[usize]) -> Self {
        assert!(
            !channel_counts.is_empty(),
            "sweep needs at least one channel count"
        );
        self.channel_counts = channel_counts.to_vec();
        self
    }

    /// Sets the offered-load factors to sweep (the packet-level load axis):
    /// every cell's traffic run puts each link at `load ×` its per-frame
    /// service share, so 1.0 is the stability knee. Default: `[0.9]`.
    pub fn offered_loads(mut self, loads: &[f64]) -> Self {
        assert!(!loads.is_empty(), "sweep needs at least one offered load");
        assert!(
            loads.iter().all(|l| l.is_finite() && *l > 0.0),
            "offered loads must be finite and positive"
        );
        self.offered_loads = loads.to_vec();
        self
    }

    /// Sets how many frame repetitions each cell's traffic run simulates
    /// (default 50).
    pub fn traffic_horizon(mut self, frames: u64) -> Self {
        assert!(frames > 0, "the traffic horizon must be at least one frame");
        self.traffic_horizon_frames = frames;
        self
    }

    /// Sets the seeds to run per (density, channel count, offered load).
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        assert!(!seeds.is_empty(), "sweep needs at least one seed");
        self.seeds = seeds.to_vec();
        self
    }

    /// The (density, channel count, offered load, seed) coordinate grid,
    /// density-major, then channel-major, then by load, then by seed — the
    /// order every `run` variant returns its cells in.
    pub fn grid(&self) -> Vec<(f64, usize, f64, u64)> {
        self.densities
            .iter()
            .flat_map(|&d| {
                self.channel_counts.iter().flat_map(move |&c| {
                    self.offered_loads
                        .iter()
                        .flat_map(move |&l| self.seeds.iter().map(move |&s| (d, c, l, s)))
                })
            })
            .collect()
    }

    /// Number of cells in the sweep.
    pub fn len(&self) -> usize {
        self.densities.len()
            * self.channel_counts.len()
            * self.offered_loads.len()
            * self.seeds.len()
    }

    /// Whether the sweep grid is empty (never, given the constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` on every instantiated cell in parallel, returning the cells
    /// in grid order regardless of thread scheduling. `f` receives the
    /// drawn instance and the cell's offered-load factor (the instance draw
    /// itself does not depend on the load).
    pub fn run_with<T, F>(&self, f: F) -> Vec<SweepCell<T>>
    where
        T: Send,
        F: Fn(&ScenarioInstance, f64) -> T + Sync,
    {
        let base = self.base;
        self.grid()
            .into_par_iter()
            .map(|(density, channels, load, seed)| {
                let mut scenario = base;
                scenario.density_per_km2 = density;
                scenario.channel_count = channels;
                let instance = scenario.instantiate(seed);
                SweepCell {
                    density_per_km2: density,
                    channel_count: channels,
                    offered_load: load,
                    seed,
                    value: f(&instance, load),
                }
            })
            .collect()
    }

    /// Runs the sweep like [`run`](Self::run) and wraps the points in a
    /// [`SweepReport`] for CSV/table export.
    pub fn report(&self) -> SweepReport {
        SweepReport { points: self.run() }
    }

    /// Streaming variant of [`run`](Self::run): yields the same points, in
    /// the same grid order, **without materializing every cell**. Memory
    /// stays bounded by one `(density, channel)` block — its seeds'
    /// instances, schedules and metrics — instead of the whole grid, which is
    /// what lets a million-cell sweep (the `large_scale` regime: many
    /// densities × loads × seeds) pipe rows straight into a CSV writer.
    ///
    /// Within a block the per-seed scheduling runs still execute in parallel
    /// (and each cell verifies like `run` does); only the load axis and the
    /// block succession are lazy. Every yielded point is byte-identical to
    /// the corresponding `run()` entry, pinned by the
    /// `streaming_rows_match_run` test.
    pub fn rows_streaming(&self) -> impl Iterator<Item = SweepPoint> + '_ {
        use std::rc::Rc;

        /// The load-independent part of one (density, channel, seed) cell.
        struct BaseCell {
            seed: u64,
            instance: ScenarioInstance,
            schedule: scream_scheduling::Schedule,
            centralized: ScheduleMetrics,
            fdd: ScheduleMetrics,
            linear: ScheduleMetrics,
        }

        let horizon = self.traffic_horizon_frames;
        let base = self.base;
        self.densities.iter().flat_map(move |&density| {
            self.channel_counts.iter().flat_map(move |&channels| {
                // One block's bases are computed eagerly (and in parallel)
                // when the iterator first reaches the block, then shared by
                // every load row via Rc.
                let bases: Vec<BaseCell> = self
                    .seeds
                    .par_iter()
                    .map(|&seed| {
                        let mut scenario = base;
                        scenario.density_per_km2 = density;
                        scenario.channel_count = channels;
                        let instance = scenario.instantiate(seed);
                        let schedule = instance.run_centralized();
                        verify_schedule(&instance.env, &schedule, &instance.link_demands)
                            .expect("centralized schedule must verify on every sweep cell");
                        let fdd = instance.run_protocol(ProtocolKind::Fdd);
                        verify_schedule(&instance.env, &fdd.schedule, &instance.link_demands)
                            .expect("FDD schedule must verify on every sweep cell");
                        let linear = serialized_schedule(&instance.link_demands);
                        BaseCell {
                            seed,
                            centralized: instance.metrics(&schedule),
                            fdd: instance.metrics(&fdd.schedule),
                            linear: instance.metrics(&linear),
                            schedule,
                            instance,
                        }
                    })
                    .collect();
                let bases = Rc::new(bases);
                self.offered_loads.iter().flat_map(move |&load| {
                    let bases = Rc::clone(&bases);
                    (0..bases.len()).map(move |i| {
                        let cell = &bases[i];
                        let traffic = cell.instance.run_traffic(&cell.schedule, load, horizon);
                        SweepPoint {
                            density_per_km2: density,
                            channel_count: channels,
                            seed: cell.seed,
                            interference_diameter: cell.instance.interference_diameter,
                            total_demand: cell.instance.link_demands.total_demand(),
                            centralized: cell.centralized,
                            fdd: cell.fdd,
                            linear: cell.linear,
                            traffic: TrafficPoint {
                                offered_load: load,
                                sustained_throughput_pct: traffic.sustained_throughput_pct,
                                delay_p95_slots: traffic.delay.p95_slots,
                                stable: traffic.verdict.is_stable(),
                            },
                        }
                    })
                })
            })
        })
    }

    /// Runs the centralized GreedyPhysical baseline, the FDD protocol and
    /// the serialized baseline on every cell in parallel, verifying the
    /// centralized and FDD schedules against their instance.
    ///
    /// # Panics
    ///
    /// Panics if any cell's schedule fails verification — the sweep is a
    /// measurement harness, and a verification failure means the measurement
    /// would be garbage.
    pub fn run(&self) -> Vec<SweepPoint> {
        let horizon = self.traffic_horizon_frames;
        let base = self.base;
        // The instance draw, the scheduling runs and the verifications are
        // all load-independent, so the load axis fans out *inside* each
        // (density, channel, seed) cell: a multi-load sweep schedules and
        // verifies each instance exactly once and only re-runs the (cheap)
        // traffic engine per load value.
        let triples: Vec<(f64, usize, u64)> = self
            .densities
            .iter()
            .flat_map(|&d| {
                self.channel_counts
                    .iter()
                    .flat_map(move |&c| self.seeds.iter().map(move |&s| (d, c, s)))
            })
            .collect();
        let per_triple: Vec<Vec<SweepPoint>> = triples
            .into_par_iter()
            .map(|(density, channels, seed)| {
                let mut scenario = base;
                scenario.density_per_km2 = density;
                scenario.channel_count = channels;
                let instance = scenario.instantiate(seed);
                let schedule = instance.run_centralized();
                verify_schedule(&instance.env, &schedule, &instance.link_demands)
                    .expect("centralized schedule must verify on every sweep cell");
                let fdd = instance.run_protocol(ProtocolKind::Fdd);
                verify_schedule(&instance.env, &fdd.schedule, &instance.link_demands)
                    .expect("FDD schedule must verify on every sweep cell");
                let linear = serialized_schedule(&instance.link_demands);
                let (centralized, fdd, linear) = (
                    instance.metrics(&schedule),
                    instance.metrics(&fdd.schedule),
                    instance.metrics(&linear),
                );
                self.offered_loads
                    .iter()
                    .map(|&load| {
                        let traffic = instance.run_traffic(&schedule, load, horizon);
                        SweepPoint {
                            density_per_km2: density,
                            channel_count: channels,
                            seed,
                            interference_diameter: instance.interference_diameter,
                            total_demand: instance.link_demands.total_demand(),
                            centralized,
                            fdd,
                            linear,
                            traffic: TrafficPoint {
                                offered_load: load,
                                sustained_throughput_pct: traffic.sustained_throughput_pct,
                                delay_p95_slots: traffic.delay.p95_slots,
                                stable: traffic.verdict.is_stable(),
                            },
                        }
                    })
                    .collect()
            })
            .collect();
        // Reassemble in the documented grid order (loads vary *outside* the
        // seeds): per_triple is (density, channel, seed)-ordered with loads
        // innermost.
        let mut points = Vec::with_capacity(self.len());
        for block in per_triple.chunks(self.seeds.len()) {
            for li in 0..self.offered_loads.len() {
                points.extend(block.iter().map(|cell| cell[li].clone()));
            }
        }
        points
    }
}

/// The collected result of a [`ScenarioSweep::report`] run, exportable as
/// CSV (for plotting pipelines) or as an aligned text [`Table`] (for eyes).
///
/// The per-protocol columns (centralized, FDD, serialized baseline) come
/// from one shared [`row`](Self::row) helper, so the CSV and table exports
/// can never drift apart in column count or order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-cell results in grid (density-major) order.
    pub points: Vec<SweepPoint>,
}

impl SweepReport {
    /// Column headers shared by the CSV and table exports.
    const COLUMNS: [&'static str; 16] = [
        "density_per_km2",
        "channel_count",
        "seed",
        "interference_diameter",
        "total_demand",
        "slots",
        "improvement_pct",
        "spatial_reuse",
        "patterns",
        "fdd_slots",
        "fdd_spatial_reuse",
        "fdd_vs_centralized_pct",
        "linear_slots",
        "linear_spatial_reuse",
        "offered_load",
        "sustained_throughput_pct",
    ];

    fn row(p: &SweepPoint) -> Vec<String> {
        vec![
            format!("{:.0}", p.density_per_km2),
            p.channel_count.to_string(),
            p.seed.to_string(),
            p.interference_diameter.to_string(),
            p.total_demand.to_string(),
            p.centralized.length.to_string(),
            format!("{:.2}", p.centralized.improvement_over_linear_pct),
            format!("{:.3}", p.centralized.spatial_reuse),
            p.centralized.pattern_count.to_string(),
            p.fdd.length.to_string(),
            format!("{:.3}", p.fdd.spatial_reuse),
            // A degenerate non-empty-vs-empty comparison is INFINITY and
            // renders as a literal `inf` field — never a silent 100.
            format!("{:.2}", p.fdd.length_ratio_pct(&p.centralized)),
            p.linear.length.to_string(),
            format!("{:.3}", p.linear.spatial_reuse),
            format!("{:.2}", p.traffic.offered_load),
            format!("{:.2}", p.traffic.sustained_throughput_pct),
        ]
    }

    /// Renders the report as plain comma-separated CSV — a header row plus
    /// one row per cell, fields joined by `,` and rows terminated by `\n`
    /// (no CRLF, no quoting; every field is numeric, so none is ever
    /// needed), in grid order. This is the machine-readable export the
    /// ROADMAP's dense-scenario workloads pipe into plotting tools; the
    /// exact contract is pinned by the `csv_contract_is_plain_newline_csv`
    /// test.
    pub fn to_csv(&self) -> String {
        let mut out = Self::COLUMNS.join(",");
        out.push('\n');
        for p in &self.points {
            out.push_str(&Self::row(p).join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the report as an aligned text [`Table`] with the given title.
    pub fn to_table(&self, title: impl Into<String>) -> Table {
        let mut table = Table::new(title, &Self::COLUMNS);
        for p in &self.points {
            table.push_row(Self::row(p));
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Topology;

    fn small_sweep() -> ScenarioSweep {
        ScenarioSweep::new(PaperScenario::grid(2_000.0).with_node_count(16))
            .densities(&[1_500.0, 4_000.0])
            .seeds(&[1, 2, 3])
    }

    #[test]
    fn grid_enumerates_density_major_cells() {
        let sweep = small_sweep();
        assert_eq!(sweep.len(), 6);
        assert!(!sweep.is_empty());
        let grid = sweep.grid();
        assert_eq!(grid[0], (1_500.0, 1, 0.9, 1));
        assert_eq!(grid[2], (1_500.0, 1, 0.9, 3));
        assert_eq!(grid[3], (4_000.0, 1, 0.9, 1));
    }

    #[test]
    fn grid_includes_the_channel_axis() {
        let sweep = ScenarioSweep::new(PaperScenario::grid(2_000.0).with_node_count(16))
            .densities(&[1_500.0, 4_000.0])
            .channel_counts(&[1, 2])
            .seeds(&[7, 8]);
        assert_eq!(sweep.len(), 8);
        let grid = sweep.grid();
        assert_eq!(grid[0], (1_500.0, 1, 0.9, 7));
        assert_eq!(grid[1], (1_500.0, 1, 0.9, 8));
        assert_eq!(grid[2], (1_500.0, 2, 0.9, 7));
        assert_eq!(grid[4], (4_000.0, 1, 0.9, 7));
    }

    #[test]
    fn grid_includes_the_load_axis() {
        let sweep = ScenarioSweep::new(PaperScenario::grid(2_000.0).with_node_count(16))
            .densities(&[1_500.0])
            .offered_loads(&[0.5, 1.5])
            .seeds(&[7, 8]);
        assert_eq!(sweep.len(), 4);
        let grid = sweep.grid();
        assert_eq!(grid[0], (1_500.0, 1, 0.5, 7));
        assert_eq!(grid[1], (1_500.0, 1, 0.5, 8));
        assert_eq!(grid[2], (1_500.0, 1, 1.5, 7));
        assert_eq!(grid[3], (1_500.0, 1, 1.5, 8));
    }

    #[test]
    fn parallel_sweep_is_deterministic_and_ordered() {
        let sweep = small_sweep();
        let first = sweep.run();
        let second = sweep.run();
        assert_eq!(first, second, "same grid must reproduce identical results");
        // Results come back in grid order, and the per-cell instances match a
        // sequential instantiation of the same coordinates.
        for (point, (density, channels, load, seed)) in first.iter().zip(sweep.grid()) {
            assert_eq!(point.density_per_km2, density);
            assert_eq!(point.channel_count, channels);
            assert_eq!(point.traffic.offered_load, load);
            assert_eq!(point.seed, seed);
            assert!(point.total_demand > 0);
            assert!(point.interference_diameter >= 1);
        }
    }

    #[test]
    fn parallel_matches_sequential_computation() {
        let sweep = small_sweep();
        let parallel = sweep.run();
        let sequential: Vec<SweepPoint> = sweep
            .grid()
            .into_iter()
            .map(|(density, channels, load, seed)| {
                let mut scenario = PaperScenario::grid(2_000.0).with_node_count(16);
                scenario.density_per_km2 = density;
                scenario.channel_count = channels;
                let instance = scenario.instantiate(seed);
                let schedule = instance.run_centralized();
                let fdd = instance.run_protocol(scream_core::ProtocolKind::Fdd);
                let linear = serialized_schedule(&instance.link_demands);
                let traffic = instance.run_traffic(&schedule, load, 50);
                SweepPoint {
                    density_per_km2: density,
                    channel_count: channels,
                    seed,
                    interference_diameter: instance.interference_diameter,
                    total_demand: instance.link_demands.total_demand(),
                    centralized: instance.metrics(&schedule),
                    fdd: instance.metrics(&fdd.schedule),
                    linear: instance.metrics(&linear),
                    traffic: TrafficPoint {
                        offered_load: load,
                        sustained_throughput_pct: traffic.sustained_throughput_pct,
                        delay_p95_slots: traffic.delay.p95_slots,
                        stable: traffic.verdict.is_stable(),
                    },
                }
            })
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn streaming_rows_match_run() {
        let sweep = ScenarioSweep::new(PaperScenario::grid(2_000.0).with_node_count(16))
            .densities(&[1_500.0, 4_000.0])
            .offered_loads(&[0.6, 1.2])
            .seeds(&[1, 2]);
        let materialized = sweep.run();
        let streamed: Vec<SweepPoint> = sweep.rows_streaming().collect();
        assert_eq!(streamed, materialized);
        // Laziness: taking a prefix yields exactly the first grid rows.
        let prefix: Vec<SweepPoint> = sweep.rows_streaming().take(3).collect();
        assert_eq!(prefix.as_slice(), &materialized[..3]);
    }

    #[test]
    fn run_with_exposes_the_instance_and_load() {
        let sweep =
            ScenarioSweep::new(PaperScenario::uniform(3_000.0).with_node_count(16)).seeds(&[5, 6]);
        let cells = sweep.run_with(|instance, load| {
            assert_eq!(instance.deployment.len(), 16);
            assert_eq!(load, 0.9, "the default load axis is a single 0.9 cell");
            instance.env.communication_graph().edge_count()
        });
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.value > 0));
        assert_eq!(cells[0].seed, 5);
        assert_eq!(cells[0].channel_count, 1);
        assert_eq!(cells[0].offered_load, 0.9);
    }

    #[test]
    fn load_axis_crosses_the_stability_knee() {
        let sweep = ScenarioSweep::new(PaperScenario::grid(2_000.0).with_node_count(16))
            .densities(&[1_500.0])
            .offered_loads(&[0.6, 1.5])
            .traffic_horizon(200)
            .seeds(&[3]);
        let points = sweep.run();
        assert_eq!(points.len(), 2);
        let (below, above) = (&points[0], &points[1]);
        assert_eq!(below.traffic.offered_load, 0.6);
        assert!(below.traffic.stable);
        assert!(below.traffic.sustained_throughput_pct > 98.0);
        assert_eq!(above.traffic.offered_load, 1.5);
        assert!(!above.traffic.stable);
        assert!(
            above.traffic.sustained_throughput_pct < below.traffic.sustained_throughput_pct - 5.0
        );
        assert!(above.traffic.delay_p95_slots > below.traffic.delay_p95_slots);
        // The shared row helper renders both new columns.
        let row = SweepReport::row(below);
        assert_eq!(row.len(), SweepReport::COLUMNS.len());
        assert_eq!(row[14], "0.60");
        let pct: f64 = row[15].parse().unwrap();
        assert!(pct > 98.0);
    }

    #[test]
    fn per_protocol_columns_cover_fdd_and_the_linear_baseline() {
        let sweep = ScenarioSweep::new(PaperScenario::grid(2_000.0).with_node_count(16))
            .densities(&[1_500.0])
            .seeds(&[1, 2]);
        for p in sweep.run() {
            // Theorem 4: FDD recreates the centralized schedule on
            // single-channel cells.
            assert_eq!(p.fdd.length, p.centralized.length);
            assert_eq!(p.linear.length as u64, p.total_demand);
            assert!((p.linear.spatial_reuse - 1.0).abs() < 1e-12);
            assert!(p.linear.improvement_over_linear_pct.abs() < 1e-12);
        }
    }

    #[test]
    fn multi_channel_cells_shorten_the_distributed_and_centralized_columns() {
        let base = PaperScenario::grid(2_000.0).with_node_count(16);
        let sweep = ScenarioSweep::new(base)
            .densities(&[2_500.0])
            .channel_counts(&[1, 2])
            .seeds(&[4]);
        let points = sweep.run();
        assert_eq!(points.len(), 2);
        let (single, dual) = (&points[0], &points[1]);
        assert_eq!(single.channel_count, 1);
        assert_eq!(dual.channel_count, 2);
        // Same instance draw per seed, so TD matches; the channel-aware
        // runtime tracks the channel-aware centralized schedule on every
        // cell (channel-aware Theorem 4), so both columns shrink together.
        assert_eq!(single.total_demand, dual.total_demand);
        assert!(dual.centralized.length <= single.centralized.length);
        assert!(dual.fdd.length <= single.fdd.length);
        assert_eq!(dual.fdd.length, dual.centralized.length);
        assert_eq!(dual.fdd.channels_used, dual.centralized.channels_used);
        assert!(dual.centralized.channels_used >= 1);
        // The shared row helper reports the tracking as exactly 100%.
        let row = SweepReport::row(dual);
        assert_eq!(row[11], "100.00");
    }

    #[test]
    fn csv_export_has_a_header_and_one_row_per_cell() {
        let sweep = small_sweep();
        let report = sweep.report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + sweep.len());
        assert!(lines[0].starts_with("density_per_km2,channel_count,seed,"));
        let columns = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == columns));
        // Rows come in grid order and reproduce deterministically.
        assert!(lines[1].starts_with("1500,1,1,"));
        assert_eq!(csv, sweep.report().to_csv());
        // The table export shares the same columns, kept in lockstep by the
        // shared row() helper.
        let table = report.to_table("sweep");
        assert_eq!(table.row_count(), sweep.len());
        let rendered = table.render();
        for column in SweepReport::COLUMNS {
            assert!(rendered.contains(column), "table misses column {column}");
        }
    }

    #[test]
    fn csv_contract_is_plain_newline_csv() {
        // The documented contract: `\n` row terminators (no CRLF), no quoting
        // (fields are numeric and never contain commas), header + one row per
        // cell, trailing newline.
        let report = ScenarioSweep::new(PaperScenario::grid(2_000.0).with_node_count(16))
            .seeds(&[1])
            .report();
        let csv = report.to_csv();
        assert!(!csv.contains('\r'), "rows must be \\n-terminated, not CRLF");
        assert!(!csv.contains('"'), "fields are never quoted");
        assert!(csv.ends_with('\n'));
        assert_eq!(csv.matches('\n').count(), 1 + report.points.len());
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), SweepReport::COLUMNS.len());
            assert!(line.split(',').all(|field| !field.is_empty()));
        }
    }

    #[test]
    fn paper_scale_sweep_runs_at_64_nodes() {
        // The acceptance-criteria scenario: a 64-node paper-family density
        // sweep, in parallel, deterministic per seed.
        let sweep = ScenarioSweep::new(PaperScenario::grid(2_000.0))
            .densities(&[2_000.0, 8_000.0])
            .seeds(&[7]);
        let points = sweep.run();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.seed, 7);
            assert!(p.centralized.improvement_over_linear_pct > 0.0);
        }
        assert_eq!(points, sweep.run());
        assert_eq!(
            ScenarioSweep::new(PaperScenario::grid(2_000.0))
                .base
                .topology,
            Topology::PlannedGrid
        );
    }
}
