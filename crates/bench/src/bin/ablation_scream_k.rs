//! Ablation: how the choice of K (SCREAM slots per invocation) trades
//! execution time against the safety margin over the true interference
//! diameter. The schedule itself is unaffected as long as K >= ID(G_S).
//!
//! Usage: `cargo run --release -p scream-bench --bin ablation_scream_k`

use scream_bench::{PaperScenario, Table};
use scream_core::ProtocolKind;

fn main() {
    let instance = PaperScenario::grid(5_000.0)
        .with_node_count(36)
        .instantiate(5);
    let id = instance.interference_diameter;
    let mut table = Table::new(
        format!("Ablation — K vs execution time (true ID = {id})"),
        &["K(slots)", "FDD time(s)", "schedule slots"],
    );
    for k in [id, id + 2, id + 5, id * 2, id * 4, id * 8] {
        let config = instance.protocol_config().with_scream_slots(k);
        let run = instance.run_protocol_with(ProtocolKind::Fdd, config);
        table.push_row(vec![
            k.to_string(),
            format!("{:.2}", run.execution_secs()),
            run.schedule.length().to_string(),
        ]);
    }
    println!("{table}");
}
