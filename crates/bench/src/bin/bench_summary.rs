//! Quick deterministic bench summary: times the scheduling/feasibility hot
//! paths with `std::time::Instant` (median of a few repetitions, fixed
//! instances, no randomness) and writes the results — including the
//! batched-vs-per-unit and ledger-vs-from-scratch speedup ratios, the
//! channel-ablation length ratios and the traffic engine's packets/sec on
//! the 64-link heavy-demand frame — to `BENCH_schedule.json`, so the perf
//! trajectory is tracked across PRs.
//!
//! The **resilience** section times the incremental `repair_schedule` patch
//! after a single-link failure on the 10⁵-link large-scale frame against the
//! full rebuild (the `repair_over_rebuild` ratio) and runs the
//! fault-injection acceptance scenario — a busiest-uplink failure on the
//! 64-node paper grid at load 0.8 — recording `recovery_time_slots`, the
//! post-recovery and baseline-outage delivery percentages and the
//! peak-backlog disruption cost.
//!
//! The **scale** section schedules and fully verifies a 10⁵-link
//! `large_scale` instance (streamed gains, spatially pruned ledger), records
//! `scale_schedule_links_per_sec`, measures the pruned-vs-exact ledger probe
//! ratio on a planned mid-fill slot (`scale_pruned_over_exact_probe`, the
//! ≥5× acceptance headline) and drives the traffic engine from the resulting
//! frame. The scale section runs in quick mode too, at the full 10⁵ links —
//! it *is* the CI scale smoke — only with fewer probes and a shorter traffic
//! horizon.
//!
//! Usage: `cargo run --release -p scream-bench --bin bench_summary [--quick] [output.json]`
//!
//! `--quick` shrinks the heavy-demand point from 10⁴ to 10³ units per link
//! and the repetition count, for CI smoke runs (the multi-channel
//! `channel_count > 1` cases are exercised in both modes).

use std::time::Instant;

use scream_bench::{
    heavy_demand_instance, heavy_demand_instance_on_channels, LargeScaleScenario, PaperScenario,
    RecoveryExperiment,
};
use scream_core::{DistributedScheduler, ProtocolConfig};
use scream_netsim::SlotLedger;
use scream_scheduling::{
    repair_schedule, verify_schedule, FromScratch, GreedyPhysical, RepairOutcome,
};
use scream_topology::{Link, LinkDemands};
use scream_traffic::{ArrivalProcess, FlowSet, TrafficConfig, TrafficEngine};

/// One measured operation: a name, its median wall-clock time, and how many
/// repetitions the median was taken over.
struct Measurement {
    name: &'static str,
    median_secs: f64,
    reps: usize,
}

/// Times `op` over `reps` repetitions and returns the median duration in
/// seconds (the result of each run is returned to keep the work observable).
fn time_median<T>(reps: usize, mut op: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(op());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn format_json(
    measurements: &[Measurement],
    ratios: &[(&str, f64)],
    throughputs: &[(&str, f64)],
    observability: &[(&str, f64)],
    quick: bool,
) -> String {
    let mut out = String::from("{\n  \"benchmarks\": {\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{ \"median_secs\": {:.6e}, \"reps\": {} }}{comma}\n",
            m.name, m.median_secs, m.reps
        ));
    }
    out.push_str("  },\n  \"speedup_ratios\": {\n");
    for (i, (name, ratio)) in ratios.iter().enumerate() {
        let comma = if i + 1 < ratios.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {ratio:.1}{comma}\n"));
    }
    // Absolute rates live apart from the dimensionless speedup ratios so
    // trajectory tooling over either map stays unit-consistent.
    out.push_str("  },\n  \"throughput\": {\n");
    for (i, (name, value)) in throughputs.iter().enumerate() {
        let comma = if i + 1 < throughputs.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    // Dimensionless profile counters from the scream-obs sink (an untimed
    // replay — the timed benchmarks above run sink-free).
    out.push_str("  },\n  \"observability\": {\n");
    for (i, (name, value)) in observability.iter().enumerate() {
        let comma = if i + 1 < observability.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {value:.2}{comma}\n"));
    }
    out.push_str(&format!("  }},\n  \"quick_mode\": {quick}\n}}\n"));
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| *a != "--quick")
        .cloned()
        .unwrap_or_else(|| "BENCH_schedule.json".to_string());
    let (heavy_demand, reps) = if quick { (1_000, 3) } else { (10_000, 5) };

    let mut measurements = Vec::new();

    // Heavy-demand scheduling: batched run-level placement vs the per-unit
    // baseline on the fixed 64-link instance.
    let (env, demands) = heavy_demand_instance(heavy_demand);
    eprintln!("# timing batched placement (demand {heavy_demand}/link, 64 links)...");
    let batched = time_median(reps, || {
        GreedyPhysical::paper_baseline().schedule(&env, &demands)
    });
    measurements.push(Measurement {
        name: "greedy_batched_heavy",
        median_secs: batched,
        reps,
    });
    eprintln!("# timing per-unit baseline (same instance)...");
    let per_unit_reps = if quick { 1 } else { 3 };
    let per_unit = time_median(per_unit_reps, || {
        GreedyPhysical::paper_baseline().schedule_per_unit(&env, &demands)
    });
    measurements.push(Measurement {
        name: "greedy_per_unit_heavy",
        median_secs: per_unit,
        reps: per_unit_reps,
    });

    // Run-length verification of the million-scale schedule (batched path's
    // output) — pays per pattern, so this is near-instant at any demand.
    let schedule = GreedyPhysical::paper_baseline().schedule(&env, &demands);
    eprintln!(
        "# timing verification ({} slots, {} patterns)...",
        schedule.length(),
        schedule.pattern_count()
    );
    let verify = time_median(reps, || {
        verify_schedule(&env, &schedule, &demands).expect("batched schedule verifies")
    });
    measurements.push(Measurement {
        name: "verify_compact_heavy",
        median_secs: verify,
        reps,
    });

    // Paper-scenario end-to-end scheduling: ledger-backed vs from-scratch
    // feasibility on a 36-node fig6-style instance (the schedule_grid bench's
    // comparison, in deterministic quick form).
    let instance = PaperScenario::grid(2_000.0)
        .with_node_count(36)
        .instantiate(1);
    eprintln!("# timing fig6-style centralized scheduling (ledger vs from-scratch)...");
    let ledger = time_median(reps, || instance.run_centralized());
    measurements.push(Measurement {
        name: "fig6_centralized_ledger",
        median_secs: ledger,
        reps,
    });
    let from_scratch = time_median(reps, || {
        GreedyPhysical::paper_baseline()
            .schedule(&FromScratch(&instance.env), &instance.link_demands)
    });
    measurements.push(Measurement {
        name: "fig6_centralized_from_scratch",
        median_secs: from_scratch,
        reps,
    });

    // Channel ablation: the channel-aware scheduler on the same 64-link
    // instance with 2 and 4 orthogonal channels. The recorded ratios are
    // single-channel length over C-channel length (≈ C when the schedule
    // shrinks by the full 1/C, the acceptance regime).
    let single_length = schedule.length() as f64;
    let mut channel_ratios = Vec::new();
    for (channels, measurement_name, ratio_name) in [
        (
            2usize,
            "greedy_batched_heavy_c2",
            "channel_ablation_length_c2",
        ),
        (4, "greedy_batched_heavy_c4", "channel_ablation_length_c4"),
    ] {
        let (env_c, demands_c) = heavy_demand_instance_on_channels(heavy_demand, channels);
        eprintln!("# timing channel-aware placement ({channels} channels, same instance)...");
        let timed = time_median(reps, || {
            GreedyPhysical::paper_baseline().schedule(&env_c, &demands_c)
        });
        let multi = GreedyPhysical::paper_baseline().schedule(&env_c, &demands_c);
        verify_schedule(&env_c, &multi, &demands_c).expect("multi-channel schedule verifies");
        measurements.push(Measurement {
            name: measurement_name,
            median_secs: timed,
            reps,
        });
        channel_ratios.push((ratio_name, single_length / multi.length().max(1) as f64));
    }

    // Distributed channel ablation: the channel-aware FDD runtime on the
    // same 64-link instance. The runtime executes one round per slot, so the
    // FDD cells run at a moderate demand (the acceptance instance's 100
    // slots/link; 50 in quick mode) — the recorded ratios are FDD's own
    // single-channel length over its C-channel length, which the
    // channel-aware Theorem 4 pins at exactly C on this instance.
    let fdd_demand: u64 = if quick { 50 } else { 100 };
    let fdd_reps = 1;
    let mut fdd_lengths = Vec::new();
    for (channels, measurement_name) in [
        (1usize, "fdd_heavy_c1"),
        (2, "fdd_heavy_c2"),
        (4, "fdd_heavy_c4"),
    ] {
        let (env_c, demands_c) = heavy_demand_instance_on_channels(fdd_demand, channels);
        let config =
            ProtocolConfig::paper_default().with_scream_slots(env_c.interference_diameter().max(5));
        eprintln!("# timing distributed FDD ({channels} channels, demand {fdd_demand}/link)...");
        // The run is deterministic and dominates this binary's wall clock,
        // so time it once and keep the result instead of re-executing it for
        // verification.
        let start = Instant::now();
        let run = std::hint::black_box(
            DistributedScheduler::fdd()
                .with_config(config)
                .run(&env_c, &demands_c)
                .expect("FDD completes on the heavy-demand instance"),
        );
        let timed = start.elapsed().as_secs_f64();
        verify_schedule(&env_c, &run.schedule, &demands_c)
            .expect("distributed multi-channel schedule verifies");
        measurements.push(Measurement {
            name: measurement_name,
            median_secs: timed,
            reps: fdd_reps,
        });
        fdd_lengths.push(run.schedule.length());
    }
    let fdd_single = fdd_lengths[0] as f64;
    let fdd_channel_ratios = [
        (
            "fdd_channel_length_c2",
            fdd_single / fdd_lengths[1].max(1) as f64,
        ),
        (
            "fdd_channel_length_c4",
            fdd_single / fdd_lengths[2].max(1) as f64,
        ),
    ];

    // Traffic engine: packets/sec through the 64-link heavy-demand frame
    // (demand 100/link -> a 1200-slot frame), every link loaded to 90% of
    // its per-frame service share with deterministic arrivals. The engine is
    // event-driven over the run-length frame, so the measured rate is
    // per-packet cost, independent of frame length.
    let (traffic_env, traffic_demands) = heavy_demand_instance(100);
    let traffic_frame = GreedyPhysical::paper_baseline().schedule(&traffic_env, &traffic_demands);
    let frame_slots = traffic_frame.length() as u64;
    let traffic_flows = FlowSet::single_hop(traffic_demands.demanded_links().map(|(link, d)| {
        let share = d as f64 / frame_slots as f64;
        (link, ArrivalProcess::deterministic(0.9 * share))
    }));
    let traffic_horizon: u64 = if quick { 50 } else { 200 };
    eprintln!(
        "# timing traffic engine ({frame_slots}-slot frame, 64 links at 90% load, \
         {traffic_horizon} frames)..."
    );
    let traffic_engine = TrafficEngine::on_schedule(
        &traffic_frame,
        traffic_flows,
        TrafficConfig::new(traffic_horizon),
    )
    .expect("the heavy-demand frame serves every flow");
    let traffic_report = traffic_engine.run();
    // The frame serves each link in one contiguous window, so a steady
    // in-flight population of up to ~one frame's packets is part of stable
    // operation; the delivered fraction approaches 100% as the horizon
    // grows (98%+ already at the quick horizon).
    assert!(
        traffic_report.verdict.is_stable() && traffic_report.sustained_throughput_pct > 98.0,
        "the 90%-load heavy-demand run must be stable: {traffic_report}"
    );
    let traffic_secs = time_median(reps, || traffic_engine.run());
    measurements.push(Measurement {
        name: "traffic_engine_heavy",
        median_secs: traffic_secs,
        reps,
    });
    let traffic_packets_per_sec = traffic_report.delivered as f64 / traffic_secs.max(1e-12);

    // Million-link scale (the `large_scale` family): schedule and fully
    // verify a 10⁵-link streamed-gain instance — the ROADMAP's scale
    // acceptance case, run in quick mode too so CI smokes it — and measure
    // the spatially-pruned ledger against the exact ledger probe for probe
    // on one greedy-filled slot.
    let scale_links: usize = 100_000;
    let (scale_env, scale_demands) =
        LargeScaleScenario::with_target_links(scale_links).instantiate();
    eprintln!(
        "# timing large-scale schedule ({scale_links} links, streamed gains, pruned ledger)..."
    );
    let start = Instant::now();
    let scale_schedule =
        std::hint::black_box(GreedyPhysical::paper_baseline().schedule(&scale_env, &scale_demands));
    let scale_schedule_secs = start.elapsed().as_secs_f64();
    measurements.push(Measurement {
        name: "scale_schedule_100k",
        median_secs: scale_schedule_secs,
        reps: 1,
    });
    eprintln!(
        "# timing large-scale verification ({} slots, {} patterns)...",
        scale_schedule.length(),
        scale_schedule.pattern_count()
    );
    let start = Instant::now();
    verify_schedule(&scale_env, &scale_schedule, &scale_demands)
        .expect("the large-scale schedule verifies");
    let scale_verify_secs = start.elapsed().as_secs_f64();
    measurements.push(Measurement {
        name: "scale_verify_100k",
        median_secs: scale_verify_secs,
        reps: 1,
    });
    let scale_schedule_links_per_sec = scale_links as f64 / scale_schedule_secs.max(1e-12);

    // Incremental frame repair at scale: fail one of the 10⁵ links and shift
    // its demand onto a surviving link, then patch the run-length schedule
    // with `repair_schedule` (strip + deficit placement + probe
    // verification). Against a full GreedyPhysical rebuild — which is what
    // `scale_schedule_100k` measures on a same-size target — the patch skips
    // the per-link first-fit placement entirely, the asymptotic win that
    // makes mid-run rescheduling viable at scale.
    let scale_repair_target = {
        let links: Vec<(Link, u64)> = scale_demands.demanded_links().collect();
        let (&(dead_link, dead_demand), surviving) =
            links.split_first().expect("the scale instance has links");
        let mut target = surviving.to_vec();
        target.last_mut().expect("surviving links remain").1 += dead_demand;
        eprintln!("# timing incremental repair at scale (link {dead_link} fails)...");
        let (scale_columns, scale_rows) =
            LargeScaleScenario::with_target_links(scale_links).grid_dimensions();
        LinkDemands::from_links(scale_columns * scale_rows, &target)
            .expect("the surviving links are distinct and in range")
    };
    let start = Instant::now();
    let scale_repaired = std::hint::black_box(repair_schedule(
        &scale_env,
        &scale_schedule,
        &scale_repair_target,
    ));
    let scale_repair_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        scale_repaired.outcome,
        RepairOutcome::Incremental,
        "the single-link repair must take the probe-verified incremental path"
    );
    measurements.push(Measurement {
        name: "repair_incremental_100k",
        median_secs: scale_repair_secs,
        reps: 1,
    });

    // Probe benchmark: build one mid-fill slot — a planned reuse lattice
    // (every 3rd column pair × every 6th row ≈ 1.5 km spacing, thousands of
    // links, every one admitted by `can_add` with healthy SINR slack) — then
    // answer the same can_add probes (an even sample of the instance's
    // links) through the pruned and the exact ledger. A greedy-*maximal*
    // slot would be the wrong subject here: hard-threshold packing drives
    // the binding link's slack to float dust, after which every probe
    // region-wide is a trivial near-field reject and both paths collapse to
    // small constant cost. The planned 80 %-load slot is the regime the
    // scheduler's inner loop actually spends its time in. The verdicts must
    // agree probe for probe — the ≥5× headline is only meaningful if the
    // fast path changes nothing.
    let scale_link_list: Vec<Link> = scale_demands.demanded_links().map(|(l, _)| l).collect();
    let scale_scenario = LargeScaleScenario::with_target_links(scale_links);
    let (scale_columns, scale_rows) = scale_scenario.grid_dimensions();
    let scale_pairs = scale_columns / 2;
    let mut pruned_slot = SlotLedger::new(&scale_env);
    for row in (0..scale_rows).step_by(6) {
        for pair in (0..scale_pairs).step_by(3) {
            let idx = row * scale_pairs + pair;
            if idx < scale_link_list.len() && pruned_slot.can_add(scale_link_list[idx]) {
                pruned_slot.assign(scale_link_list[idx]);
            }
        }
    }
    let mut exact_slot = SlotLedger::exact(&scale_env);
    for &l in pruned_slot.links() {
        exact_slot.assign(l);
    }
    let probe_count = if quick { 500 } else { 2_000 };
    let stride = (scale_link_list.len() / probe_count).max(1);
    let probes: Vec<Link> = scale_link_list.iter().copied().step_by(stride).collect();
    let agree = probes
        .iter()
        .all(|&l| pruned_slot.can_add(l) == exact_slot.can_add(l));
    assert!(agree, "pruned and exact probes must agree on every link");
    eprintln!(
        "# timing {} slot probes against a {}-link slot (pruned vs exact)...",
        probes.len(),
        pruned_slot.len()
    );
    let probe_reps = 3;
    let probe_pruned = time_median(probe_reps, || {
        probes.iter().filter(|&&l| pruned_slot.can_add(l)).count()
    });
    measurements.push(Measurement {
        name: "scale_probe_pruned",
        median_secs: probe_pruned,
        reps: probe_reps,
    });
    let probe_exact = time_median(probe_reps, || {
        probes.iter().filter(|&&l| exact_slot.can_add(l)).count()
    });
    measurements.push(Measurement {
        name: "scale_probe_exact",
        median_secs: probe_exact,
        reps: probe_reps,
    });

    // Observability profile: replay the greedy construction through the
    // scream-obs sink and read the dust-slack headline off the registry —
    // probe rejects per link (how many occupied runs the first-fit scan
    // burns before a slot admits each link) and the pruned ledger's
    // far-field hit rate (screens resolved by the aggregate far-field
    // bound without an exact interference sum). The replay is untimed and
    // runs *after* the timed benchmarks, so every committed perf number
    // stays sink-free. Full mode profiles the committed 10⁵-link instance;
    // quick mode profiles a 10⁴-link draw of the same family so CI can
    // smoke the keys without doubling its longest step.
    let obs_profile_links: usize = if quick { 10_000 } else { scale_links };
    eprintln!(
        "# profiling schedule construction through scream-obs \
         ({obs_profile_links} links, untimed)..."
    );
    // Trace capacity 0: the profile wants registry totals only, so every
    // event is counted and dropped without retaining the ring.
    scream_obs::install_with_capacity(0);
    if quick {
        let (obs_env, obs_demands) =
            LargeScaleScenario::with_target_links(obs_profile_links).instantiate();
        std::hint::black_box(GreedyPhysical::paper_baseline().schedule(&obs_env, &obs_demands));
    } else {
        std::hint::black_box(GreedyPhysical::paper_baseline().schedule(&scale_env, &scale_demands));
    }
    let obs_snapshot = scream_obs::uninstall()
        .expect("the profile sink was installed above")
        .snapshot;
    let probe_rejects_per_link = obs_snapshot.counter("ledger.probe.reject") as f64
        / obs_snapshot.counter("greedy.links").max(1) as f64;
    let farfield_hits = obs_snapshot.counter("ledger.farfield.accept")
        + obs_snapshot.counter("ledger.farfield.skip_existing");
    let exact_fallbacks = obs_snapshot.counter("ledger.exact.fallback")
        + obs_snapshot.counter("ledger.exact.fallback_existing");
    let farfield_screens = farfield_hits + exact_fallbacks;
    let farfield_hit_rate_pct = if farfield_screens == 0 {
        0.0
    } else {
        farfield_hits as f64 / farfield_screens as f64 * 100.0
    };

    // Traffic at scale: the 10⁵-link schedule as a repeating TDMA frame,
    // every link loaded single-hop to 90% of its per-frame share. The engine
    // is event-driven, so the frame's link count only enters through the
    // hash-indexed setup — this pins that the setup stays O(links).
    let scale_frame_slots = scale_schedule.length() as u64;
    let scale_flows = FlowSet::single_hop(scale_demands.demanded_links().map(|(link, d)| {
        let share = d as f64 / scale_frame_slots as f64;
        (link, ArrivalProcess::deterministic(0.9 * share))
    }));
    let scale_horizon: u64 = if quick { 2 } else { 5 };
    eprintln!(
        "# timing traffic engine at scale ({scale_frame_slots}-slot frame, {scale_links} links, \
         {scale_horizon} frames)..."
    );
    let scale_engine = TrafficEngine::on_schedule(
        &scale_schedule,
        scale_flows,
        TrafficConfig::new(scale_horizon),
    )
    .expect("the large-scale frame serves every link");
    let start = Instant::now();
    let scale_traffic_report = std::hint::black_box(scale_engine.run());
    let scale_traffic_secs = start.elapsed().as_secs_f64();
    assert!(
        scale_traffic_report.verdict.is_stable(),
        "90% load on the large-scale frame must be analytically stable"
    );
    measurements.push(Measurement {
        name: "scale_traffic_100k",
        median_secs: scale_traffic_secs,
        reps: 1,
    });
    let scale_traffic_packets_per_sec =
        scale_traffic_report.delivered as f64 / scale_traffic_secs.max(1e-12);

    // Online recovery on the paper 64-node grid at load 0.8 — the acceptance
    // scenario: a seeded busiest-uplink failure at a quarter of the horizon.
    // The no-repair baseline goes Overloaded and strands packets for the rest
    // of the run; the rescheduler reroutes around the dead link, patches the
    // frame and must restore a Stable verdict with near-100% sustained
    // delivery. The delivery ratio counts the backlog carried into the
    // post-recovery window, so it is <= 100 by construction and its
    // shortfall from 100 is the in-flight pipeline at the horizon — a
    // fixed cost that weighs more over the shorter quick-mode window,
    // hence the mode-dependent floor.
    let recovery_frames: u64 = if quick { 20 } else { 40 };
    let recovery_floor_pct = if quick { 97.5 } else { 98.5 };
    eprintln!(
        "# running fault-injection recovery (64-node paper grid, load 0.8, \
         {recovery_frames} frame repetitions)..."
    );
    let recovery_instance = PaperScenario::grid(2_000.0).instantiate(7);
    let recovery_experiment = RecoveryExperiment::from_instance(&recovery_instance);
    let start = Instant::now();
    let recovery =
        std::hint::black_box(recovery_experiment.single_link_outage(0.8, recovery_frames));
    let recovery_secs = start.elapsed().as_secs_f64();
    measurements.push(Measurement {
        name: "recovery_single_link_64",
        median_secs: recovery_secs,
        reps: 1,
    });
    assert!(
        !recovery.baseline_stable,
        "the no-repair baseline must stay Overloaded after the failure"
    );
    assert!(
        recovery.stable,
        "the rescheduler must end the run with a Stable verdict"
    );
    assert!(
        recovery.post_recovery_delivery_pct >= recovery_floor_pct
            && recovery.post_recovery_delivery_pct <= 100.0,
        "sustained post-recovery delivery must reach {:.1}%: {:.2}%",
        recovery_floor_pct,
        recovery.post_recovery_delivery_pct
    );
    let recovery_time_slots = recovery
        .time_to_recover_slots
        .expect("the repair arm must recover within the horizon")
        as f64;

    let throughputs = [
        ("traffic_packets_per_sec", traffic_packets_per_sec),
        ("scale_schedule_links_per_sec", scale_schedule_links_per_sec),
        (
            "scale_traffic_packets_per_sec",
            scale_traffic_packets_per_sec,
        ),
        ("recovery_time_slots", recovery_time_slots),
        (
            "recovery_post_delivery_pct",
            recovery.post_recovery_delivery_pct,
        ),
        (
            "baseline_outage_delivery_pct",
            recovery.baseline_outage_delivery_pct,
        ),
        (
            "recovery_peak_backlog",
            recovery.disruption_peak_backlog as f64,
        ),
    ];

    let mut ratios = vec![
        ("batched_over_per_unit", per_unit / batched.max(1e-12)),
        ("ledger_over_from_scratch", from_scratch / ledger.max(1e-12)),
        (
            "scale_pruned_over_exact_probe",
            probe_exact / probe_pruned.max(1e-12),
        ),
        (
            "repair_over_rebuild",
            scale_schedule_secs / scale_repair_secs.max(1e-12),
        ),
    ];
    ratios.extend(channel_ratios);
    ratios.extend(fdd_channel_ratios);
    let observability = [
        ("probe_rejects_per_link", probe_rejects_per_link),
        ("farfield_hit_rate_pct", farfield_hit_rate_pct),
        ("obs_profile_links", obs_profile_links as f64),
    ];
    for (name, ratio) in &ratios {
        eprintln!("# {name}: {ratio:.1}x");
    }
    for (name, value) in &throughputs {
        eprintln!("# {name}: {value:.1}");
    }
    for (name, value) in &observability {
        eprintln!("# {name}: {value:.2}");
    }

    let json = format_json(&measurements, &ratios, &throughputs, &observability, quick);
    std::fs::write(&out_path, &json).expect("writing the bench summary file");
    eprintln!("# wrote {out_path}");
    print!("{json}");
}
