//! Checks the interference-diameter characterization of Section IV-B
//! (Theorems 2 and 3, plus the infinite-density discussion) on concrete
//! instances and prints measured ID(G) against the analytical bounds.
//!
//! Usage: `cargo run --release -p scream-bench --bin theory_id_bounds`

use scream_analysis::DiameterObservation;
use scream_bench::Table;

fn main() {
    let mut table = Table::new(
        "Section IV-B — interference diameter vs. analytical bounds",
        &[
            "scenario",
            "n",
            "rho",
            "ID(G)",
            "bound",
            "sqrt(n/rho)",
            "within bound",
        ],
    );
    let mut observations = Vec::new();
    for side in [4usize, 8, 12, 16, 20, 24] {
        observations.push(("grid", DiameterObservation::square_grid(side, 100.0)));
    }
    for (n, seed) in [(64usize, 1u64), (128, 2), (256, 3), (512, 4)] {
        observations.push(("uniform", DiameterObservation::random_uniform(n, seed)));
    }
    observations.push((
        "infinite-density",
        DiameterObservation::infinite_density(500.0, 25.0, 200.0),
    ));
    for (name, obs) in observations {
        table.push_row(vec![
            name.to_string(),
            obs.node_count.to_string(),
            format!("{:.1}", obs.neighbor_density),
            obs.interference_diameter.to_string(),
            format!("{:.1}", obs.theoretical_bound),
            format!("{:.1}", obs.sqrt_n_over_rho),
            obs.respects_bound().to_string(),
        ]);
    }
    println!("{table}");
}
