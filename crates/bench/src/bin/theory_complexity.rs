//! Checks Theorem 5's complexity bound and Theorem 4's FDD/GreedyPhysical
//! equivalence on concrete instances.
//!
//! Usage: `cargo run --release -p scream-bench --bin theory_complexity`

use scream_analysis::{ComplexityReport, EquivalenceReport};
use scream_bench::Table;

fn main() {
    let report = ComplexityReport::on_grids(&[4, 6, 8], 150.0, true, 11);
    let mut table = Table::new(
        "Theorem 5 — measured synchronized steps vs. TD * ID * n * log n",
        &["protocol", "n", "TD", "ID", "steps", "bound", "utilization"],
    );
    for obs in &report.observations {
        table.push_row(vec![
            obs.protocol.clone(),
            obs.node_count.to_string(),
            obs.total_demand.to_string(),
            obs.interference_diameter.to_string(),
            obs.measured_steps.to_string(),
            format!("{:.0}", obs.theorem_bound),
            format!("{:.4}", obs.utilization_of_bound()),
        ]);
    }
    println!("{table}");

    let grid = EquivalenceReport::on_grid_instances(6, 150.0, 5, 101);
    let uniform = EquivalenceReport::on_uniform_instances(36, 900.0, 5, 202);
    let mut eq_table = Table::new(
        "Theorem 4 — FDD schedule equals centralized GreedyPhysical",
        &["scenario", "instances", "identical", "rate"],
    );
    for (name, rep) in [("grid", &grid), ("uniform", &uniform)] {
        eq_table.push_row(vec![
            name.to_string(),
            rep.outcomes.len().to_string(),
            rep.outcomes
                .iter()
                .filter(|o| o.identical)
                .count()
                .to_string(),
            format!("{:.2}", rep.equivalence_rate()),
        ]);
    }
    println!("{eq_table}");
}
