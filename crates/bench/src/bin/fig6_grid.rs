//! Regenerates Figure 6: schedule-length improvement over the serialized
//! schedule for the planned grid topology, across node densities.
//!
//! Usage: `cargo run --release -p scream-bench --bin fig6_grid [runs_per_point]`

use scream_bench::figures::{fig6_grid_improvement, improvement_table};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let densities = [
        1_000.0, 2_500.0, 5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0,
    ];
    eprintln!(
        "# fig6: 64-node planned grid, 4 gateways, demand U[1,10], {runs} run(s) per density"
    );
    let rows = fig6_grid_improvement(&densities, 64, runs, 2024);
    println!(
        "{}",
        improvement_table(
            "Fig. 6 — Schedule Length Improvement for Grid (planned, homogeneous power)",
            &rows
        )
    );
}
