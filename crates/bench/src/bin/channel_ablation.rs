//! Channel-ablation figure: schedule length of the channel-aware centralized
//! scheduler on the fixed 64-link heavy-demand instance, per channel count,
//! against the ideal `ceil(L1 / C)` shrink — optionally alongside the
//! channel-aware distributed FDD runtime on the same cells.
//!
//! Usage: `cargo run --release -p scream-bench --bin channel_ablation
//! [demand_per_link] [--fdd]`
//!
//! The instance's 64 links are pairwise endpoint-disjoint, so slot conflicts
//! are purely SINR-driven — the regime where orthogonal channels multiply
//! capacity. The acceptance bar (pinned by the
//! `channel_ablation_shrinks_the_schedule_by_one_over_c` test) is a ratio of
//! at most 1.1 versus the ideal for C ∈ {2, 4}; with `--fdd` the distributed
//! runtime is executed and verified per cell and tracks the centralized
//! column slot for slot (channel-aware Theorem 4, pinned by
//! `distributed_fdd_reproduces_the_exact_one_over_c_shrink`). The FDD run
//! costs one protocol round per slot, so pair `--fdd` with a moderate demand
//! (e.g. 100) rather than the 10⁴ default.

use scream_bench::figures::{channel_ablation, channel_ablation_table, channel_ablation_with_fdd};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let with_fdd = args.iter().any(|a| a == "--fdd");
    let demand_per_link: u64 = args
        .iter()
        .find(|a| *a != "--fdd")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let rows = if with_fdd {
        channel_ablation_with_fdd(demand_per_link, &[1, 2, 4, 8])
    } else {
        channel_ablation(demand_per_link, &[1, 2, 4, 8])
    };
    println!("{}", channel_ablation_table(demand_per_link, &rows));
}
