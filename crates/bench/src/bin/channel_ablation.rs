//! Channel-ablation figure: schedule length of the channel-aware centralized
//! scheduler on the fixed 64-link heavy-demand instance, per channel count,
//! against the ideal `ceil(L1 / C)` shrink.
//!
//! Usage: `cargo run --release -p scream-bench --bin channel_ablation [demand_per_link]`
//!
//! The instance's 64 links are pairwise endpoint-disjoint, so slot conflicts
//! are purely SINR-driven — the regime where orthogonal channels multiply
//! capacity. The acceptance bar (pinned by the
//! `channel_ablation_shrinks_the_schedule_by_one_over_c` test) is a ratio of
//! at most 1.1 versus the ideal for C ∈ {2, 4}.

use scream_bench::figures::{channel_ablation, channel_ablation_table};

fn main() {
    let demand_per_link: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let rows = channel_ablation(demand_per_link, &[1, 2, 4, 8]);
    println!("{}", channel_ablation_table(demand_per_link, &rows));
}
