//! Parallel density sweep of the 64-node paper grid scenario via
//! [`ScenarioSweep`]: the verified centralized baseline, the FDD protocol
//! and the serialized baseline per (density, channel, seed) cell, across all
//! cores, with deterministic grid-ordered output.
//!
//! Usage:
//! `cargo run --release -p scream-bench --bin sweep_grid [seeds_per_density] [--channels 1,2,4] [--csv]`
//!
//! With `--csv` the cells are emitted as machine-readable CSV (via
//! [`SweepReport::to_csv`](scream_bench::SweepReport::to_csv)) instead of
//! the aligned table, ready to pipe into a plotting tool or commit as a data
//! artifact. `--channels` adds the channel-ablation axis to the grid.

use std::time::Instant;

use scream_bench::{PaperScenario, ScenarioSweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let channels: Vec<usize> = match args.iter().position(|a| a == "--channels") {
        Some(i) => args
            .get(i + 1)
            .expect("--channels requires a comma-separated list, e.g. --channels 1,2,4")
            .split(',')
            .map(|c| c.parse().expect("--channels takes a comma-separated list"))
            .collect(),
        None => vec![1],
    };
    let mut skip_next = false;
    let seeds_per_density: u64 = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--channels" {
                skip_next = true;
                return false;
            }
            *a != "--csv"
        })
        .find_map(|s| s.parse().ok())
        .unwrap_or(3);
    let densities = [1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0];
    let seeds: Vec<u64> = (1..=seeds_per_density).collect();
    let sweep = ScenarioSweep::new(PaperScenario::grid(1_000.0))
        .densities(&densities)
        .channel_counts(&channels)
        .seeds(&seeds);
    eprintln!(
        "# sweep_grid: {} cells (density x channel x load x seed), 64-node planned grid, all cores",
        sweep.len()
    );
    let start = Instant::now();
    let report = sweep.report();
    let elapsed = start.elapsed();

    if csv {
        print!("{}", report.to_csv());
        return;
    }
    println!(
        "{}",
        report.to_table(format!(
            "Parallel density sweep — centralized / FDD / linear ({} cells in {:.2}s)",
            report.points.len(),
            elapsed.as_secs_f64()
        ))
    );
}
