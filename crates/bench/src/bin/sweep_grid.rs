//! Parallel density sweep of the 64-node paper grid scenario via
//! [`ScenarioSweep`]: the verified centralized baseline per (density, seed)
//! cell, across all cores, with deterministic grid-ordered output.
//!
//! Usage: `cargo run --release -p scream-bench --bin sweep_grid [seeds_per_density]`

use std::time::Instant;

use scream_bench::{PaperScenario, ScenarioSweep, Table};

fn main() {
    let seeds_per_density: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let densities = [1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0];
    let seeds: Vec<u64> = (1..=seeds_per_density).collect();
    let sweep = ScenarioSweep::new(PaperScenario::grid(1_000.0))
        .densities(&densities)
        .seeds(&seeds);
    eprintln!(
        "# sweep_grid: {} cells (density x seed), 64-node planned grid, all cores",
        sweep.len()
    );
    let start = Instant::now();
    let points = sweep.run();
    let elapsed = start.elapsed();

    let mut table = Table::new(
        format!(
            "Parallel density sweep — centralized baseline ({} cells in {:.2}s)",
            points.len(),
            elapsed.as_secs_f64()
        ),
        &[
            "density(nodes/km2)",
            "seed",
            "ID",
            "TD",
            "slots",
            "improvement(%)",
            "reuse",
        ],
    );
    for p in &points {
        table.push_row(vec![
            format!("{:.0}", p.density_per_km2),
            p.seed.to_string(),
            p.interference_diameter.to_string(),
            p.total_demand.to_string(),
            p.centralized.length.to_string(),
            format!("{:.1}", p.centralized.improvement_over_linear_pct),
            format!("{:.2}", p.centralized.spatial_reuse),
        ]);
    }
    println!("{table}");
}
