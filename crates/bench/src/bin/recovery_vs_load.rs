//! The recovery-vs-load figure: the busiest-uplink single-link failure on
//! the paper grid, with and without the online rescheduler, across
//! offered-load factors. Shows graceful degradation: the no-repair baseline
//! goes (and stays) Overloaded the moment the link dies, while the
//! rescheduler reroutes, patches the frame incrementally and returns to
//! Stable — with the time-to-recover and disruption cost per load.
//!
//! Usage: `cargo run --release -p scream-bench --bin recovery_vs_load
//!         [node_count] [horizon_frames] [seed] [--csv]`

use scream_bench::{recovery_vs_load, RecoveryReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let mut numbers = args.iter().filter(|a| *a != "--csv");
    let node_count: usize = numbers.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let horizon_frames: u64 = numbers.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let seed: u64 = numbers.next().and_then(|s| s.parse().ok()).unwrap_or(2024);
    let loads = [0.5, 0.6, 0.7, 0.8, 0.9];
    eprintln!(
        "# recovery_vs_load: {node_count}-node paper grid, busiest-uplink failure at \
         T/4, {horizon_frames} frame repetitions, seed {seed}"
    );
    let report = RecoveryReport {
        points: recovery_vs_load(&loads, node_count, seed, horizon_frames),
    };
    if csv {
        print!("{}", report.to_csv());
    } else {
        println!(
            "{}",
            report
                .to_table(
                    "Recovery vs. offered load — single-link failure, \
                     no-repair baseline vs rescheduler"
                )
                .render()
        );
    }
}
