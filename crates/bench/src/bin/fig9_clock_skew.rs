//! Regenerates Figure 9: protocol execution time versus the clock-skew bound
//! (both axes logarithmic in the paper).
//!
//! Usage: `cargo run --release -p scream-bench --bin fig9_clock_skew`

use scream_bench::figures::{clock_skew_table, fig9_clock_skew};

fn main() {
    let skews = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];
    eprintln!("# fig9: 64-node grid at 5000 nodes/km^2, sweeping the clock-skew bound");
    let rows = fig9_clock_skew(&skews, 64, 99);
    println!("{}", clock_skew_table(&rows));
}
