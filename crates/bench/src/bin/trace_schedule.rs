//! Traces one `GreedyPhysical` run on the paper's 64-node grid through the
//! `scream-obs` sink: install the sink, build and verify the schedule, then
//! print what the instrumentation saw.
//!
//! Two modes share one deterministic run:
//!
//! * default — human-readable tables: every counter, gauge and histogram in
//!   the final [`Snapshot`](scream_obs::Snapshot), plus the derived probe
//!   profile (rejects per link, far-field hit rate, trace-ring fill);
//! * `--json` — the slot-clock trace as JSONL (one event object per line,
//!   stamped with slot/round/epoch/probe — never a wall clock), terminated
//!   by one `{"snapshot": ...}` line with the full registry. Byte-identical
//!   across runs of the same seed; CI smoke-diffs two runs.
//!
//! Usage: `cargo run --release -p scream-bench --bin trace_schedule
//! [--json] [seed]` (default seed 7).

use scream_bench::{PaperScenario, Table};
use scream_scheduling::{verify_schedule, GreedyPhysical};

fn main() {
    let mut json = false;
    let mut seed: u64 = 7;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if let Ok(parsed) = arg.parse() {
            seed = parsed;
        } else {
            eprintln!("usage: trace_schedule [--json] [seed]");
            std::process::exit(2);
        }
    }

    let instance = PaperScenario::grid(2_000.0).instantiate(seed);
    eprintln!(
        "# trace_schedule: {} nodes, seed {}, {} links to schedule",
        instance.deployment.len(),
        instance.seed,
        instance.link_demands.links().len(),
    );

    scream_obs::install();
    let schedule = GreedyPhysical::paper_baseline().schedule(&instance.env, &instance.link_demands);
    verify_schedule(&instance.env, &schedule, &instance.link_demands)
        .expect("the traced paper-grid schedule verifies");
    let report = scream_obs::uninstall().expect("the sink was installed above");

    if json {
        // Trace first, registry last — all of it deterministic, so two
        // same-seed runs diff clean.
        print!("{}", report.trace_jsonl());
        println!("{{\"snapshot\":{}}}", report.snapshot.to_json());
        return;
    }

    let mut counters = Table::new("Counters", &["name", "value"]);
    for (name, value) in &report.snapshot.counters {
        counters.push_row(vec![(*name).to_string(), value.to_string()]);
    }
    println!("{}", counters.render());

    let mut gauges = Table::new("Gauges", &["name", "value"]);
    for (name, value) in &report.snapshot.gauges {
        gauges.push_row(vec![(*name).to_string(), value.to_string()]);
    }
    println!("{}", gauges.render());

    let mut histograms = Table::new("Histograms", &["name", "count", "min", "mean", "max"]);
    for (name, h) in &report.snapshot.histograms {
        histograms.push_row(vec![
            (*name).to_string(),
            h.count.to_string(),
            h.min.to_string(),
            format!("{:.2}", h.mean()),
            h.max.to_string(),
        ]);
    }
    println!("{}", histograms.render());

    let links = report.snapshot.counter("greedy.links").max(1);
    let rejects = report.snapshot.counter("ledger.probe.reject");
    let farfield = report.snapshot.counter("ledger.farfield.accept");
    let exact = report.snapshot.counter("ledger.exact.fallback");
    let screened = farfield + exact;
    let mut derived = Table::new("Derived probe profile", &["metric", "value"]);
    derived.push_row(vec![
        "probe_rejects_per_link".to_string(),
        format!("{:.2}", rejects as f64 / links as f64),
    ]);
    derived.push_row(vec![
        "farfield_hit_rate_pct".to_string(),
        if screened == 0 {
            // The dense 64-node instance probes exactly; the pruned
            // far-field path only engages on spatially indexed instances.
            "n/a (exact probes only)".to_string()
        } else {
            format!("{:.2}", farfield as f64 / screened as f64 * 100.0)
        },
    ]);
    derived.push_row(vec![
        "trace_events_retained".to_string(),
        report.trace.len().to_string(),
    ]);
    derived.push_row(vec![
        "trace_events_dropped".to_string(),
        report.dropped_events.to_string(),
    ]);
    derived.push_row(vec![
        "schedule_slots".to_string(),
        schedule.length().to_string(),
    ]);
    derived.push_row(vec![
        "schedule_patterns".to_string(),
        schedule.pattern_count().to_string(),
    ]);
    println!("{}", derived.render());
}
