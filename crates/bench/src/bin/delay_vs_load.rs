//! The delay-vs-load figure: end-to-end packet delay and sustained
//! throughput of the Centralized, FDD and PDD (p = 0.8) frames on the paper
//! grid scenario, across offered-load factors — the stability knee made
//! visible. `load = 1` is the centralized frame's exact capacity; FDD's
//! knee coincides (Theorem 4), PDD's arrives earlier because its frame is
//! longer.
//!
//! Usage: `cargo run --release -p scream-bench --bin delay_vs_load
//!         [node_count] [horizon_frames] [seed]`

use scream_bench::figures::{delay_vs_load, delay_vs_load_table};

fn main() {
    let mut args = std::env::args().skip(1);
    let node_count: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let horizon_frames: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(150);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2024);
    let loads = [0.5, 0.7, 0.85, 0.95, 1.0, 1.05, 1.2, 1.5];
    eprintln!(
        "# delay_vs_load: {node_count}-node paper grid, demand U[1,10], \
         {horizon_frames} frame repetitions per cell, seed {seed}"
    );
    let rows = delay_vs_load(&loads, node_count, seed, horizon_frames);
    println!("{}", delay_vs_load_table(&rows).render());
}
