//! Ablation: PDD activation probability sweep beyond the paper's
//! {0.2, 0.6, 0.8}, reporting schedule quality and execution time.
//!
//! Usage: `cargo run --release -p scream-bench --bin ablation_pdd_prob`

use scream_bench::{PaperScenario, Table};
use scream_core::ProtocolKind;

fn main() {
    let instance = PaperScenario::grid(5_000.0)
        .with_node_count(64)
        .instantiate(17);
    let centralized = instance.metrics(&instance.run_centralized());
    let mut table = Table::new(
        format!(
            "Ablation — PDD activation probability (centralized improvement {:.1}%)",
            centralized.improvement_over_linear_pct
        ),
        &["p", "improvement(%)", "time(s)", "tried fraction"],
    );
    for p in [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let run = instance.run_protocol(ProtocolKind::pdd_unchecked(p));
        let metrics = run.metrics(&instance.link_demands);
        table.push_row(vec![
            format!("{p:.2}"),
            format!("{:.1}", metrics.improvement_over_linear_pct),
            format!("{:.2}", run.execution_secs()),
            format!("{:.2}", run.stats.tried_fraction()),
        ]);
    }
    println!("{table}");
}
