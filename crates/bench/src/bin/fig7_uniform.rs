//! Regenerates Figure 7: schedule-length improvement for the unplanned
//! uniform-random topology with heterogeneous transmit power.
//!
//! Usage: `cargo run --release -p scream-bench --bin fig7_uniform [runs_per_point]`

use scream_bench::figures::{fig7_uniform_improvement, improvement_table};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let densities = [
        1_000.0, 2_500.0, 5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0,
    ];
    eprintln!(
        "# fig7: 64-node unplanned placement, heterogeneous power, {runs} run(s) per density"
    );
    let rows = fig7_uniform_improvement(&densities, 64, runs, 4048);
    println!(
        "{}",
        improvement_table(
            "Fig. 7 — Schedule Length Improvement for Uniform Random Placement (unplanned, heterogeneous power)",
            &rows
        )
    );
}
