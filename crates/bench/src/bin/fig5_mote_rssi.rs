//! Regenerates Figure 5: the monitor's moving-average RSSI trace for 24-byte
//! SCREAMs (Section V).
//!
//! Usage: `cargo run --release -p scream-bench --bin fig5_mote_rssi`

use scream_bench::figures::{fig5_rssi_trace, rssi_trace_table};
use scream_netsim::SimTime;

fn main() {
    eprintln!("# fig5: moving average of the monitor's RSSI, 24-byte SCREAMs, 400 ms window");
    let trace = fig5_rssi_trace(24, SimTime::from_millis(400), 3);
    println!("{}", rssi_trace_table(&trace));
}
