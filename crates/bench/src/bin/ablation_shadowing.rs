//! Ablation: sensitivity of the schedule-length improvement to the log-normal
//! shadowing standard deviation (the paper fixes a log-normal model with path
//! loss 3 but does not report sigma).
//!
//! Usage: `cargo run --release -p scream-bench --bin ablation_shadowing`

use scream_bench::{PaperScenario, Table};
use scream_core::ProtocolKind;

fn main() {
    let mut table = Table::new(
        "Ablation — shadowing sigma vs schedule-length improvement (64-node grid, 5000 nodes/km^2)",
        &["sigma(dB)", "Centralized(%)", "FDD(%)", "PDD p=0.6(%)"],
    );
    for sigma in [0.0, 2.0, 4.0, 6.0, 8.0] {
        let instance = PaperScenario::grid(5_000.0)
            .with_shadowing(sigma)
            .instantiate(23);
        let centralized = instance.metrics(&instance.run_centralized());
        let fdd = instance
            .run_protocol(ProtocolKind::Fdd)
            .metrics(&instance.link_demands);
        let pdd = instance
            .run_protocol(ProtocolKind::pdd_unchecked(0.6))
            .metrics(&instance.link_demands);
        table.push_values(
            format!("{sigma:.1}"),
            &[
                centralized.improvement_over_linear_pct,
                fdd.improvement_over_linear_pct,
                pdd.improvement_over_linear_pct,
            ],
        );
    }
    println!("{table}");
}
