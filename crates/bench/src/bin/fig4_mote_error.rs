//! Regenerates Figure 4: SCREAM detection error versus SCREAM size on the
//! simulated Mica2 mote testbed (Section V).
//!
//! Usage: `cargo run --release -p scream-bench --bin fig4_mote_error [screams_per_run]`

use scream_bench::figures::{fig4_mote_detection, mote_detection_table};

fn main() {
    let screams: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let sizes = [2usize, 4, 6, 8, 10, 12, 15, 20, 24, 28, 32, 40];
    eprintln!("# fig4: 1 initiator + 6 relays + 1 monitor, {screams} SCREAMs per point");
    let points = fig4_mote_detection(&sizes, screams, 7);
    println!("{}", mote_detection_table(&points));
}
