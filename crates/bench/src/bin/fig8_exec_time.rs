//! Regenerates Figure 8: protocol execution time versus SCREAM size and
//! versus the interference-diameter parameter K.
//!
//! Usage: `cargo run --release -p scream-bench --bin fig8_exec_time`

use scream_bench::figures::{execution_time_table, fig8_execution_time};

fn main() {
    let scream_sizes = [5usize, 10, 15, 20, 30, 40, 50, 60];
    let diameters = [5usize, 10, 15, 20, 30, 40, 50, 60];
    eprintln!("# fig8: 64-node grid at 5000 nodes/km^2, sweeping SCREAM size and K");
    let (by_size, by_diameter) = fig8_execution_time(&scream_sizes, &diameters, 64, 77);
    println!(
        "{}",
        execution_time_table(
            "Fig. 8a — Execution Time vs. SCREAM size",
            "scream(bytes)",
            &by_size
        )
    );
    println!(
        "{}",
        execution_time_table(
            "Fig. 8b — Execution Time vs. Interference Diameter (K)",
            "K(slots)",
            &by_diameter
        )
    );
}
