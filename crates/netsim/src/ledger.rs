//! The interference ledger: incremental slot-feasibility state.
//!
//! Every feasibility decision in the system — the GreedyPhysical first-fit
//! loop, schedule verification, and the distributed PDD/FDD/AFDD runtime —
//! ultimately asks the same question: *can this link join this slot without
//! breaking anyone's two-way handshake?* Answering it from scratch costs
//! O(k²) received-power lookups per probe (every link re-checked against
//! every other), which made slot feasibility the hottest quadratic path in
//! the workspace.
//!
//! [`SlotLedger`] exploits the additive structure of the physical model:
//! the only slot-dependent quantity in a link's SINR is the *sum* of
//! interfering received powers at its two receivers. The ledger caches, per
//! scheduled link,
//!
//! * its data- and ACK-direction signal powers (slot-independent), and
//! * the cumulative interference power at its data receiver (the tail, from
//!   the other links' heads) and at its ACK receiver (the head, from the
//!   other links' tails),
//!
//! so that [`can_add`](SlotLedger::can_add) is an O(k) pass of
//! one-multiplication margin checks and [`assign`](SlotLedger::assign) an
//! O(k) accumulator update — no `Vec` cloning, no from-scratch SINR
//! recomputation. The distributed runtime's batched variant
//! ([`probe`](SlotLedger::probe)) prices a whole tentative active set in
//! O((k + a)·a) instead of O((k + a)²).
//!
//! # Spatial pruning
//!
//! At 10⁵–10⁶ links even the O(k) `can_add` pass dominates: a slot holds
//! thousands of links, nearly all of them geometrically irrelevant to any
//! one candidate. A default-constructed ledger on a deployment wider than
//! the far-field cutoff therefore threads an [`EndpointBuckets`] spatial
//! index (cells sized from the environment's
//! [far-field cutoff](RadioEnvironment::far_field)) through the feasibility
//! probe (deployments that fit inside one cutoff disc skip the index — every
//! link is "near", so it could never pay for itself; see
//! [`SlotLedger::new`]):
//!
//! * the candidate's two interference sums are taken over the assigned
//!   endpoints within the cutoff disc only, visited in Chebyshev rings so a
//!   doomed candidate is **rejected** as soon as its nearby partial sum
//!   already exceeds the admissible interference;
//! * the (≤ `unit_mw`-each) far endpoints are replaced by one aggregated
//!   upper bound, which **accepts** the candidate when even that
//!   overestimate keeps both directions above β;
//! * assigned links are re-checked individually only when an endpoint of
//!   theirs lies inside the candidate's cutoff disc, provided the slot-wide
//!   worst SINR ratio has more than the far-field unit's worth of headroom.
//!
//! Every screen carries a 10⁻⁹ relative margin — about six orders of
//! magnitude beyond any floating-point rearrangement between a partial sum
//! and the exact accumulation — and anything inside the margin band falls
//! back to the exact O(k) computation, so **pruned and exact verdicts are
//! identical**, not merely close: [`SlotLedger::exact`] /
//! [`ChannelSlotLedger::exact`] disable pruning and the
//! `pruned_ledger_matches_exact_*` property tests pin decision-for-decision
//! agreement (and byte-identical schedules) between the two. [`assign`]
//! itself stays exact, so the cached sums, margins and feasibility state
//! never depend on pruning at all.
//!
//! [`assign`]: SlotLedger::assign
//!
//! # Fidelity to the from-scratch computation
//!
//! The ledger mirrors [`RadioEnvironment::handshake_ok`] exactly, including
//! the interferer-exclusion rule of [`RadioEnvironment::sinr_linear`] (an
//! interferer equal to the transmitter or receiver of the link under test is
//! skipped), so ledger decisions and from-scratch decisions agree on every
//! slot — a property pinned down by the `ledger_matches_from_scratch_*`
//! property tests in `tests/properties.rs`. The one caveat is inherent to
//! floating point: interference sums are accumulated in link-insertion order
//! rather than re-summed in slot order, so a sum can differ from the
//! from-scratch value in its last ulp. A feasibility decision could in
//! principle flip on an instance engineered to sit within one ulp of the
//! SINR threshold β; the seed's own `can_add`/`verify` pair had the same
//! exposure (it, too, summed in two different orders), and no drawn instance
//! gets anywhere near it.

use std::cell::Cell;

use scream_topology::{Link, NodeId};

use crate::environment::{FarField, RadioEnvironment};
use crate::radio::ChannelId;
use crate::spatial::{entry_is_head, entry_link, EndpointBuckets, GridGeometry};

/// Relative margin separating the conservative spatial screens from the
/// exact threshold comparisons. Floating-point rearrangement between a
/// bucket-order partial sum and the assignment-order exact sum perturbs a
/// quotient by ~10⁻¹⁵ relative; any verdict closer than 10⁻⁹ to the
/// threshold is re-derived through the exact code path instead.
const VERDICT_MARGIN: f64 = 1e-9;

/// Per-link SINR slack relative to the threshold β, in dB.
///
/// Positive margins mean the handshake direction succeeds with that much
/// room; a negative margin identifies the failing direction and by how much
/// it misses. Reported by schedule verification for infeasible slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSinrMargin {
    /// The link the margins belong to.
    pub link: Link,
    /// SINR slack of the data sub-slot (head → tail), in dB.
    pub data_margin_db: f64,
    /// SINR slack of the ACK sub-slot (tail → head), in dB.
    pub ack_margin_db: f64,
}

impl LinkSinrMargin {
    /// Whether both handshake directions meet the threshold.
    pub fn ok(&self) -> bool {
        self.data_margin_db >= 0.0 && self.ack_margin_db >= 0.0
    }
}

impl std::fmt::Display for LinkSinrMargin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: data {:+.2} dB, ack {:+.2} dB",
            self.link, self.data_margin_db, self.ack_margin_db
        )
    }
}

/// Result of pricing a tentative active set against a ledger slot
/// (see [`SlotLedger::probe`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerProbe {
    /// Whether every already-scheduled ledger link still completes its
    /// handshake when the tentative links transmit concurrently. `false`
    /// corresponds to the SCREAM veto of the distributed protocols.
    pub existing_ok: bool,
    /// Per-tentative-link handshake outcome against the ledger links and all
    /// other tentative links, in input order.
    pub tentative_ok: Vec<bool>,
}

/// Incremental interference state of one STDMA slot under construction.
///
/// See the [module docs](self) for the representation; in short, the ledger
/// holds, per assigned link, its two signal powers and the running sums of
/// interference at its two receivers, plus an endpoint-occupancy table for
/// O(1) half-duplex checks.
#[derive(Debug, Clone)]
pub struct SlotLedger<'a> {
    env: &'a RadioEnvironment,
    /// Cached linear SINR threshold β.
    beta: f64,
    /// Cached noise floor in milliwatts.
    noise_mw: f64,
    links: Vec<Link>,
    /// Signal power of the data direction (head → tail), per link, mW.
    data_signal: Vec<f64>,
    /// Signal power of the ACK direction (tail → head), per link, mW.
    ack_signal: Vec<f64>,
    /// Cumulative interference at each link's tail from the other links'
    /// heads (data sub-slot denominator minus noise), mW.
    data_interference: Vec<f64>,
    /// Cumulative interference at each link's head from the other links'
    /// tails (ACK sub-slot denominator minus noise), mW.
    ack_interference: Vec<f64>,
    /// How many assigned links touch each node (half-duplex occupancy).
    endpoint_uses: Vec<u32>,
    /// Whether every pair of assigned links is endpoint-disjoint and no
    /// assigned link is a self-link.
    disjoint: bool,
    /// Spatial pruning state; `None` for an [`exact`](Self::exact) ledger.
    pruning: Option<Pruning>,
}

/// How a [`SlotLedger`] decides whether to build spatial-pruning state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PruningMode {
    /// Prune iff the deployment extent exceeds the far-field cutoff.
    Auto,
    /// Always prune (tests and benchmarks of the pruned path itself).
    Forced,
    /// Never prune (the exact reference).
    Off,
}

/// Spatial-pruning state of a [`SlotLedger`]: the far-field parameters, the
/// endpoint bucket index, and the slot-wide SINR headroom that licenses
/// skipping far links in the existing-links re-check.
#[derive(Debug, Clone)]
struct Pruning {
    far: FarField,
    buckets: EndpointBuckets,
    /// Minimum over assigned links and both handshake directions of the
    /// cached SINR ratio `signal / (noise + interference)`; `+∞` when empty.
    /// Maintained by [`SlotLedger::assign`]/[`SlotLedger::clear`].
    min_sinr: f64,
}

/// Interference contribution of `interferer` transmitting towards `link`'s
/// data receiver, honoring the exclusion rule of
/// [`RadioEnvironment::sinr_linear`]: a node never interferes with a
/// transmission it is itself the transmitter or receiver of.
#[inline]
fn data_term(env: &RadioEnvironment, interferer_head: NodeId, link: Link) -> Option<f64> {
    if interferer_head == link.head || interferer_head == link.tail {
        None
    } else {
        Some(env.received_power_mw(interferer_head, link.tail))
    }
}

/// Interference contribution of `interferer` (an ACK transmitter, i.e. a
/// tail) towards `link`'s ACK receiver, with the same exclusion rule.
#[inline]
fn ack_term(env: &RadioEnvironment, interferer_tail: NodeId, link: Link) -> Option<f64> {
    if interferer_tail == link.tail || interferer_tail == link.head {
        None
    } else {
        Some(env.received_power_mw(interferer_tail, link.head))
    }
}

impl<'a> SlotLedger<'a> {
    /// Opens an empty ledger over the given environment. Spatial pruning is
    /// enabled when the deployment's extent exceeds the far-field cutoff —
    /// the only case where a probe can ever skip an interferer — and is
    /// skipped otherwise, because on a deployment that fits inside one
    /// cutoff disc every link is "near" and the bucket index is pure
    /// overhead (it costs the small-instance ledger its edge over the
    /// from-scratch path). Either way decisions are identical to an
    /// [`exact`](Self::exact) ledger's; use [`pruned`](Self::pruned) to
    /// force the pruned probe path regardless of extent.
    pub fn new(env: &'a RadioEnvironment) -> Self {
        Self::with_pruning(env, PruningMode::Auto)
    }

    /// Opens an empty ledger with spatial pruning forced on (extent
    /// heuristic bypassed) — for equivalence tests and benchmarks that must
    /// exercise the pruned probe path on instances of any size.
    pub fn pruned(env: &'a RadioEnvironment) -> Self {
        Self::with_pruning(env, PruningMode::Forced)
    }

    /// Opens an empty ledger with spatial pruning disabled: every probe sums
    /// all assigned interferers. The reference implementation the pruned
    /// path is equivalence-tested (and benchmarked) against.
    pub fn exact(env: &'a RadioEnvironment) -> Self {
        Self::with_pruning(env, PruningMode::Off)
    }

    fn with_pruning(env: &'a RadioEnvironment, mode: PruningMode) -> Self {
        let pruning = if mode == PruningMode::Off {
            None
        } else {
            let far = env.far_field();
            // A non-positive cutoff means nothing transmits; pruning would
            // only add overhead (and a degenerate grid).
            (far.cutoff_m > 0.0
                && (mode == PruningMode::Forced || {
                    let (xs, ys) = env.positions();
                    let span = |vs: &[f64]| {
                        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                        for &v in vs {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        (hi - lo).max(0.0)
                    };
                    let (dx, dy) = (span(xs), span(ys));
                    dx * dx + dy * dy > far.cutoff_sq_m2
                }))
            .then(|| {
                let (xs, ys) = env.positions();
                // Half-cutoff cells keep the disc scan to a few rings while
                // giving the ring-order early exit useful granularity.
                let geometry = GridGeometry::covering(xs, ys, far.cutoff_m / 2.0);
                Pruning {
                    far,
                    buckets: EndpointBuckets::new(geometry),
                    min_sinr: f64::INFINITY,
                }
            })
        };
        Self {
            env,
            beta: env.config().sinr_threshold_linear(),
            noise_mw: env.config().noise_floor_mw(),
            links: Vec::new(),
            data_signal: Vec::new(),
            ack_signal: Vec::new(),
            data_interference: Vec::new(),
            ack_interference: Vec::new(),
            endpoint_uses: vec![0; env.node_count()],
            disjoint: true,
            pruning,
        }
    }

    /// Whether this ledger prunes its feasibility probes spatially.
    pub fn is_pruned(&self) -> bool {
        self.pruning.is_some()
    }

    /// Opens an empty ledger with all per-link buffers pre-sized for `slots`
    /// of up to `capacity` links — the allocation-free lifecycle entry point
    /// for callers that [`clear`](Self::clear) and refill one ledger many
    /// times (the verifier across slots, the runtime across rounds).
    pub fn with_capacity(env: &'a RadioEnvironment, capacity: usize) -> Self {
        let mut ledger = Self::new(env);
        ledger.links.reserve(capacity);
        ledger.data_signal.reserve(capacity);
        ledger.ack_signal.reserve(capacity);
        ledger.data_interference.reserve(capacity);
        ledger.ack_interference.reserve(capacity);
        ledger
    }

    /// Builds a ledger containing `links`, assigned in the given order.
    pub fn with_links(env: &'a RadioEnvironment, links: &[Link]) -> Self {
        let mut ledger = Self::new(env);
        for &link in links {
            ledger.assign(link);
        }
        ledger
    }

    /// Empties the ledger in O(k) without releasing any buffer, so one ledger
    /// (and its `endpoint_uses` table) can be reused across many slots. After
    /// `clear` the ledger is indistinguishable from a freshly
    /// [`new`](Self::new)-opened one.
    pub fn clear(&mut self) {
        for link in &self.links {
            self.endpoint_uses[link.head.index()] -= 1;
            self.endpoint_uses[link.tail.index()] -= 1;
        }
        self.links.clear();
        self.data_signal.clear();
        self.ack_signal.clear();
        self.data_interference.clear();
        self.ack_interference.clear();
        self.disjoint = true;
        if let Some(p) = &mut self.pruning {
            p.buckets.clear();
            p.min_sinr = f64::INFINITY;
        }
    }

    /// The environment this ledger prices interference against.
    pub fn environment(&self) -> &'a RadioEnvironment {
        self.env
    }

    /// The links assigned so far, in assignment order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of assigned links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether no link has been assigned yet.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether `link` is already assigned. Screened through the endpoint
    /// occupancy table first: a link whose endpoints are both idle cannot be
    /// in the slot, which turns the common negative answer into O(1) instead
    /// of an O(k) scan (the difference between quadratic and linear run
    /// scans in the greedy scheduler at 10⁵ links).
    pub fn contains(&self, link: Link) -> bool {
        let used = |node: NodeId| {
            self.endpoint_uses
                .get(node.index())
                .is_some_and(|&uses| uses > 0)
        };
        if !used(link.head) || !used(link.tail) {
            return false;
        }
        self.links.contains(&link)
    }

    /// Whether neither endpoint of `link` is used by an assigned link
    /// (the half-duplex precondition for adding it).
    pub fn endpoints_free(&self, link: Link) -> bool {
        self.endpoint_uses[link.head.index()] == 0 && self.endpoint_uses[link.tail.index()] == 0
    }

    /// Whether `candidate` can join the slot: it must not be a self-link,
    /// must not share an endpoint with any assigned link, its own two-way
    /// handshake must survive the slot's accumulated interference, and its
    /// interference must not push any assigned link below the SINR threshold.
    ///
    /// Equivalent to [`RadioEnvironment::can_add_to_slot`] on the assigned
    /// link list, but O(k) instead of O(k²) and allocation-free — and on a
    /// default (pruned) ledger O(nearby) instead of O(k), with a verdict
    /// identical to the exact computation (see the [module docs](self)).
    pub fn can_add(&self, candidate: Link) -> bool {
        scream_obs::next_probe();
        if candidate.head == candidate.tail || !self.endpoints_free(candidate) {
            scream_obs::counter_add("ledger.probe.reject", 1);
            scream_obs::counter_add("ledger.probe.reject_endpoint", 1);
            return false;
        }
        let verdict = match &self.pruning {
            Some(p) if !self.links.is_empty() => self.can_add_pruned(p, candidate),
            _ => self.candidate_handshake_exact(candidate) && self.existing_ok_exact(candidate),
        };
        scream_obs::counter_add(
            if verdict {
                "ledger.probe.accept"
            } else {
                "ledger.probe.reject"
            },
            1,
        );
        verdict
    }

    /// The candidate's own two-way handshake against the accumulated slot,
    /// summed exactly in assignment order.
    fn candidate_handshake_exact(&self, candidate: Link) -> bool {
        let (cand_data_intf, cand_ack_intf) = self.interference_on(candidate);
        self.meets_beta(
            self.env.received_power_mw(candidate.head, candidate.tail),
            cand_data_intf,
        ) && self.meets_beta(
            self.env.received_power_mw(candidate.tail, candidate.head),
            cand_ack_intf,
        )
    }

    /// Every assigned link's handshake with the candidate's contribution
    /// added on top of its cached interference sums.
    fn existing_ok_exact(&self, candidate: Link) -> bool {
        for (i, &link) in self.links.iter().enumerate() {
            let data_extra = data_term(self.env, candidate.head, link).unwrap_or(0.0);
            let ack_extra = ack_term(self.env, candidate.tail, link).unwrap_or(0.0);
            if !self.meets_beta(self.data_signal[i], self.data_interference[i] + data_extra)
                || !self.meets_beta(self.ack_signal[i], self.ack_interference[i] + ack_extra)
            {
                return false;
            }
        }
        true
    }

    /// The spatially-pruned feasibility probe. Self-link and half-duplex
    /// screens have already passed, so no assigned link shares an endpoint
    /// with the candidate and every interferer-exclusion test below is
    /// vacuously `Some` — each of the slot's `k` heads contributes to the
    /// candidate's data sum and each of its `k` tails to the ACK sum.
    ///
    /// Soundness of each screen (why verdicts cannot differ from
    /// [`exact`](Self::exact)):
    ///
    /// * **reject** — the nearby partial sum is a lower bound (up to
    ///   reordering ulps) on the exact interference, so exceeding the
    ///   admissible interference by [`VERDICT_MARGIN`] relative means the
    ///   exact check fails too;
    /// * **accept** — `near + far_count × unit_mw` is an upper bound (the
    ///   far-field unit bounds every beyond-cutoff term), so clearing β by
    ///   the margin means the exact check passes too;
    /// * **far-links skip** — every far link gains at most `unit_mw`
    ///   interference, so when the worst cached SINR ratio exceeds
    ///   `β · (1 + unit/noise)` by the margin, every far link's exact
    ///   re-check passes; nearby links are re-checked with the exact
    ///   expressions themselves;
    /// * anything not decided by a screen falls through to the exact code.
    fn can_add_pruned(&self, p: &Pruning, candidate: Link) -> bool {
        let data_signal = self.env.received_power_mw(candidate.head, candidate.tail);
        let ack_signal = self.env.received_power_mw(candidate.tail, candidate.head);
        // An interference-free failure fails a fortiori with interference.
        if !self.meets_beta(data_signal, 0.0) || !self.meets_beta(ack_signal, 0.0) {
            return false;
        }
        let far_links_surely_ok = p.min_sinr
            >= self.beta * (1.0 + p.far.unit_mw / self.noise_mw) * (1.0 + VERDICT_MARGIN);

        // Scan A — disc around the candidate's tail. In-disc *heads* feed
        // the candidate's data-direction near sum; each one's link also gets
        // its exact ACK-margin re-check (its head is close enough to the
        // candidate's tail for the ACK extra to exceed the far-field unit).
        let Some((data_near_sum, data_near_count)) = self.scan_disc(
            p,
            candidate,
            self.env.position(candidate.tail),
            true,
            data_signal,
            far_links_surely_ok,
        ) else {
            scream_obs::counter_add("ledger.prune.scan_reject", 1);
            return false;
        };
        // Scan B — disc around the candidate's head: in-disc *tails* feed
        // the ACK near sum and trigger their links' exact data re-checks.
        let Some((ack_near_sum, ack_near_count)) = self.scan_disc(
            p,
            candidate,
            self.env.position(candidate.head),
            false,
            ack_signal,
            far_links_surely_ok,
        ) else {
            scream_obs::counter_add("ledger.prune.scan_reject", 1);
            return false;
        };

        let k = self.links.len();
        let data_upper = data_near_sum + (k - data_near_count) as f64 * p.far.unit_mw;
        let ack_upper = ack_near_sum + (k - ack_near_count) as f64 * p.far.unit_mw;
        let candidate_ok = if self.surely_meets_beta(data_signal, data_upper)
            && self.surely_meets_beta(ack_signal, ack_upper)
        {
            scream_obs::counter_add("ledger.farfield.accept", 1);
            true
        } else {
            scream_obs::counter_add("ledger.exact.fallback", 1);
            self.candidate_handshake_exact(candidate)
        };
        if !candidate_ok {
            return false;
        }
        // Nearby links were re-checked during the scans (a failure returned
        // early); far links are pre-cleared by the headroom screen, or the
        // whole set is re-checked exactly.
        if far_links_surely_ok {
            scream_obs::counter_add("ledger.farfield.skip_existing", 1);
            true
        } else {
            scream_obs::counter_add("ledger.exact.fallback_existing", 1);
            self.existing_ok_exact(candidate)
        }
    }

    /// Ring-scans the bucket index over the cutoff disc at `center`,
    /// returning the candidate's near interference sum and the number of
    /// in-disc endpoints of role `want_head`, or `None` as soon as either
    /// the partial sum already surely rejects the candidate (checked after
    /// each Chebyshev ring, nearest — loudest — cells first) or an in-disc
    /// link fails its exact margin re-check.
    #[allow(clippy::too_many_arguments)]
    fn scan_disc(
        &self,
        p: &Pruning,
        candidate: Link,
        center: scream_topology::Point2,
        want_head: bool,
        signal_mw: f64,
        check_in_disc_links: bool,
    ) -> Option<(f64, usize)> {
        let geometry = p.buckets.geometry();
        let rect = geometry.cells_intersecting(center, p.far.cutoff_m);
        let near_sum = Cell::new(0.0f64);
        let near_count = Cell::new(0usize);
        let link_failed = Cell::new(false);
        let scanned_entries = Cell::new(0u64);
        rect.visit_rings(
            geometry.cell_of(center),
            |cx, cy| {
                if link_failed.get() {
                    return;
                }
                for &entry in p.buckets.entries(geometry.cell_index(cx, cy)) {
                    scanned_entries.set(scanned_entries.get() + 1);
                    if entry_is_head(entry) != want_head {
                        continue;
                    }
                    let i = entry_link(entry);
                    let link = self.links[i];
                    let node = if want_head { link.head } else { link.tail };
                    if self.env.position(node).distance_squared(center) > p.far.cutoff_sq_m2 {
                        continue;
                    }
                    near_sum.set(
                        near_sum.get()
                            + self.env.received_power_mw(node, {
                                if want_head {
                                    candidate.tail
                                } else {
                                    candidate.head
                                }
                            }),
                    );
                    near_count.set(near_count.get() + 1);
                    if check_in_disc_links {
                        // Exact re-check of the disc link's opposite
                        // direction — the same expression the exact
                        // existing-links loop evaluates.
                        let ok = if want_head {
                            let ack_extra = ack_term(self.env, candidate.tail, link).unwrap_or(0.0);
                            self.meets_beta(
                                self.ack_signal[i],
                                self.ack_interference[i] + ack_extra,
                            )
                        } else {
                            let data_extra =
                                data_term(self.env, candidate.head, link).unwrap_or(0.0);
                            self.meets_beta(
                                self.data_signal[i],
                                self.data_interference[i] + data_extra,
                            )
                        };
                        if !ok {
                            link_failed.set(true);
                            return;
                        }
                    }
                }
            },
            || link_failed.get() || self.surely_fails_beta(signal_mw, near_sum.get()),
        );
        scream_obs::observe("ledger.scan.entries", scanned_entries.get());
        if link_failed.get() || self.surely_fails_beta(signal_mw, near_sum.get()) {
            return None;
        }
        Some((near_sum.get(), near_count.get()))
    }

    /// Adds `link` to the slot, updating every cached interference sum in
    /// O(k). The link is *not* required to pass [`can_add`](Self::can_add):
    /// the greedy scheduler deliberately opens slots around links that are
    /// infeasible even alone (the verifier reports them), and the
    /// distributed runtime seals whatever its handshakes admitted.
    pub fn assign(&mut self, link: Link) {
        if link.head == link.tail || !self.endpoints_free(link) {
            self.disjoint = false;
        }
        let (data_intf, ack_intf) = self.interference_on(link);
        for (i, &existing) in self.links.iter().enumerate() {
            if let Some(term) = data_term(self.env, link.head, existing) {
                self.data_interference[i] += term;
            }
            if let Some(term) = ack_term(self.env, link.tail, existing) {
                self.ack_interference[i] += term;
            }
        }
        self.endpoint_uses[link.head.index()] += 1;
        self.endpoint_uses[link.tail.index()] += 1;
        self.links.push(link);
        self.data_signal
            .push(self.env.received_power_mw(link.head, link.tail));
        self.ack_signal
            .push(self.env.received_power_mw(link.tail, link.head));
        self.data_interference.push(data_intf);
        self.ack_interference.push(ack_intf);
        if let Some(p) = &mut self.pruning {
            p.buckets.insert(
                (self.links.len() - 1) as u32,
                self.env.position(link.head),
                self.env.position(link.tail),
            );
            // Every cached interference sum may have grown, so the slot-wide
            // headroom is recomputed over the (just-updated) caches — an O(k)
            // pass folded into the already-O(k) assign.
            let mut min_sinr = f64::INFINITY;
            for i in 0..self.links.len() {
                min_sinr = min_sinr
                    .min(self.data_signal[i] / (self.noise_mw + self.data_interference[i]))
                    .min(self.ack_signal[i] / (self.noise_mw + self.ack_interference[i]));
            }
            p.min_sinr = min_sinr;
        }
    }

    /// Whether assigned link `i` currently completes both handshake
    /// directions.
    pub fn link_ok(&self, i: usize) -> bool {
        self.meets_beta(self.data_signal[i], self.data_interference[i])
            && self.meets_beta(self.ack_signal[i], self.ack_interference[i])
    }

    /// Whether every assigned link currently completes its handshake.
    pub fn all_links_ok(&self) -> bool {
        (0..self.links.len()).all(|i| self.link_ok(i))
    }

    /// Whether the assigned set is a feasible slot in the sense of
    /// [`RadioEnvironment::slot_feasible`]: pairwise endpoint-disjoint, no
    /// self-links, and every handshake above threshold.
    pub fn slot_feasible(&self) -> bool {
        self.disjoint && self.all_links_ok()
    }

    /// Prices a tentative active set against the slot without mutating it:
    /// each tentative link's handshake is evaluated against the assigned
    /// links *and* the other tentative links, and the assigned links are
    /// re-checked under the tentative links' added interference, in
    /// O((k + a) · a) work for `a` tentative links instead of the
    /// O((k + a)²) of re-deriving every SINR from scratch.
    ///
    /// This is a *pure SINR* check mirroring
    /// [`RadioEnvironment::handshake_ok`] exactly — which means it shares
    /// that function's blind spot: a tentative link sharing an endpoint with
    /// a slot link can "pass", because the interferer-exclusion rule skips
    /// the shared node precisely when it is busy with its own packet.
    /// Schedulers claiming slot membership must use
    /// [`probe_claims`](Self::probe_claims), which adds the half-duplex
    /// screen; this raw variant exists for analysis and for cross-checking
    /// against the from-scratch handshake computation.
    pub fn probe(&self, tentative: &[Link]) -> LedgerProbe {
        // Assigned links: cached sums plus the tentative contributions.
        let mut existing_ok = true;
        for (i, &link) in self.links.iter().enumerate() {
            let mut data = self.data_interference[i];
            let mut ack = self.ack_interference[i];
            for &t in tentative {
                if let Some(term) = data_term(self.env, t.head, link) {
                    data += term;
                }
                if let Some(term) = ack_term(self.env, t.tail, link) {
                    ack += term;
                }
            }
            if !self.meets_beta(self.data_signal[i], data)
                || !self.meets_beta(self.ack_signal[i], ack)
            {
                existing_ok = false;
                break;
            }
        }
        // Tentative links: ledger interference plus the other tentatives'.
        let tentative_ok = tentative
            .iter()
            .map(|&t| {
                let (mut data, mut ack) = self.interference_on(t);
                for &other in tentative {
                    if other == t {
                        continue;
                    }
                    if let Some(term) = data_term(self.env, other.head, t) {
                        data += term;
                    }
                    if let Some(term) = ack_term(self.env, other.tail, t) {
                        ack += term;
                    }
                }
                self.meets_beta(self.env.received_power_mw(t.head, t.tail), data)
                    && self.meets_beta(self.env.received_power_mw(t.tail, t.head), ack)
            })
            .collect();
        LedgerProbe {
            existing_ok,
            tentative_ok,
        }
    }

    /// The slot-claim check: [`probe`](Self::probe) plus the half-duplex
    /// screen. A tentative link additionally fails if it is a self-link,
    /// touches a node already transmitting or receiving in the slot, or
    /// shares an endpoint with another tentative link — a node cannot
    /// complete a handshake on two links in the same slot, which the
    /// per-direction SINR checks alone cannot see (the interferer-exclusion
    /// rule skips a shared node exactly because it is busy with its own
    /// packet).
    ///
    /// This is what the distributed runtime uses for its per-iteration
    /// handshake + SCREAM-veto step; admitting claims through the raw
    /// [`probe`](Self::probe) instead reintroduces endpoint-sharing chains
    /// at low β that [`slot_feasible`](Self::slot_feasible) (and the
    /// verifier) reject.
    pub fn probe_claims(&self, tentative: &[Link]) -> LedgerProbe {
        let mut result = self.probe(tentative);
        for (idx, link) in tentative.iter().enumerate() {
            let half_duplex_ok = link.head != link.tail
                && self.endpoints_free(*link)
                && tentative
                    .iter()
                    .enumerate()
                    .all(|(other, l)| other == idx || !l.shares_endpoint(link));
            result.tentative_ok[idx] &= half_duplex_ok;
        }
        result
    }

    /// Per-link SINR margins of the current slot, in dB relative to β.
    pub fn margins(&self) -> Vec<LinkSinrMargin> {
        let beta_db = self.env.config().sinr_threshold_db;
        self.links
            .iter()
            .enumerate()
            .map(|(i, &link)| LinkSinrMargin {
                link,
                data_margin_db: 10.0
                    * (self.data_signal[i] / (self.noise_mw + self.data_interference[i])).log10()
                    - beta_db,
                ack_margin_db: 10.0
                    * (self.ack_signal[i] / (self.noise_mw + self.ack_interference[i])).log10()
                    - beta_db,
            })
            .collect()
    }

    /// Accumulated (data, ACK) interference the current slot inflicts on
    /// `link`, summed in assignment order.
    fn interference_on(&self, link: Link) -> (f64, f64) {
        let mut data = 0.0;
        let mut ack = 0.0;
        for &existing in &self.links {
            if existing == link {
                continue;
            }
            if let Some(term) = data_term(self.env, existing.head, link) {
                data += term;
            }
            if let Some(term) = ack_term(self.env, existing.tail, link) {
                ack += term;
            }
        }
        (data, ack)
    }

    #[inline]
    fn meets_beta(&self, signal_mw: f64, interference_mw: f64) -> bool {
        signal_mw / (self.noise_mw + interference_mw) >= self.beta
    }

    /// Conservative accept: `interference_upper_mw` over-estimates the exact
    /// accumulated interference, so clearing β by [`VERDICT_MARGIN`] relative
    /// guarantees the exact [`meets_beta`](Self::meets_beta) check passes.
    #[inline]
    fn surely_meets_beta(&self, signal_mw: f64, interference_upper_mw: f64) -> bool {
        signal_mw / (self.noise_mw + interference_upper_mw) >= self.beta * (1.0 + VERDICT_MARGIN)
    }

    /// Conservative reject: `interference_lower_mw` under-estimates the exact
    /// accumulated interference, so missing β by the margin guarantees the
    /// exact check fails.
    #[inline]
    fn surely_fails_beta(&self, signal_mw: f64, interference_lower_mw: f64) -> bool {
        signal_mw / (self.noise_mw + interference_lower_mw) < self.beta * (1.0 - VERDICT_MARGIN)
    }
}

/// Result of pricing a tentative active set against a multi-channel ledger
/// slot (see [`ChannelSlotLedger::probe_claims`]): a first-fit channel claim
/// per tentative link plus the aggregate health of the already-assigned
/// links.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelLedgerProbe {
    /// Whether every already-assigned link, on every channel, still completed
    /// its handshake while the tentative set transmitted during the
    /// channel-assignment phase. `false` corresponds to the SCREAM veto of
    /// the distributed protocols; with one channel this is exactly
    /// [`LedgerProbe::existing_ok`] on the full tentative set.
    pub existing_ok: bool,
    /// The channel each tentative link claimed, in input order; `None` means
    /// no channel accepted the claim (the link withdraws as TRIED).
    pub assignments: Vec<Option<ChannelId>>,
}

/// Incremental interference state of one **multi-channel** STDMA slot under
/// construction: one [`SlotLedger`] per orthogonal channel plus a
/// cross-channel node-occupancy table.
///
/// Channels are orthogonal, so interference sums (and every per-channel SINR
/// decision) live entirely inside the per-channel ledgers; the only coupling
/// between channels is the **cross-channel half-duplex rule**: a node has a
/// single radio, so it may not participate in links on two different
/// channels of the same slot. The occupancy table makes that an O(1) check.
///
/// Like [`SlotLedger`], the set has a [`clear`](Self::clear) lifecycle so one
/// ledger set serves every slot of a schedule (the verifier) or every round
/// of a run — buffers are retained across `clear`s.
///
/// With one channel the set degenerates exactly to its single [`SlotLedger`]:
/// the cross-channel check is vacuous (there is no *other* channel), so
/// [`can_add`](Self::can_add) and [`slot_feasible`](Self::slot_feasible)
/// agree decision-for-decision with the plain ledger.
#[derive(Debug, Clone)]
pub struct ChannelSlotLedger<'a> {
    channels: Vec<SlotLedger<'a>>,
    /// How many assigned links (across all channels) touch each node.
    node_uses: Vec<u32>,
    /// Whether no node participates in links on two distinct channels.
    cross_channel_disjoint: bool,
}

impl<'a> ChannelSlotLedger<'a> {
    /// Opens an empty ledger set with `channel_count` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channel_count` is zero.
    pub fn new(env: &'a RadioEnvironment, channel_count: usize) -> Self {
        assert!(channel_count >= 1, "at least one channel is required");
        Self {
            channels: (0..channel_count).map(|_| SlotLedger::new(env)).collect(),
            node_uses: vec![0; env.node_count()],
            cross_channel_disjoint: true,
        }
    }

    /// Opens an empty ledger set whose per-channel ledgers have spatial
    /// pruning forced on (see [`SlotLedger::pruned`]).
    ///
    /// # Panics
    ///
    /// Panics if `channel_count` is zero.
    pub fn pruned(env: &'a RadioEnvironment, channel_count: usize) -> Self {
        assert!(channel_count >= 1, "at least one channel is required");
        Self {
            channels: (0..channel_count)
                .map(|_| SlotLedger::pruned(env))
                .collect(),
            node_uses: vec![0; env.node_count()],
            cross_channel_disjoint: true,
        }
    }

    /// Opens an empty ledger set whose per-channel ledgers have spatial
    /// pruning disabled (see [`SlotLedger::exact`]).
    ///
    /// # Panics
    ///
    /// Panics if `channel_count` is zero.
    pub fn exact(env: &'a RadioEnvironment, channel_count: usize) -> Self {
        assert!(channel_count >= 1, "at least one channel is required");
        Self {
            channels: (0..channel_count).map(|_| SlotLedger::exact(env)).collect(),
            node_uses: vec![0; env.node_count()],
            cross_channel_disjoint: true,
        }
    }

    /// Number of channels in the set.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The per-channel ledger for `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel(&self, channel: ChannelId) -> &SlotLedger<'a> {
        &self.channels[channel.index()]
    }

    /// Empties every channel and the occupancy table in O(k) without
    /// releasing any buffer, mirroring [`SlotLedger::clear`].
    pub fn clear(&mut self) {
        for ledger in &mut self.channels {
            for link in &ledger.links {
                self.node_uses[link.head.index()] -= 1;
                self.node_uses[link.tail.index()] -= 1;
            }
            ledger.clear();
        }
        self.cross_channel_disjoint = true;
    }

    /// Total number of assigned links across all channels.
    pub fn len(&self) -> usize {
        self.channels.iter().map(SlotLedger::len).sum()
    }

    /// Whether no link has been assigned on any channel.
    pub fn is_empty(&self) -> bool {
        self.channels.iter().all(SlotLedger::is_empty)
    }

    /// Whether `link` is assigned on any channel. O(1) for the common
    /// negative answer, via the same endpoint-occupancy screen as
    /// [`SlotLedger::contains`].
    pub fn contains_link(&self, link: Link) -> bool {
        let used = |node: NodeId| {
            self.node_uses
                .get(node.index())
                .is_some_and(|&uses| uses > 0)
        };
        if !used(link.head) || !used(link.tail) {
            return false;
        }
        self.channels.iter().any(|l| l.contains(link))
    }

    /// Whether neither endpoint of `link` is used by any assigned link on
    /// **any** channel — the half-duplex precondition for joining the slot on
    /// whichever channel.
    pub fn endpoints_free(&self, link: Link) -> bool {
        self.node_uses[link.head.index()] == 0 && self.node_uses[link.tail.index()] == 0
    }

    /// Whether `candidate` can join the slot on `channel`: its endpoints must
    /// be idle on every *other* channel (one radio per node), and it must
    /// pass the per-channel [`SlotLedger::can_add`] check (half-duplex within
    /// the channel plus both SINR handshake directions).
    pub fn can_add(&self, channel: ChannelId, candidate: Link) -> bool {
        let ledger = &self.channels[channel.index()];
        for node in [candidate.head, candidate.tail] {
            if self.node_uses[node.index()] > ledger.endpoint_uses[node.index()] {
                scream_obs::counter_add("ledger.channel.reject_radio", 1);
                return false;
            }
        }
        ledger.can_add(candidate)
    }

    /// Adds `link` to the slot on `channel`, unconditionally (mirroring
    /// [`SlotLedger::assign`]): force-assigned cross-channel conflicts are
    /// tracked and surfaced through [`slot_feasible`](Self::slot_feasible).
    pub fn assign(&mut self, channel: ChannelId, link: Link) {
        let ledger = &mut self.channels[channel.index()];
        for node in [link.head, link.tail] {
            if self.node_uses[node.index()] > ledger.endpoint_uses[node.index()] {
                self.cross_channel_disjoint = false;
            }
            self.node_uses[node.index()] += 1;
        }
        ledger.assign(link);
    }

    /// The links assigned to `channel`, in assignment order.
    pub fn links(&self, channel: ChannelId) -> &[Link] {
        self.channels[channel.index()].links()
    }

    /// Every `(channel, link)` assignment, channel-major.
    pub fn assignments(&self) -> impl Iterator<Item = (ChannelId, Link)> + '_ {
        self.channels.iter().enumerate().flat_map(|(c, ledger)| {
            ledger
                .links()
                .iter()
                .map(move |&link| (ChannelId(c as u16), link))
        })
    }

    /// Whether the assigned multi-channel set is a feasible slot: every
    /// channel is feasible on its own ([`SlotLedger::slot_feasible`]) and no
    /// node appears on two distinct channels.
    pub fn slot_feasible(&self) -> bool {
        self.cross_channel_disjoint && self.channels.iter().all(SlotLedger::slot_feasible)
    }

    /// Per-link SINR margins of `channel`'s slot, in dB relative to β.
    pub fn margins(&self, channel: ChannelId) -> Vec<LinkSinrMargin> {
        self.channels[channel.index()].margins()
    }

    /// The multi-channel slot-claim check: each tentative link first-fits
    /// into the cheapest channel whose handshake it completes, mirroring
    /// [`SlotLedger::probe_claims`] channel by channel.
    ///
    /// The phase runs one sub-phase per channel, in increasing channel order.
    /// In sub-phase `c` every still-unassigned tentative link transmits on
    /// channel `c` concurrently, so its handshake is priced against channel
    /// `c`'s assigned links *and* every other unassigned tentative link
    /// (links that claimed an earlier channel are orthogonal and do not
    /// interfere). A link claims channel `c` when
    ///
    /// * its two-way handshake passes on `c` under that interference,
    /// * the half-duplex screen admits it: not a self-link, both endpoints
    ///   idle on **every** channel (one radio per node), and no endpoint
    ///   shared with another tentative link (two claims cannot both complete
    ///   through one radio, whatever their channels), and
    /// * channel `c`'s already-assigned links all survive the sub-phase —
    ///   otherwise the sub-phase is vetoed and **no** link claims `c`,
    ///   exactly like the single-channel SCREAM veto.
    ///
    /// Links left unassigned after the last channel withdraw (`None`).
    /// With one channel the result degenerates exactly to
    /// [`SlotLedger::probe_claims`]: `existing_ok` is the same aggregate
    /// check and `assignments[i]` is `Some(ch0)` iff that probe admitted
    /// claim `i` and no veto fired.
    pub fn probe_claims(&self, tentative: &[Link]) -> ChannelLedgerProbe {
        // The half-duplex screen is channel-independent: a link failing it
        // can claim no channel at all, but it keeps transmitting (and hence
        // interfering) in every sub-phase, like any other failed handshake.
        let claimable: Vec<bool> = tentative
            .iter()
            .enumerate()
            .map(|(idx, link)| {
                link.head != link.tail
                    && self.endpoints_free(*link)
                    && tentative
                        .iter()
                        .enumerate()
                        .all(|(other, l)| other == idx || !l.shares_endpoint(link))
            })
            .collect();

        let mut assignments: Vec<Option<ChannelId>> = vec![None; tentative.len()];
        let mut unassigned: Vec<usize> = (0..tentative.len()).collect();
        let mut existing_ok = true;
        let mut links: Vec<Link> = Vec::with_capacity(tentative.len());
        for (c, ledger) in self.channels.iter().enumerate() {
            if unassigned.is_empty() {
                // Every claim is resolved, but the sub-phase still happens:
                // a channel whose force-assigned links cannot complete their
                // handshakes even undisturbed must raise its veto exactly as
                // the single-channel probe does on an empty tentative set.
                if !ledger.all_links_ok() {
                    existing_ok = false;
                }
                continue;
            }
            links.clear();
            links.extend(unassigned.iter().map(|&i| tentative[i]));
            let probe = ledger.probe(&links);
            if !probe.existing_ok {
                // Veto on this channel: its scheduled links were disturbed,
                // so nobody claims it; the whole set carries to the next
                // channel.
                existing_ok = false;
                continue;
            }
            let channel = ChannelId::new(c as u16);
            unassigned = unassigned
                .iter()
                .zip(&probe.tentative_ok)
                .filter_map(|(&idx, &ok)| {
                    if ok && claimable[idx] {
                        assignments[idx] = Some(channel);
                        None
                    } else {
                        Some(idx)
                    }
                })
                .collect();
        }
        ChannelLedgerProbe {
            existing_ok,
            assignments,
        }
    }
}

impl RadioEnvironment {
    /// Opens an empty [`SlotLedger`] over this environment — the incremental
    /// equivalent of probing slots with
    /// [`can_add_to_slot`](RadioEnvironment::can_add_to_slot).
    pub fn open_slot_ledger(&self) -> SlotLedger<'_> {
        SlotLedger::new(self)
    }

    /// Opens an empty [`ChannelSlotLedger`] with one [`SlotLedger`] per
    /// configured channel (see [`RadioConfig::channel_count`]).
    ///
    /// [`RadioConfig::channel_count`]: crate::radio::RadioConfig::channel_count
    pub fn open_channel_ledger(&self) -> ChannelSlotLedger<'_> {
        ChannelSlotLedger::new(self, self.channel_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::PropagationModel;
    use scream_topology::{Deployment, GridDeployment, Point2, Rect};

    fn line_env(count: usize, spacing: f64) -> RadioEnvironment {
        let positions: Vec<Point2> = (0..count)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect();
        let d = Deployment::from_positions(&positions, 20.0, Rect::square(spacing * count as f64))
            .unwrap();
        RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d)
    }

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn can_add_matches_from_scratch_on_a_line() {
        let env = line_env(8, 200.0);
        let mut ledger = env.open_slot_ledger();
        let slot = [link(0, 1)];
        ledger.assign(slot[0]);
        for candidate in [link(6, 7), link(2, 3), link(1, 2), link(4, 4)] {
            assert_eq!(
                ledger.can_add(candidate),
                env.can_add_to_slot(&slot, candidate),
                "divergence for candidate {candidate}"
            );
        }
    }

    #[test]
    fn incremental_assign_matches_slot_feasible() {
        let env = line_env(10, 220.0);
        let links = [link(0, 1), link(4, 5), link(8, 9)];
        let ledger = SlotLedger::with_links(&env, &links);
        assert_eq!(ledger.slot_feasible(), env.slot_feasible(&links));
        assert_eq!(ledger.len(), 3);
        assert!(ledger.contains(link(4, 5)));
        assert!(!ledger.is_empty());
    }

    #[test]
    fn shared_endpoints_are_rejected_by_can_add_and_tracked_by_assign() {
        let env = line_env(6, 150.0);
        let mut ledger = env.open_slot_ledger();
        ledger.assign(link(0, 1));
        assert!(
            !ledger.can_add(link(1, 2)),
            "shared endpoint must be rejected"
        );
        assert!(!ledger.endpoints_free(link(1, 2)));
        // Force-assigning it anyway marks the slot non-disjoint.
        ledger.assign(link(1, 2));
        assert!(!ledger.slot_feasible());
    }

    #[test]
    fn self_links_are_rejected() {
        let env = line_env(4, 150.0);
        let mut ledger = env.open_slot_ledger();
        assert!(!ledger.can_add(link(2, 2)));
        ledger.assign(link(2, 2));
        assert!(!ledger.slot_feasible());
    }

    #[test]
    fn solo_infeasible_link_fails_even_in_an_empty_slot() {
        // Two nodes 100 km apart: not decodable even without interference.
        let env = line_env(2, 100_000.0);
        let ledger = env.open_slot_ledger();
        assert!(!ledger.can_add(link(0, 1)));
        let forced = SlotLedger::with_links(&env, &[link(0, 1)]);
        assert!(!forced.all_links_ok());
        let margins = forced.margins();
        assert_eq!(margins.len(), 1);
        assert!(margins[0].data_margin_db < 0.0);
        assert!(!margins[0].ok());
    }

    #[test]
    fn probe_matches_handshake_ok_for_each_participant() {
        let env = line_env(12, 180.0);
        let assigned = [link(0, 1), link(6, 7)];
        let ledger = SlotLedger::with_links(&env, &assigned);
        let tentative = [link(3, 4), link(10, 11)];
        let probe = ledger.probe(&tentative);

        let participants: Vec<Link> = assigned.iter().chain(tentative.iter()).copied().collect();
        let expected_existing = assigned.iter().all(|&l| env.handshake_ok(l, &participants));
        let expected_tentative: Vec<bool> = tentative
            .iter()
            .map(|&l| env.handshake_ok(l, &participants))
            .collect();
        assert_eq!(probe.existing_ok, expected_existing);
        assert_eq!(probe.tentative_ok, expected_tentative);
    }

    #[test]
    fn probe_claims_screens_half_duplex_conflicts_raw_probe_does_not() {
        // Chain 2 -> 1 -> 0 at a low SINR threshold: the exclusion rule skips
        // the shared node 1 in both handshake directions, so the raw probe
        // passes the claim — exactly the blind spot probe_claims closes.
        let positions: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64 * 150.0, 0.0)).collect();
        let d = Deployment::from_positions(&positions, 20.0, Rect::square(900.0)).unwrap();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(crate::radio::RadioConfig::mesh_default().with_sinr_threshold_db(6.0))
            .build(&d);
        let ledger = SlotLedger::with_links(&env, &[link(2, 1)]);
        let chained = link(1, 0);
        assert!(
            ledger.probe(&[chained]).tentative_ok[0],
            "raw SINR probe admits the chain"
        );
        assert!(
            !ledger.probe_claims(&[chained]).tentative_ok[0],
            "probe_claims must reject the endpoint-sharing claim"
        );
        // Tentative links sharing an endpoint with each other both fail.
        let claims = ledger.probe_claims(&[link(4, 3), link(3, 5), link(3, 3)]);
        assert!(!claims.tentative_ok[0]);
        assert!(!claims.tentative_ok[1]);
        assert!(!claims.tentative_ok[2], "self-link claims are screened too");
        // A genuinely free claim still passes through probe_claims.
        let free = ledger.probe_claims(&[link(4, 5)]);
        assert!(free.tentative_ok[0]);
        assert!(free.existing_ok);
    }

    #[test]
    fn probe_with_empty_tentative_reports_current_slot_health() {
        let env = line_env(8, 200.0);
        let ledger = SlotLedger::with_links(&env, &[link(0, 1), link(6, 7)]);
        let probe = ledger.probe(&[]);
        assert!(probe.existing_ok);
        assert!(probe.tentative_ok.is_empty());
        assert_eq!(probe.existing_ok, ledger.all_links_ok());
    }

    #[test]
    fn margins_are_positive_for_feasible_slots_and_displayable() {
        let env = line_env(8, 200.0);
        let ledger = SlotLedger::with_links(&env, &[link(0, 1), link(6, 7)]);
        assert!(ledger.slot_feasible());
        for margin in ledger.margins() {
            assert!(margin.ok(), "{margin}");
            assert!(margin.to_string().contains("dB"));
        }
    }

    #[test]
    fn cleared_ledger_behaves_like_a_fresh_one() {
        let env = line_env(8, 200.0);
        let mut reused = SlotLedger::with_capacity(&env, 4);
        // Fill with a slot (including a force-assigned endpoint conflict),
        // clear, then replay a different slot; every observable must match a
        // fresh ledger's.
        reused.assign(link(0, 1));
        reused.assign(link(1, 2));
        assert!(!reused.slot_feasible());
        reused.clear();
        assert!(reused.is_empty());
        assert!(reused.slot_feasible());
        assert!(reused.endpoints_free(link(1, 2)));

        let mut fresh = env.open_slot_ledger();
        for l in [link(6, 7), link(2, 3)] {
            assert_eq!(reused.can_add(l), fresh.can_add(l));
            reused.assign(l);
            fresh.assign(l);
        }
        assert_eq!(reused.links(), fresh.links());
        assert_eq!(reused.slot_feasible(), fresh.slot_feasible());
        assert_eq!(reused.margins(), fresh.margins());
    }

    #[test]
    fn single_channel_ledger_set_degenerates_to_the_plain_ledger() {
        // With one channel the set must agree decision-for-decision with a
        // plain SlotLedger on the same assignment sequence.
        let env = line_env(10, 200.0);
        let mut set = ChannelSlotLedger::new(&env, 1);
        let mut plain = env.open_slot_ledger();
        for candidate in [link(0, 1), link(4, 5), link(1, 2), link(8, 9), link(3, 3)] {
            assert_eq!(
                set.can_add(ChannelId::ZERO, candidate),
                plain.can_add(candidate),
                "single-channel divergence for {candidate}"
            );
            if set.can_add(ChannelId::ZERO, candidate) {
                set.assign(ChannelId::ZERO, candidate);
                plain.assign(candidate);
            }
            assert_eq!(set.slot_feasible(), plain.slot_feasible());
        }
        assert_eq!(set.links(ChannelId::ZERO), plain.links());
        assert_eq!(set.len(), plain.len());
        assert_eq!(set.margins(ChannelId::ZERO), plain.margins());
    }

    #[test]
    fn channels_are_orthogonal_but_share_node_radios() {
        // (0,1) and (2,3) are too close to share a single channel, yet they
        // coexist on different channels; (1,2) touches busy nodes and is
        // rejected on *every* channel (one radio per node).
        let env = line_env(8, 200.0);
        assert!(!env.slot_feasible(&[link(0, 1), link(2, 3)]));
        let mut set = env.open_channel_ledger();
        assert_eq!(set.channel_count(), 1, "mesh default is single-channel");

        let mut set2 = ChannelSlotLedger::new(&env, 2);
        assert!(set2.can_add(ChannelId::new(0), link(0, 1)));
        set2.assign(ChannelId::new(0), link(0, 1));
        assert!(
            !set2.can_add(ChannelId::new(0), link(2, 3)),
            "same channel keeps the SINR conflict"
        );
        assert!(
            set2.can_add(ChannelId::new(1), link(2, 3)),
            "the orthogonal channel removes it"
        );
        set2.assign(ChannelId::new(1), link(2, 3));
        assert!(set2.slot_feasible());
        assert!(set2.contains_link(link(2, 3)));
        assert!(!set2.endpoints_free(link(1, 4)));
        assert!(
            !set2.can_add(ChannelId::new(1), link(1, 4)),
            "node 1 is already busy on channel 0"
        );
        assert_eq!(set2.len(), 2);
        assert_eq!(
            set2.assignments().collect::<Vec<_>>(),
            vec![
                (ChannelId::new(0), link(0, 1)),
                (ChannelId::new(1), link(2, 3))
            ]
        );
        set.clear();
    }

    #[test]
    fn force_assigned_cross_channel_conflicts_are_tracked_and_cleared() {
        let env = line_env(8, 200.0);
        let mut set = ChannelSlotLedger::new(&env, 2);
        set.assign(ChannelId::new(0), link(0, 1));
        set.assign(ChannelId::new(1), link(1, 2));
        assert!(
            !set.slot_feasible(),
            "node 1 on two channels breaks half-duplex"
        );
        assert!(set.channel(ChannelId::new(0)).slot_feasible());
        assert!(set.channel(ChannelId::new(1)).slot_feasible());
        // clear() restores a fresh, reusable set.
        set.clear();
        assert!(set.is_empty());
        assert!(set.slot_feasible());
        assert!(set.endpoints_free(link(1, 2)));
        let mut fresh = ChannelSlotLedger::new(&env, 2);
        for (c, l) in [
            (ChannelId::new(1), link(0, 1)),
            (ChannelId::new(0), link(6, 7)),
        ] {
            assert_eq!(set.can_add(c, l), fresh.can_add(c, l));
            set.assign(c, l);
            fresh.assign(c, l);
        }
        assert_eq!(set.slot_feasible(), fresh.slot_feasible());
        assert_eq!(
            set.assignments().collect::<Vec<_>>(),
            fresh.assignments().collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_channel_probe_claims_degenerates_to_the_plain_probe() {
        // On one channel the multi-channel claim check must agree claim-for-
        // claim (and on existing_ok) with SlotLedger::probe_claims, for
        // passing, SINR-failing, half-duplex-failing and self-link claims.
        let positions: Vec<Point2> = (0..8).map(|i| Point2::new(i as f64 * 150.0, 0.0)).collect();
        let d = Deployment::from_positions(&positions, 20.0, Rect::square(1200.0)).unwrap();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(crate::radio::RadioConfig::mesh_default().with_sinr_threshold_db(6.0))
            .build(&d);
        let mut set = ChannelSlotLedger::new(&env, 1);
        set.assign(ChannelId::ZERO, link(2, 1));
        let plain = SlotLedger::with_links(&env, &[link(2, 1)]);
        for tentative in [
            vec![link(1, 0)],                         // endpoint-sharing chain
            vec![link(4, 5)],                         // clean claim
            vec![link(4, 5), link(5, 6)],             // mutual endpoint sharing
            vec![link(4, 5), link(7, 6), link(3, 3)], // mixed with a self-link
        ] {
            let multi = set.probe_claims(&tentative);
            let single = plain.probe_claims(&tentative);
            assert_eq!(multi.existing_ok, single.existing_ok, "{tentative:?}");
            for (i, ok) in single.tentative_ok.iter().enumerate() {
                // The single-channel runtime applies the veto globally after
                // the probe; the channel-aware probe folds it into the claim.
                let expected = if *ok && single.existing_ok {
                    Some(ChannelId::ZERO)
                } else {
                    None
                };
                assert_eq!(
                    multi.assignments[i], expected,
                    "claim {i} diverged for {tentative:?}"
                );
            }
        }
    }

    #[test]
    fn probe_claims_first_fits_across_channels() {
        // (0,1) is on channel 0; (2,3) conflicts with it under SINR, so its
        // claim carries to channel 1; (1,4) touches busy node 1 and claims
        // nothing on any channel.
        let env = line_env(8, 200.0);
        assert!(!env.slot_feasible(&[link(0, 1), link(2, 3)]));
        let mut set = ChannelSlotLedger::new(&env, 2);
        set.assign(ChannelId::ZERO, link(0, 1));
        let probe = set.probe_claims(&[link(2, 3)]);
        assert_eq!(probe.assignments, vec![Some(ChannelId::new(1))]);
        // A claim touching a busy node gets no channel at all.
        assert_eq!(set.probe_claims(&[link(1, 4)]).assignments, vec![None]);
        // Claiming the assignment keeps the multi-channel slot feasible.
        set.assign(ChannelId::new(1), link(2, 3));
        assert!(set.slot_feasible());
        // A claim that fits channel 0 takes it even when later channels are
        // also free (first-fit order), and two endpoint-sharing claims both
        // fail on every channel (one radio per node).
        let probe = set.probe_claims(&[link(6, 7), link(5, 6)]);
        assert_eq!(probe.assignments, vec![None, None]);
        let probe = set.probe_claims(&[link(6, 7)]);
        assert_eq!(probe.assignments, vec![Some(ChannelId::ZERO)]);
        assert!(probe.existing_ok);
    }

    #[test]
    fn probe_claims_reports_unhealthy_channels_even_with_no_open_claims() {
        // A force-assigned link that cannot complete its handshake even
        // undisturbed (100 km apart) must surface through existing_ok — on
        // an empty tentative set (mirroring SlotLedger::probe_claims) and
        // when every claim resolves on an earlier channel.
        let env = line_env(4, 100_000.0);
        let mut set = ChannelSlotLedger::new(&env, 1);
        set.assign(ChannelId::ZERO, link(0, 1));
        let plain = SlotLedger::with_links(&env, &[link(0, 1)]);
        assert!(!plain.probe_claims(&[]).existing_ok);
        assert!(
            !set.probe_claims(&[]).existing_ok,
            "the empty-claim probe must still check the assigned links"
        );

        // Claims resolving on an early channel must not mask a later
        // channel's unhealthy force-assigned links: (0,1) and (2,3) disturb
        // each other on channel 1, the clean claim (6,7) takes channel 0,
        // and channel 1's sub-phase still raises its veto.
        let env = line_env(8, 200.0);
        let mut set2 = ChannelSlotLedger::new(&env, 2);
        set2.assign(ChannelId::new(1), link(0, 1));
        set2.assign(ChannelId::new(1), link(2, 3));
        assert!(!set2.channel(ChannelId::new(1)).all_links_ok());
        let probe = set2.probe_claims(&[link(6, 7)]);
        assert_eq!(probe.assignments, vec![Some(ChannelId::ZERO)]);
        assert!(
            !probe.existing_ok,
            "channel 1's broken links must veto even after all claims resolved"
        );
    }

    #[test]
    fn probe_claims_vetoes_a_disturbed_channel_but_not_the_others() {
        // Put (2,1) on channel 0 of a low-β environment; the tentative (4,3)
        // disturbs it there (veto on channel 0) yet claims channel 1, where
        // nothing is scheduled.
        let positions: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64 * 150.0, 0.0)).collect();
        let d = Deployment::from_positions(&positions, 20.0, Rect::square(900.0)).unwrap();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(crate::radio::RadioConfig::mesh_default().with_sinr_threshold_db(6.0))
            .build(&d);
        let mut set = ChannelSlotLedger::new(&env, 2);
        set.assign(ChannelId::ZERO, link(2, 1));
        let solo = set.channel(ChannelId::ZERO).probe(&[link(4, 3)]);
        assert!(
            !solo.existing_ok,
            "the scenario needs (4,3) to disturb channel 0"
        );
        let probe = set.probe_claims(&[link(4, 3)]);
        assert!(!probe.existing_ok, "the channel-0 veto must be reported");
        assert_eq!(
            probe.assignments,
            vec![Some(ChannelId::new(1))],
            "the claim carries past the vetoed channel"
        );
    }

    #[test]
    fn pruned_and_exact_ledgers_agree_decision_for_decision() {
        // Dense 8x8 grid: adjacent links conflict, distant ones coexist, so
        // the probe stream hits accepts, rejects and borderline fallbacks.
        // The grid fits inside one cutoff disc, so pruning is forced.
        let d = GridDeployment::new(8, 8, 170.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        let mut pruned = SlotLedger::pruned(&env);
        let mut exact = SlotLedger::exact(&env);
        assert!(pruned.is_pruned());
        assert!(!exact.is_pruned());
        assert!(
            !env.open_slot_ledger().is_pruned(),
            "an instance narrower than the cutoff should skip the index"
        );
        for row in 0..8u32 {
            for col in 0..7u32 {
                let candidate = link(row * 8 + col, row * 8 + col + 1);
                let verdict = pruned.can_add(candidate);
                assert_eq!(
                    verdict,
                    exact.can_add(candidate),
                    "pruned/exact divergence on {candidate}"
                );
                if verdict {
                    pruned.assign(candidate);
                    exact.assign(candidate);
                }
            }
        }
        assert!(!pruned.is_empty(), "scenario admitted no links at all");
        // Assign stays exact in both, so the cached state — and hence the
        // margins — are bitwise identical, not merely close.
        assert_eq!(pruned.links(), exact.links());
        assert_eq!(pruned.margins(), exact.margins());
        assert_eq!(pruned.slot_feasible(), exact.slot_feasible());
        // The clear lifecycle preserves the equivalence.
        pruned.clear();
        exact.clear();
        for candidate in [link(0, 1), link(18, 19), link(1, 2), link(63, 62)] {
            assert_eq!(pruned.can_add(candidate), exact.can_add(candidate));
            pruned.assign(candidate);
            exact.assign(candidate);
        }
        assert_eq!(pruned.margins(), exact.margins());
    }

    #[test]
    fn contains_screens_idle_endpoints_without_changing_answers() {
        let env = line_env(8, 200.0);
        let mut ledger = env.open_slot_ledger();
        ledger.assign(link(0, 1));
        ledger.assign(link(4, 5));
        assert!(ledger.contains(link(0, 1)));
        assert!(!ledger.contains(link(1, 0)), "orientation matters");
        assert!(
            !ledger.contains(link(6, 7)),
            "idle endpoints screen to false"
        );
        assert!(
            !ledger.contains(link(0, 4)),
            "busy endpoints of different links still answer false"
        );
        let mut set = ChannelSlotLedger::new(&env, 2);
        set.assign(ChannelId::new(1), link(0, 1));
        assert!(set.contains_link(link(0, 1)));
        assert!(!set.contains_link(link(0, 2)));
        assert!(!set.contains_link(link(6, 7)));
    }

    #[test]
    fn grid_ledger_agrees_with_from_scratch_over_many_probes() {
        let d = GridDeployment::new(6, 6, 170.0).build();
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(&d);
        // Horizontal links on alternating rows, added one by one; every probe
        // must agree with the from-scratch computation on the same list.
        // Pruning forced: the grid is narrower than the cutoff disc.
        let mut ledger = SlotLedger::pruned(&env);
        let mut assigned: Vec<Link> = Vec::new();
        for row in 0..6u32 {
            for col in (0..5u32).step_by(3) {
                let candidate =
                    Link::new(NodeId::new(row * 6 + col), NodeId::new(row * 6 + col + 1));
                assert_eq!(
                    ledger.can_add(candidate),
                    env.can_add_to_slot(&assigned, candidate),
                    "divergence adding {candidate} to {assigned:?}"
                );
                ledger.assign(candidate);
                assigned.push(candidate);
                assert_eq!(ledger.slot_feasible(), env.slot_feasible(&assigned));
            }
        }
        assert_eq!(ledger.links(), assigned.as_slice());
    }
}
