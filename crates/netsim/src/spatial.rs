//! Uniform-grid spatial indexing for interference pruning.
//!
//! The physical interference model has geometric structure the flat SINR sums
//! ignore: received power decays polynomially with distance, so a transmitter
//! beyond the *noise-floor cutoff radius* — the distance at which even the
//! strongest transmitter's power falls orders of magnitude below the noise
//! floor — contributes provably negligible interference (Halldórsson–Mitra
//! style spatial partitioning, arXiv:1104.5200). This module provides the
//! index that exploits it:
//!
//! * [`GridGeometry`] — a uniform grid of square cells covering a bounding
//!   box, with clamped point→cell mapping, conservative cell/disc range
//!   queries and Chebyshev-ring traversal (nearest cells first, so partial
//!   interference sums hit rejection thresholds early);
//! * [`SpatialGrid`] — a static CSR bucket index over node positions, used
//!   by [`RadioEnvironment`](crate::environment) to build communication and
//!   sensitivity graphs in O(n · nearby) instead of O(n²);
//! * [`EndpointBuckets`] — a dynamic per-slot index of assigned link
//!   endpoints, maintained by [`SlotLedger`](crate::ledger) so feasibility
//!   probes sum only nearby interferers plus one aggregated far-field bound.
//!
//! All range comparisons are done on **squared** distances (no `sqrt` per
//! pair).

use serde::{Deserialize, Serialize};

use scream_topology::Point2;

/// Geometry of a uniform grid of square cells covering a bounding box.
///
/// Cells are indexed `(cx, cy)` with `cx ∈ 0..cols`, `cy ∈ 0..rows`,
/// row-major linearization `cy * cols + cx`. Points outside the bounding box
/// clamp to the nearest boundary cell, so the mapping is total.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridGeometry {
    min_x: f64,
    min_y: f64,
    cell_size_m: f64,
    cols: u32,
    rows: u32,
}

/// An inclusive rectangle of cell indices, as returned by
/// [`GridGeometry::cells_intersecting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRect {
    /// First column (inclusive).
    pub x0: u32,
    /// Last column (inclusive).
    pub x1: u32,
    /// First row (inclusive).
    pub y0: u32,
    /// Last row (inclusive).
    pub y1: u32,
}

impl CellRect {
    /// Number of cells in the rectangle.
    pub fn len(&self) -> usize {
        ((self.x1 - self.x0 + 1) as usize) * ((self.y1 - self.y0 + 1) as usize)
    }

    /// Whether the rectangle is empty (it never is — kept for clippy's
    /// `len_without_is_empty` and API symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Visits every cell of the rectangle in Chebyshev rings of increasing
    /// radius around `center` (clamped into the rectangle): ring 0 is the
    /// center cell, ring `r` the cells at Chebyshev distance exactly `r`.
    /// After each completed ring, `ring_done()` may return `true` to stop the
    /// traversal early — the early-exit hook interference scans use once a
    /// partial sum already exceeds a rejection threshold.
    pub fn visit_rings(
        &self,
        center: (u32, u32),
        mut visit: impl FnMut(u32, u32),
        mut ring_done: impl FnMut() -> bool,
    ) {
        let cx = center.0.clamp(self.x0, self.x1);
        let cy = center.1.clamp(self.y0, self.y1);
        let max_ring = (cx - self.x0)
            .max(self.x1 - cx)
            .max(cy - self.y0)
            .max(self.y1 - cy);
        visit(cx, cy);
        if ring_done() {
            return;
        }
        for r in 1..=max_ring {
            let lo_x = cx.saturating_sub(r).max(self.x0);
            let hi_x = (cx + r).min(self.x1);
            // Top and bottom rows of the ring (full width).
            if cy >= self.y0 + r {
                let y = cy - r;
                for x in lo_x..=hi_x {
                    visit(x, y);
                }
            }
            if cy + r <= self.y1 {
                let y = cy + r;
                for x in lo_x..=hi_x {
                    visit(x, y);
                }
            }
            // Left and right columns, excluding the corners already visited.
            let lo_y = (cy + 1).saturating_sub(r).max(self.y0);
            let hi_y = (cy + r - 1).min(self.y1);
            if lo_y <= hi_y {
                if cx >= self.x0 + r {
                    let x = cx - r;
                    for y in lo_y..=hi_y {
                        visit(x, y);
                    }
                }
                if cx + r <= self.x1 {
                    let x = cx + r;
                    for y in lo_y..=hi_y {
                        visit(x, y);
                    }
                }
            }
            if ring_done() {
                return;
            }
        }
    }
}

impl GridGeometry {
    /// Hard cap on the number of cells: if the target cell size would exceed
    /// it (vast region, small cutoff), the cell size is grown to fit. Pruning
    /// gets coarser but stays correct.
    pub const MAX_CELLS: usize = 1 << 20;

    /// Builds a grid covering the bounding box of `(xs, ys)` with cells of
    /// roughly `target_cell_m` meters (grown if needed to respect
    /// [`MAX_CELLS`](Self::MAX_CELLS)). Degenerate inputs (no points, zero
    /// extent, non-finite or non-positive target) collapse to a single cell.
    pub fn covering(xs: &[f64], ys: &[f64], target_cell_m: f64) -> Self {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for (&x, &y) in xs.iter().zip(ys) {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        if !min_x.is_finite() || !min_y.is_finite() {
            // No points: a 1×1 grid anchored at the origin.
            return Self {
                min_x: 0.0,
                min_y: 0.0,
                cell_size_m: 1.0,
                cols: 1,
                rows: 1,
            };
        }
        let width = (max_x - min_x).max(0.0);
        let height = (max_y - min_y).max(0.0);
        let mut cell = if target_cell_m.is_finite() && target_cell_m > 0.0 {
            target_cell_m
        } else {
            // A degenerate target collapses to a single cell spanning the box.
            width.max(height).max(1.0) * 2.0
        };
        // Grow the cell size until the grid fits the cap.
        loop {
            let cols = (width / cell).floor() as usize + 1;
            let rows = (height / cell).floor() as usize + 1;
            if cols.saturating_mul(rows) <= Self::MAX_CELLS {
                return Self {
                    min_x,
                    min_y,
                    cell_size_m: cell,
                    cols: cols as u32,
                    rows: rows as u32,
                };
            }
            cell *= 2.0;
        }
    }

    /// Cell edge length in meters.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_size_m
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// The cell containing `p`, clamped into the grid.
    pub fn cell_of(&self, p: Point2) -> (u32, u32) {
        let cx = ((p.x - self.min_x) / self.cell_size_m).floor();
        let cy = ((p.y - self.min_y) / self.cell_size_m).floor();
        (
            (cx.max(0.0) as u32).min(self.cols - 1),
            (cy.max(0.0) as u32).min(self.rows - 1),
        )
    }

    /// Row-major linear index of cell `(cx, cy)`.
    pub fn cell_index(&self, cx: u32, cy: u32) -> usize {
        cy as usize * self.cols as usize + cx as usize
    }

    /// Linear index of the cell containing `p` (clamped).
    pub fn cell_index_of(&self, p: Point2) -> usize {
        let (cx, cy) = self.cell_of(p);
        self.cell_index(cx, cy)
    }

    /// The inclusive rectangle of cells intersecting the disc of the given
    /// radius around `center` (conservative: may include cells that only
    /// touch the disc's bounding square).
    pub fn cells_intersecting(&self, center: Point2, radius_m: f64) -> CellRect {
        let lo = Point2::new(center.x - radius_m, center.y - radius_m);
        let hi = Point2::new(center.x + radius_m, center.y + radius_m);
        let (x0, y0) = self.cell_of(lo);
        let (x1, y1) = self.cell_of(hi);
        CellRect { x0, x1, y0, y1 }
    }
}

/// A static uniform-grid bucket index over node positions (CSR layout:
/// contiguous node-id array plus per-cell offsets — flat `Vec<u32>` state,
/// no per-entity maps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialGrid {
    geometry: GridGeometry,
    /// `bucket_start[c]..bucket_start[c + 1]` indexes `bucket_nodes` for
    /// cell `c`; length `cell_count() + 1`.
    bucket_start: Vec<u32>,
    /// Node ids grouped by cell, ascending within each bucket.
    bucket_nodes: Vec<u32>,
}

impl SpatialGrid {
    /// Builds the index over node positions with cells of roughly
    /// `target_cell_m` meters.
    pub fn build(xs: &[f64], ys: &[f64], target_cell_m: f64) -> Self {
        let geometry = GridGeometry::covering(xs, ys, target_cell_m);
        let cells = geometry.cell_count();
        let mut counts = vec![0u32; cells + 1];
        for (&x, &y) in xs.iter().zip(ys) {
            counts[geometry.cell_index_of(Point2::new(x, y)) + 1] += 1;
        }
        for c in 0..cells {
            counts[c + 1] += counts[c];
        }
        let bucket_start = counts;
        let mut cursor = bucket_start.clone();
        let mut bucket_nodes = vec![0u32; xs.len()];
        // Ascending id order within each bucket comes from the ascending scan.
        for (id, (&x, &y)) in xs.iter().zip(ys).enumerate() {
            let c = geometry.cell_index_of(Point2::new(x, y));
            bucket_nodes[cursor[c] as usize] = id as u32;
            cursor[c] += 1;
        }
        Self {
            geometry,
            bucket_start,
            bucket_nodes,
        }
    }

    /// The grid geometry.
    pub fn geometry(&self) -> &GridGeometry {
        &self.geometry
    }

    /// Node ids in the cell with linear index `c`, ascending.
    pub fn nodes_in_cell(&self, c: usize) -> &[u32] {
        let lo = self.bucket_start[c] as usize;
        let hi = self.bucket_start[c + 1] as usize;
        &self.bucket_nodes[lo..hi]
    }

    /// Appends to `out` the ids of all indexed nodes within `radius_m` of
    /// `p` (inclusive, compared on squared distances), in ascending id
    /// order.
    pub fn nodes_within(
        &self,
        xs: &[f64],
        ys: &[f64],
        p: Point2,
        radius_m: f64,
        out: &mut Vec<u32>,
    ) {
        let start = out.len();
        let rect = self.geometry.cells_intersecting(p, radius_m);
        let r2 = radius_m * radius_m;
        for cy in rect.y0..=rect.y1 {
            for cx in rect.x0..=rect.x1 {
                for &id in self.nodes_in_cell(self.geometry.cell_index(cx, cy)) {
                    let i = id as usize;
                    if p.distance_squared(Point2::new(xs[i], ys[i])) <= r2 {
                        out.push(id);
                    }
                }
            }
        }
        out[start..].sort_unstable();
    }
}

/// Packs a link index and an endpoint role into one bucket entry.
#[inline]
fn pack_entry(link_idx: u32, is_head: bool) -> u32 {
    (link_idx << 1) | is_head as u32
}

/// The link index of a packed bucket entry.
#[inline]
pub fn entry_link(entry: u32) -> usize {
    (entry >> 1) as usize
}

/// Whether a packed bucket entry indexes the link's head (transmitter of the
/// data sub-slot) rather than its tail.
#[inline]
pub fn entry_is_head(entry: u32) -> bool {
    entry & 1 == 1
}

/// A dynamic uniform-grid bucket index over the endpoints of links assigned
/// to one slot.
///
/// Each assigned link contributes two packed entries — its head and its tail,
/// each in the cell of the corresponding node — so a feasibility probe can
/// enumerate nearby *data transmitters* (heads) and *ACK transmitters*
/// (tails) separately, each endpoint appearing exactly once. Cleared in
/// O(touched cells), matching [`SlotLedger::clear`](crate::ledger)'s
/// O(assigned) lifecycle.
#[derive(Debug, Clone)]
pub struct EndpointBuckets {
    geometry: GridGeometry,
    cells: Vec<Vec<u32>>,
    touched: Vec<u32>,
}

impl EndpointBuckets {
    /// Empty buckets over the given geometry.
    pub fn new(geometry: GridGeometry) -> Self {
        let cells = vec![Vec::new(); geometry.cell_count()];
        Self {
            geometry,
            cells,
            touched: Vec::new(),
        }
    }

    /// The grid geometry.
    pub fn geometry(&self) -> &GridGeometry {
        &self.geometry
    }

    /// Indexes the endpoints of the link with ledger index `link_idx`.
    pub fn insert(&mut self, link_idx: u32, head: Point2, tail: Point2) {
        let hc = self.geometry.cell_index_of(head);
        let tc = self.geometry.cell_index_of(tail);
        for (cell, entry) in [
            (hc, pack_entry(link_idx, true)),
            (tc, pack_entry(link_idx, false)),
        ] {
            if self.cells[cell].is_empty() {
                self.touched.push(cell as u32);
            }
            self.cells[cell].push(entry);
        }
    }

    /// The packed entries of the cell with linear index `c` (see
    /// [`entry_link`], [`entry_is_head`]).
    pub fn entries(&self, c: usize) -> &[u32] {
        &self.cells[c]
    }

    /// Removes all entries in O(touched cells), keeping allocations.
    pub fn clear(&mut self) {
        for &c in &self.touched {
            self.cells[c as usize].clear();
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_spans_the_bounding_box() {
        let xs = [0.0, 950.0, 120.0];
        let ys = [0.0, 40.0, 460.0];
        let g = GridGeometry::covering(&xs, &ys, 100.0);
        assert_eq!(g.cell_size_m(), 100.0);
        assert_eq!(g.cols(), 10);
        assert_eq!(g.rows(), 5);
        assert_eq!(g.cell_count(), 50);
        // Corners map inside the grid.
        assert_eq!(g.cell_of(Point2::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(Point2::new(950.0, 460.0)), (9, 4));
        // Out-of-bounds points clamp.
        assert_eq!(g.cell_of(Point2::new(-50.0, 9999.0)), (0, 4));
    }

    #[test]
    fn degenerate_inputs_collapse_to_one_cell() {
        let g = GridGeometry::covering(&[], &[], 10.0);
        assert_eq!(g.cell_count(), 1);
        let g = GridGeometry::covering(&[5.0], &[5.0], 10.0);
        assert_eq!(g.cell_count(), 1);
        assert_eq!(g.cell_index_of(Point2::new(5.0, 5.0)), 0);
        let g = GridGeometry::covering(&[0.0, 100.0], &[0.0, 100.0], f64::NAN);
        assert_eq!(g.cell_count(), 1);
    }

    #[test]
    fn cell_count_respects_the_cap() {
        // A 1e9 m region at 1 m cells would want 1e18 cells; the builder must
        // grow the cell size until the count fits.
        let g = GridGeometry::covering(&[0.0, 1e9], &[0.0, 1e9], 1.0);
        assert!(g.cell_count() <= GridGeometry::MAX_CELLS);
        assert!(g.cell_size_m() > 1.0);
    }

    #[test]
    fn ring_traversal_covers_every_cell_exactly_once() {
        let g = GridGeometry::covering(&[0.0, 900.0], &[0.0, 600.0], 100.0);
        let rect = CellRect {
            x0: 0,
            x1: g.cols() - 1,
            y0: 0,
            y1: g.rows() - 1,
        };
        for center in [(0u32, 0u32), (5, 3), (9, 6), (20, 20)] {
            let mut seen = std::collections::HashSet::new();
            rect.visit_rings(
                center,
                |x, y| {
                    assert!(seen.insert((x, y)), "cell ({x},{y}) visited twice");
                },
                || false,
            );
            assert_eq!(seen.len(), rect.len(), "center {center:?}");
        }
    }

    #[test]
    fn ring_traversal_orders_cells_by_chebyshev_distance() {
        let g = GridGeometry::covering(&[0.0, 500.0], &[0.0, 500.0], 100.0);
        let rect = CellRect {
            x0: 0,
            x1: g.cols() - 1,
            y0: 0,
            y1: g.rows() - 1,
        };
        let (cx, cy) = (2u32, 3u32);
        let mut last_ring = 0u32;
        rect.visit_rings(
            (cx, cy),
            |x, y| {
                let ring = x.abs_diff(cx).max(y.abs_diff(cy));
                assert!(ring >= last_ring, "ring order violated at ({x},{y})");
                last_ring = ring;
            },
            || false,
        );
    }

    #[test]
    fn ring_traversal_early_exit_stops_after_a_ring() {
        let rect = CellRect {
            x0: 0,
            x1: 9,
            y0: 0,
            y1: 9,
        };
        let mut visited = 0usize;
        let mut rings = 0usize;
        rect.visit_rings(
            (4, 4),
            |_, _| visited += 1,
            || {
                rings += 1;
                rings == 2
            },
        );
        // Ring 0 (1 cell) + ring 1 (8 cells), then stop.
        assert_eq!(visited, 9);
    }

    #[test]
    fn spatial_grid_range_queries_match_brute_force() {
        // Deterministic pseudo-random points via an LCG (no rand dependency
        // needed at this layer).
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 400;
        let xs: Vec<f64> = (0..n).map(|_| next() * 3000.0).collect();
        let ys: Vec<f64> = (0..n).map(|_| next() * 2000.0).collect();
        let grid = SpatialGrid::build(&xs, &ys, 250.0);
        for &(qx, qy, r) in &[
            (0.0, 0.0, 400.0),
            (1500.0, 1000.0, 300.0),
            (2999.0, 1999.0, 700.0),
            (1000.0, 500.0, 0.0),
            (-200.0, 4000.0, 1000.0),
        ] {
            let p = Point2::new(qx, qy);
            let mut got = Vec::new();
            grid.nodes_within(&xs, &ys, p, r, &mut got);
            let expected: Vec<u32> = (0..n as u32)
                .filter(|&i| {
                    p.distance_squared(Point2::new(xs[i as usize], ys[i as usize])) <= r * r
                })
                .collect();
            assert_eq!(got, expected, "query ({qx},{qy}) r={r}");
        }
    }

    #[test]
    fn endpoint_buckets_insert_query_clear_roundtrip() {
        let g = GridGeometry::covering(&[0.0, 1000.0], &[0.0, 1000.0], 100.0);
        let mut buckets = EndpointBuckets::new(g);
        let head = Point2::new(50.0, 50.0);
        let tail = Point2::new(850.0, 850.0);
        buckets.insert(7, head, tail);
        let head_cell = g.cell_index_of(head);
        let tail_cell = g.cell_index_of(tail);
        assert_eq!(buckets.entries(head_cell).len(), 1);
        let e = buckets.entries(head_cell)[0];
        assert_eq!(entry_link(e), 7);
        assert!(entry_is_head(e));
        let e = buckets.entries(tail_cell)[0];
        assert_eq!(entry_link(e), 7);
        assert!(!entry_is_head(e));
        // Same-cell endpoints produce two entries in one cell.
        buckets.insert(8, head, Point2::new(60.0, 60.0));
        assert_eq!(buckets.entries(head_cell).len(), 3);
        buckets.clear();
        assert_eq!(buckets.entries(head_cell).len(), 0);
        assert_eq!(buckets.entries(tail_cell).len(), 0);
    }
}
