//! Simulation time and data-rate units.
//!
//! Simulated time is kept as an integer number of nanoseconds so that event
//! ordering is exact and runs are bit-reproducible; floating-point seconds
//! are only used at the reporting boundary.

use serde::{Deserialize, Serialize};

/// A point in simulated time, in integer nanoseconds since the start of the
/// simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// The time as integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The time as integer microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor (saturating).
    pub fn saturating_mul(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }

    /// Checked division of one duration by another, yielding how many times
    /// `other` fits into `self` (rounded down). Returns `None` if `other` is
    /// zero.
    pub fn checked_div(self, other: SimTime) -> Option<u64> {
        (other.0 != 0).then(|| self.0 / other.0)
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::ops::Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A radio data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataRate(u64);

impl DataRate {
    /// Creates a data rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub const fn from_bps(bps: u64) -> Self {
        assert!(bps > 0, "data rate must be positive");
        DataRate(bps)
    }

    /// Creates a data rate from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Self::from_bps(mbps * 1_000_000)
    }

    /// Creates a data rate from kilobits per second.
    pub const fn from_kbps(kbps: u64) -> Self {
        Self::from_bps(kbps * 1_000)
    }

    /// The rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// The time needed to serialize `bytes` bytes onto the air at this rate.
    ///
    /// ```
    /// use scream_netsim::{DataRate, SimTime};
    /// let rate = DataRate::from_mbps(1);
    /// assert_eq!(rate.transmission_time(125), SimTime::from_millis(1));
    /// ```
    pub fn transmission_time(self, bytes: usize) -> SimTime {
        let bits = bytes as u128 * 8;
        let nanos = bits * 1_000_000_000 / self.0 as u128;
        SimTime::from_nanos(nanos as u64)
    }

    /// The IEEE 802.11b-era 11 Mb/s rate used as the default mesh backbone
    /// rate in this reproduction.
    pub const MBPS_11: DataRate = DataRate(11_000_000);

    /// The Mica2 CC1000 radio rate (~38.4 kb/s) used by the mote experiment.
    pub const MICA2: DataRate = DataRate(38_400);
}

impl Default for DataRate {
    fn default() -> Self {
        DataRate::MBPS_11
    }
}

impl std::fmt::Display for DataRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.1} Mb/s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1} kb/s", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} b/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
    }

    #[test]
    fn simtime_from_secs_f64_saturates_on_bad_input() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(13));
        assert_eq!(a - b, SimTime::from_millis(7));
        assert_eq!(b * 4, SimTime::from_millis(12));
        assert_eq!(a.saturating_sub(SimTime::from_secs(1)), SimTime::ZERO);
        assert_eq!(a.checked_div(b), Some(3));
        assert_eq!(a.checked_div(SimTime::ZERO), None);
    }

    #[test]
    fn simtime_roundtrips_to_seconds() {
        let t = SimTime::from_micros(123_456);
        assert!((t.as_secs_f64() - 0.123456).abs() < 1e-12);
        assert_eq!(t.as_micros(), 123_456);
    }

    #[test]
    fn simtime_display_picks_sensible_units() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_micros(7).to_string(), "7.000us");
        assert_eq!(SimTime::from_nanos(9).to_string(), "9ns");
    }

    #[test]
    fn datarate_transmission_time() {
        // 24 bytes at 38.4 kb/s = 192 bits / 38400 bps = 5 ms.
        assert_eq!(
            DataRate::MICA2.transmission_time(24),
            SimTime::from_millis(5)
        );
        // 1500 bytes at 11 Mb/s ~ 1.09 ms.
        let t = DataRate::MBPS_11.transmission_time(1500);
        assert!(t > SimTime::from_micros(1_000) && t < SimTime::from_micros(1_200));
    }

    #[test]
    fn datarate_display() {
        assert_eq!(DataRate::MBPS_11.to_string(), "11.0 Mb/s");
        assert_eq!(DataRate::MICA2.to_string(), "38.4 kb/s");
    }

    #[test]
    fn default_rate_is_11mbps() {
        assert_eq!(DataRate::default(), DataRate::MBPS_11);
    }
}
