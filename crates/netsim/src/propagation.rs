//! Radio propagation models.
//!
//! The paper's simulations use a log-normal propagation model with path-loss
//! exponent 3 (Section VI-A); its analysis assumes a deterministic
//! log-distance model (Section IV-B, footnote 2). Both are provided here:
//! [`PropagationModel`] captures the deterministic distance-dependent loss,
//! and [`ShadowingField`] adds a reproducible, symmetric per-link log-normal
//! shadowing term on top of it.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Deterministic (distance-dependent) part of the path loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationModel {
    /// Path-loss exponent `α` (2 = free space, 3 = the paper's setting,
    /// 3.5–4 = dense urban).
    exponent: f64,
    /// Reference path loss at 1 meter, in dB.
    reference_loss_db: f64,
    /// Distance below which the reference loss applies unchanged, in meters.
    reference_distance_m: f64,
}

impl PropagationModel {
    /// Default reference loss at 1 m for a 2.4 GHz ISM-band radio, in dB
    /// (free-space loss at 1 m is ≈ 40 dB).
    pub const DEFAULT_REFERENCE_LOSS_DB: f64 = 40.0;

    /// Log-distance path loss with the given exponent and the default
    /// 2.4 GHz reference loss.
    ///
    /// # Panics
    ///
    /// Panics if the exponent is not in `(1, 10]` — the physical model
    /// analysis (and the approximation bound of Theorem 4) requires `α > 2`,
    /// but exponents slightly below 2 are allowed for experimentation.
    pub fn log_distance(exponent: f64) -> Self {
        assert!(
            exponent > 1.0 && exponent <= 10.0,
            "path-loss exponent must be in (1, 10], got {exponent}"
        );
        Self {
            exponent,
            reference_loss_db: Self::DEFAULT_REFERENCE_LOSS_DB,
            reference_distance_m: 1.0,
        }
    }

    /// Free-space propagation (exponent 2).
    pub fn free_space() -> Self {
        Self::log_distance(2.0)
    }

    /// The paper's simulation setting: log-distance with exponent 3 (the
    /// log-normal shadowing component is added separately through
    /// [`ShadowingField`]).
    pub fn paper_default() -> Self {
        Self::log_distance(3.0)
    }

    /// Overrides the reference loss at the reference distance, in dB.
    pub fn with_reference_loss_db(mut self, loss_db: f64) -> Self {
        self.reference_loss_db = loss_db;
        self
    }

    /// Overrides the reference distance, in meters.
    ///
    /// # Panics
    ///
    /// Panics if the distance is not strictly positive.
    pub fn with_reference_distance_m(mut self, d0: f64) -> Self {
        assert!(d0 > 0.0, "reference distance must be positive");
        self.reference_distance_m = d0;
        self
    }

    /// The path-loss exponent `α`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Path loss in dB over a distance of `distance_m` meters. Distances at
    /// or below the reference distance return the reference loss.
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        if distance_m <= self.reference_distance_m {
            return self.reference_loss_db;
        }
        self.reference_loss_db
            + 10.0 * self.exponent * (distance_m / self.reference_distance_m).log10()
    }

    /// Linear power gain (received power / transmitted power) over the given
    /// distance. Always in `(0, 1]`.
    pub fn gain(&self, distance_m: f64) -> f64 {
        10f64.powf(-self.path_loss_db(distance_m) / 10.0)
    }

    /// The distance at which the path loss reaches `loss_db` dB — the inverse
    /// of [`path_loss_db`](Self::path_loss_db). Used to derive communication
    /// and carrier-sense ranges from power budgets.
    pub fn distance_for_loss_db(&self, loss_db: f64) -> f64 {
        if loss_db <= self.reference_loss_db {
            return self.reference_distance_m;
        }
        self.reference_distance_m
            * 10f64.powf((loss_db - self.reference_loss_db) / (10.0 * self.exponent))
    }

    /// Precomputes a [`GainProfile`] evaluating this model's linear gain
    /// directly from *squared* distances — the form hot paths have at hand
    /// after a [`Point2::distance_squared`](scream_topology::Point2) — with
    /// closed-form fast paths for the common integer exponents that avoid
    /// the `log10`/`powf` round-trip of [`gain`](Self::gain).
    pub fn gain_profile(&self) -> GainProfile {
        GainProfile::from_model(self)
    }
}

/// A precomputed evaluator of a [`PropagationModel`]'s linear gain as a
/// function of squared distance.
///
/// For a log-distance model, `gain(d) = g₀ · (d/d₀)^{-α}` beyond the
/// reference distance `d₀`; folding `g₀ · d₀^α` into one scale factor gives
/// `gain = scale · d^{-α} = scale · (d²)^{-α/2}`, which for `α ∈ {2, 3, 4}`
/// needs only multiplications (and one `sqrt` for `α = 3`) per evaluation.
/// This is what lets a streamed (matrix-free) [`RadioEnvironment`]
/// (crate::environment) recompute gains on the fly at millions of pairs per
/// second.
///
/// Values agree with [`PropagationModel::gain`] up to floating-point
/// rearrangement (≲ 1 ulp relative); a streamed environment uses *only* this
/// evaluator, so its feasibility verdicts are internally consistent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GainProfile {
    /// Gain at or below the reference distance.
    ref_gain: f64,
    /// Squared reference distance, in m².
    ref_distance_sq_m2: f64,
    /// `g₀ · d₀^α`: gain is `scale · d^{-α}` beyond the reference distance.
    scale: f64,
    /// Exponent dispatch: `α/2`, with fast paths for `α ∈ {2, 3, 4}`.
    kind: GainKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum GainKind {
    /// `α = 2`: `scale / d²`.
    FreeSpace,
    /// `α = 3`: `scale / (d² · √d²)`.
    Cubic,
    /// `α = 4`: `scale / (d²)²`.
    Quartic,
    /// Any other exponent: `scale · (d²)^{-α/2}`.
    General {
        /// Half the path-loss exponent.
        half_exponent: f64,
    },
}

impl GainProfile {
    /// Builds the evaluator for `model`.
    pub fn from_model(model: &PropagationModel) -> Self {
        let ref_gain = 10f64.powf(-model.reference_loss_db / 10.0);
        let d0 = model.reference_distance_m;
        let kind = if model.exponent == 2.0 {
            GainKind::FreeSpace
        } else if model.exponent == 3.0 {
            GainKind::Cubic
        } else if model.exponent == 4.0 {
            GainKind::Quartic
        } else {
            GainKind::General {
                half_exponent: model.exponent / 2.0,
            }
        };
        Self {
            ref_gain,
            ref_distance_sq_m2: d0 * d0,
            scale: ref_gain * d0.powf(model.exponent),
            kind,
        }
    }

    /// Linear gain at squared distance `d2` (m²). Always in `(0, 1]`.
    #[inline]
    pub fn gain_from_distance_squared(&self, d2: f64) -> f64 {
        if d2 <= self.ref_distance_sq_m2 {
            return self.ref_gain;
        }
        match self.kind {
            GainKind::FreeSpace => self.scale / d2,
            GainKind::Cubic => self.scale / (d2 * d2.sqrt()),
            GainKind::Quartic => self.scale / (d2 * d2),
            GainKind::General { half_exponent } => self.scale * d2.powf(-half_exponent),
        }
    }
}

impl Default for PropagationModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A reproducible, symmetric per-node-pair log-normal shadowing field.
///
/// Shadowing in the log-normal model is a zero-mean Gaussian random variable
/// (in dB) added to the deterministic path loss. Real shadowing is caused by
/// obstacles between a *pair* of positions, so the field is symmetric
/// (`shadow(u, v) == shadow(v, u)`) and fixed for the lifetime of the
/// environment: it models terrain, not fast fading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowingField {
    sigma_db: f64,
    node_count: usize,
    /// Upper-triangular matrix of shadowing values in dB, row-major over
    /// pairs `(i, j)` with `i < j`.
    values_db: Vec<f64>,
}

impl ShadowingField {
    /// A field with zero variance (no shadowing) over `node_count` nodes.
    pub fn disabled(node_count: usize) -> Self {
        Self {
            sigma_db: 0.0,
            node_count,
            values_db: Vec::new(),
        }
    }

    /// Generates a field with standard deviation `sigma_db` dB over
    /// `node_count` nodes, reproducibly from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative or not finite.
    pub fn generate(node_count: usize, sigma_db: f64, seed: u64) -> Self {
        assert!(
            sigma_db.is_finite() && sigma_db >= 0.0,
            "shadowing sigma must be non-negative, got {sigma_db}"
        );
        if sigma_db == 0.0 || node_count < 2 {
            return Self::disabled(node_count);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pairs = node_count * (node_count - 1) / 2;
        let values_db = (0..pairs)
            .map(|_| sigma_db * standard_normal(&mut rng))
            .collect();
        Self {
            sigma_db,
            node_count,
            values_db,
        }
    }

    /// The configured standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Shadowing offset in dB between nodes `i` and `j` (symmetric; zero on
    /// the diagonal and when shadowing is disabled).
    pub fn shadow_db(&self, i: usize, j: usize) -> f64 {
        if self.values_db.is_empty() || i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        debug_assert!(b < self.node_count);
        // Index of (a, b), a < b, in the upper-triangular packing.
        let idx = a * self.node_count - a * (a + 1) / 2 + (b - a - 1);
        self.values_db[idx]
    }
}

/// Draws a standard normal sample via the Box–Muller transform. Implemented
/// locally to stay within the approved dependency set (`rand` provides
/// uniform sampling but the normal distribution lives in `rand_distr`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_grows_with_distance_and_exponent() {
        let m2 = PropagationModel::log_distance(2.0);
        let m3 = PropagationModel::log_distance(3.0);
        assert!(m2.path_loss_db(100.0) < m2.path_loss_db(200.0));
        assert!(m3.path_loss_db(100.0) > m2.path_loss_db(100.0));
    }

    #[test]
    fn path_loss_at_reference_distance_is_reference_loss() {
        let m = PropagationModel::paper_default();
        assert_eq!(
            m.path_loss_db(1.0),
            PropagationModel::DEFAULT_REFERENCE_LOSS_DB
        );
        assert_eq!(
            m.path_loss_db(0.1),
            PropagationModel::DEFAULT_REFERENCE_LOSS_DB
        );
    }

    #[test]
    fn log_distance_slope_is_10_alpha_per_decade() {
        let m = PropagationModel::log_distance(3.0);
        let slope = m.path_loss_db(1000.0) - m.path_loss_db(100.0);
        assert!((slope - 30.0).abs() < 1e-9);
    }

    #[test]
    fn gain_is_inverse_of_path_loss() {
        let m = PropagationModel::paper_default();
        let d = 123.0;
        let gain = m.gain(d);
        assert!((10.0 * gain.log10() + m.path_loss_db(d)).abs() < 1e-9);
        assert!(gain > 0.0 && gain <= 1.0);
    }

    #[test]
    fn distance_for_loss_inverts_path_loss() {
        let m = PropagationModel::log_distance(3.0);
        for d in [5.0, 50.0, 500.0] {
            let loss = m.path_loss_db(d);
            assert!((m.distance_for_loss_db(loss) - d).abs() / d < 1e-9);
        }
        assert_eq!(m.distance_for_loss_db(0.0), 1.0);
    }

    #[test]
    fn free_space_has_exponent_two() {
        assert_eq!(PropagationModel::free_space().exponent(), 2.0);
        assert_eq!(PropagationModel::paper_default().exponent(), 3.0);
        assert_eq!(PropagationModel::default().exponent(), 3.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_unphysical_exponent() {
        let _ = PropagationModel::log_distance(0.5);
    }

    #[test]
    fn custom_reference_changes_absolute_loss_not_slope() {
        let m = PropagationModel::log_distance(3.0).with_reference_loss_db(30.0);
        assert_eq!(m.path_loss_db(1.0), 30.0);
        let slope = m.path_loss_db(100.0) - m.path_loss_db(10.0);
        assert!((slope - 30.0).abs() < 1e-9);
    }

    #[test]
    fn gain_profile_matches_gain_for_all_exponent_paths() {
        // Covers every GainKind arm: 2 (free space), 3 (paper), 4 (quartic)
        // and a non-integer general exponent, plus a shifted reference.
        for exponent in [2.0, 3.0, 4.0, 2.7] {
            let m = PropagationModel::log_distance(exponent);
            let p = m.gain_profile();
            for d in [0.5, 1.0, 1.5, 10.0, 123.0, 5000.0, 250_000.0] {
                let exact = m.gain(d);
                let fast = p.gain_from_distance_squared(d * d);
                assert!(
                    (fast - exact).abs() <= exact * 1e-12,
                    "α={exponent}, d={d}: profile {fast} vs gain {exact}"
                );
            }
        }
        let shifted = PropagationModel::log_distance(3.0)
            .with_reference_loss_db(30.0)
            .with_reference_distance_m(2.0);
        let p = shifted.gain_profile();
        for d in [1.0, 2.0, 3.0, 400.0] {
            let exact = shifted.gain(d);
            assert!((p.gain_from_distance_squared(d * d) - exact).abs() <= exact * 1e-12);
        }
    }

    #[test]
    fn gain_profile_is_monotone_nonincreasing_in_distance() {
        let p = PropagationModel::paper_default().gain_profile();
        let mut previous = f64::INFINITY;
        for d in [0.1, 1.0, 2.0, 10.0, 100.0, 1e4, 1e6] {
            let g = p.gain_from_distance_squared(d * d);
            assert!(g <= previous && g > 0.0);
            previous = g;
        }
    }

    #[test]
    fn shadowing_is_symmetric_and_reproducible() {
        let f1 = ShadowingField::generate(20, 6.0, 77);
        let f2 = ShadowingField::generate(20, 6.0, 77);
        let f3 = ShadowingField::generate(20, 6.0, 78);
        assert_eq!(f1, f2);
        assert_ne!(f1, f3);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(f1.shadow_db(i, j), f1.shadow_db(j, i));
            }
            assert_eq!(f1.shadow_db(i, i), 0.0);
        }
    }

    #[test]
    fn disabled_shadowing_is_identically_zero() {
        let f = ShadowingField::disabled(10);
        assert_eq!(f.sigma_db(), 0.0);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(f.shadow_db(i, j), 0.0);
            }
        }
        let f0 = ShadowingField::generate(10, 0.0, 3);
        assert_eq!(f0, ShadowingField::disabled(10));
    }

    #[test]
    fn shadowing_samples_have_roughly_the_requested_spread() {
        let sigma = 8.0;
        let f = ShadowingField::generate(80, sigma, 5);
        let mut values = Vec::new();
        for i in 0..80 {
            for j in (i + 1)..80 {
                values.push(f.shadow_db(i, j));
            }
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 1.0, "mean {mean} should be near zero");
        assert!(
            (var.sqrt() - sigma).abs() < 1.0,
            "std {} should be near {sigma}",
            var.sqrt()
        );
    }

    #[test]
    fn shadow_indexing_covers_all_pairs_distinctly() {
        // Every pair must map to a distinct entry: perturbing one pair's value
        // must not affect any other pair.
        let n = 12;
        let f = ShadowingField::generate(n, 4.0, 9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let bits = f.shadow_db(i, j).to_bits();
                seen.insert(bits);
            }
        }
        // With continuous samples, collisions are (essentially) impossible, so
        // the number of distinct values must equal the number of pairs.
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn standard_normal_is_standardish() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
