//! Radio front-end configuration: noise floor, SINR threshold, carrier-sense
//! threshold, data rate and frame sizes.

use serde::{Deserialize, Serialize};

use crate::units::DataRate;

/// Identifier of one orthogonal frequency channel.
///
/// The physical interference model is per-channel: transmissions on
/// different channels do not interfere, so interference sums (and hence
/// SINR feasibility) only accrue among links assigned to the same channel.
/// Channel 0 is the single shared channel of the original SCREAM setting;
/// multi-channel scenarios index channels `0..channel_count` (see
/// [`RadioConfig::channel_count`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChannelId(pub u16);

impl ChannelId {
    /// The default (single-channel) channel.
    pub const ZERO: ChannelId = ChannelId(0);

    /// Creates a channel id.
    pub fn new(id: u16) -> Self {
        ChannelId(id)
    }

    /// The channel id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Physical-layer parameters shared by all nodes in a radio environment.
///
/// The SINR threshold `β` is the constant from the physical interference
/// model of Section II ("a constant that depends on the desired data rate,
/// modulation scheme, etc."). The carrier-sense threshold is the energy level
/// above which a listening radio reports channel activity — the mechanism
/// SCREAM builds its network-wide OR on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Background noise power `N`, in dBm (thermal noise plus receiver noise
    /// figure over the channel bandwidth).
    pub noise_floor_dbm: f64,
    /// SINR threshold `β`, in dB. A transmission is decodable iff its SINR is
    /// at least this value.
    pub sinr_threshold_db: f64,
    /// Carrier-sense (energy-detection) threshold, in dBm. A listening node
    /// detects activity iff the total received power exceeds this value.
    pub carrier_sense_threshold_dbm: f64,
    /// Link data rate used for data packets and ACKs.
    pub data_rate: DataRate,
    /// Size of a data packet, in bytes (payload plus headers).
    pub data_packet_bytes: usize,
    /// Size of a link-layer ACK, in bytes.
    pub ack_bytes: usize,
    /// Number of orthogonal frequency channels available to the schedulers.
    /// Interference only accrues within a channel; the original SCREAM
    /// setting is `1` (a single shared channel).
    pub channel_count: usize,
}

impl RadioConfig {
    /// Default configuration for an 802.11-class mesh backbone:
    /// −100 dBm noise floor, β = 10 dB, −91 dBm carrier-sense threshold,
    /// 11 Mb/s, 1500-byte data packets, 38-byte ACKs.
    pub fn mesh_default() -> Self {
        Self {
            noise_floor_dbm: -100.0,
            sinr_threshold_db: 10.0,
            carrier_sense_threshold_dbm: -91.0,
            data_rate: DataRate::MBPS_11,
            data_packet_bytes: 1500,
            ack_bytes: 38,
            channel_count: 1,
        }
    }

    /// Sets the SINR threshold `β` in dB.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not finite.
    pub fn with_sinr_threshold_db(mut self, beta_db: f64) -> Self {
        assert!(beta_db.is_finite(), "SINR threshold must be finite");
        self.sinr_threshold_db = beta_db;
        self
    }

    /// Sets the noise floor in dBm.
    pub fn with_noise_floor_dbm(mut self, dbm: f64) -> Self {
        self.noise_floor_dbm = dbm;
        self
    }

    /// Sets the carrier-sense threshold in dBm.
    pub fn with_carrier_sense_threshold_dbm(mut self, dbm: f64) -> Self {
        self.carrier_sense_threshold_dbm = dbm;
        self
    }

    /// Sets the data rate.
    pub fn with_data_rate(mut self, rate: DataRate) -> Self {
        self.data_rate = rate;
        self
    }

    /// Sets the number of orthogonal channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero (there must always be at least the one
    /// shared channel) or does not fit a [`ChannelId`].
    pub fn with_channel_count(mut self, channels: usize) -> Self {
        assert!(channels >= 1, "at least one channel is required");
        assert!(
            channels <= u16::MAX as usize + 1,
            "channel count {channels} exceeds the ChannelId range"
        );
        self.channel_count = channels;
        self
    }

    /// Noise power in milliwatts.
    pub fn noise_floor_mw(&self) -> f64 {
        dbm_to_mw(self.noise_floor_dbm)
    }

    /// SINR threshold as a linear ratio.
    pub fn sinr_threshold_linear(&self) -> f64 {
        10f64.powf(self.sinr_threshold_db / 10.0)
    }

    /// Carrier-sense threshold in milliwatts.
    pub fn carrier_sense_threshold_mw(&self) -> f64 {
        dbm_to_mw(self.carrier_sense_threshold_dbm)
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self::mesh_default()
    }
}

/// Converts a power level from dBm to milliwatts (re-exported here so the
/// crate is usable without `scream-topology` in scope).
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts a power level from milliwatts to dBm. Non-positive powers map to
/// negative infinity.
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * mw.log10()
    }
}

/// Converts a relative dB quantity (path loss, fading margin, gain) to the
/// equivalent linear power *ratio*. Numerically identical to [`dbm_to_mw`],
/// but dimensionally distinct: dB is a ratio, dBm an absolute power. Use
/// this for `-loss_db`-style arguments so the units stay honest.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to relative dB. Non-positive ratios map to
/// negative infinity, mirroring [`mw_to_dbm`].
pub fn linear_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_mesh_default() {
        assert_eq!(RadioConfig::default(), RadioConfig::mesh_default());
    }

    #[test]
    fn linear_conversions_are_consistent() {
        let c = RadioConfig::mesh_default();
        assert!((mw_to_dbm(c.noise_floor_mw()) - c.noise_floor_dbm).abs() < 1e-9);
        assert!((c.sinr_threshold_linear() - 10.0).abs() < 1e-9);
        assert!(
            (mw_to_dbm(c.carrier_sense_threshold_mw()) - c.carrier_sense_threshold_dbm).abs()
                < 1e-9
        );
    }

    mod conversion_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// dBm↔mW round-trips: the refactor that introduced the
            /// dB-ratio helpers must keep the absolute-power pair exact.
            #[test]
            fn dbm_mw_round_trip(x in -120.0f64..60.0) {
                let back = mw_to_dbm(dbm_to_mw(x));
                prop_assert!((back - x).abs() < 1e-9, "{x} -> {back}");
            }

            /// `db_to_linear` is numerically identical to `dbm_to_mw` (the
            /// distinction is dimensional, not arithmetic), so migrating
            /// `dbm_to_mw(-loss_db)` call sites is behavior-preserving.
            #[test]
            fn db_to_linear_matches_dbm_to_mw(x in -200.0f64..60.0) {
                prop_assert_eq!(db_to_linear(x).to_bits(), dbm_to_mw(x).to_bits());
            }

            /// And the inverse pair agrees wherever both are defined.
            #[test]
            fn linear_to_db_matches_mw_to_dbm(r in 1e-20f64..1e6) {
                prop_assert_eq!(linear_to_db(r).to_bits(), mw_to_dbm(r).to_bits());
                let back = db_to_linear(linear_to_db(r));
                prop_assert!((back - r).abs() <= 1e-9 * r, "{r} -> {back}");
            }
        }
    }

    #[test]
    fn builder_style_setters_update_fields() {
        let c = RadioConfig::mesh_default()
            .with_sinr_threshold_db(6.0)
            .with_noise_floor_dbm(-95.0)
            .with_carrier_sense_threshold_dbm(-85.0)
            .with_data_rate(DataRate::from_mbps(54));
        assert_eq!(c.sinr_threshold_db, 6.0);
        assert_eq!(c.noise_floor_dbm, -95.0);
        assert_eq!(c.carrier_sense_threshold_dbm, -85.0);
        assert_eq!(c.data_rate, DataRate::from_mbps(54));
    }

    #[test]
    fn default_channel_count_is_single_channel() {
        assert_eq!(RadioConfig::mesh_default().channel_count, 1);
        let c = RadioConfig::mesh_default().with_channel_count(4);
        assert_eq!(c.channel_count, 4);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_are_rejected() {
        let _ = RadioConfig::mesh_default().with_channel_count(0);
    }

    #[test]
    fn channel_ids_order_index_and_display() {
        assert_eq!(ChannelId::ZERO, ChannelId::new(0));
        assert_eq!(ChannelId::default(), ChannelId::ZERO);
        assert!(ChannelId::new(1) > ChannelId::ZERO);
        assert_eq!(ChannelId::new(3).index(), 3);
        assert_eq!(ChannelId::new(2).to_string(), "ch2");
    }

    #[test]
    fn carrier_sense_threshold_is_below_decoding_requirement() {
        // Energy detection must trigger on signals too weak to decode,
        // otherwise SCREAM relaying would be no more robust than decoding.
        let c = RadioConfig::mesh_default();
        assert!(c.carrier_sense_threshold_dbm < c.noise_floor_dbm + c.sinr_threshold_db + 20.0);
    }
}
