//! Error types for the radio simulator.

use scream_topology::NodeId;

/// Errors produced while configuring or querying the radio environment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetsimError {
    /// A referenced node id is out of range for the environment.
    UnknownNode {
        /// The offending id.
        id: NodeId,
        /// Number of nodes in the environment.
        node_count: usize,
    },
    /// A link references the same node as both transmitter and receiver.
    SelfLink(NodeId),
    /// A physical-layer parameter is out of its valid range.
    InvalidParameter(String),
}

impl std::fmt::Display for NetsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetsimError::UnknownNode { id, node_count } => {
                write!(
                    f,
                    "node {id} does not exist (environment has {node_count} nodes)"
                )
            }
            NetsimError::SelfLink(id) => {
                write!(f, "link from {id} to itself is not a radio link")
            }
            NetsimError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for NetsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetsimError::UnknownNode {
            id: NodeId::new(3),
            node_count: 2,
        };
        assert!(e.to_string().contains("n3"));
        assert!(NetsimError::SelfLink(NodeId::new(1))
            .to_string()
            .contains("n1"));
        assert!(NetsimError::InvalidParameter("beta".into())
            .to_string()
            .contains("beta"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&NetsimError::SelfLink(NodeId::new(0)));
    }
}
