//! Timing model of the distributed protocols.
//!
//! The schedule computed by PDD/FDD is expressed in abstract slots, but the
//! *execution time* of the protocols themselves (Figures 8 and 9 of the
//! paper) is measured in wall-clock seconds and depends on how long each
//! synchronized protocol step takes on the air: how many bytes a SCREAM
//! transmits, how large data packets and ACKs are, the radio data rate, and
//! the guard interval added around every globally synchronized step to
//! compensate for clock skew.

use serde::{Deserialize, Serialize};

use crate::clock::ClockSkewConfig;
use crate::radio::RadioConfig;
use crate::units::{DataRate, SimTime};

/// Durations of the elementary synchronized steps the protocols execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTiming {
    /// Duration of a single SCREAM slot (one hop of the carrier-sensing
    /// flood): the time to transmit `SMBytes` plus turnaround and guard time.
    pub scream_slot: SimTime,
    /// Duration of one two-way handshake step: data sub-slot plus ACK
    /// sub-slot plus turnaround and guard time.
    pub handshake_slot: SimTime,
    /// Fixed overhead charged for every `GlobalSync()` barrier (processing
    /// and radio turnaround), in addition to the guard interval already
    /// folded into the slot durations.
    pub sync_overhead: SimTime,
}

impl SlotTiming {
    /// Radio/MAC turnaround time between receive and transmit (SIFS-like).
    pub const TURNAROUND: SimTime = SimTime::from_micros(10);

    /// Derives slot durations from the radio configuration, the SCREAM
    /// payload size and the clock-skew guard.
    ///
    /// * a SCREAM slot is `scream_bytes` on the air plus turnaround plus the
    ///   guard interval;
    /// * a handshake slot is a data packet plus an ACK, two turnarounds and
    ///   the guard interval (data and ACK live in separate sub-slots per the
    ///   model of Section II);
    /// * every synchronized step additionally pays `sync_overhead`.
    pub fn derive(radio: &RadioConfig, scream_bytes: usize, skew: ClockSkewConfig) -> Self {
        let guard = skew.guard_interval();
        let scream_tx = radio.data_rate.transmission_time(scream_bytes);
        let data_tx = radio.data_rate.transmission_time(radio.data_packet_bytes);
        let ack_tx = radio.data_rate.transmission_time(radio.ack_bytes);
        Self {
            scream_slot: scream_tx + Self::TURNAROUND + guard,
            handshake_slot: data_tx + ack_tx + Self::TURNAROUND * 2 + guard,
            sync_overhead: SimTime::from_micros(5) + guard,
        }
    }

    /// Slot timing for the paper's default simulation setting: 15-byte
    /// SCREAMs, 11 Mb/s, perfect clocks.
    pub fn paper_default() -> Self {
        Self::derive(&RadioConfig::mesh_default(), 15, ClockSkewConfig::PERFECT)
    }

    /// The rate used to derive per-byte times (informational; stored
    /// implicitly in the derived durations).
    pub fn for_rate(radio: &RadioConfig) -> DataRate {
        radio.data_rate
    }
}

impl Default for SlotTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Running tally of synchronized protocol steps, convertible to wall-clock
/// execution time.
///
/// The distributed runtime increments these counters as it executes; the
/// figure-reproduction harness then reads off the execution time exactly the
/// way the paper reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProtocolTiming {
    /// Number of SCREAM slots executed (every node participates in each).
    pub scream_slots: u64,
    /// Number of two-way-handshake steps executed.
    pub handshake_slots: u64,
    /// Number of `GlobalSync()` barriers executed outside SCREAM slots.
    pub sync_steps: u64,
}

impl ProtocolTiming {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` SCREAM slots.
    pub fn add_scream_slots(&mut self, count: u64) {
        self.scream_slots += count;
    }

    /// Records one handshake step.
    pub fn add_handshake_slot(&mut self) {
        self.handshake_slots += 1;
    }

    /// Records one global synchronization barrier.
    pub fn add_sync_step(&mut self) {
        self.sync_steps += 1;
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ProtocolTiming) {
        self.scream_slots += other.scream_slots;
        self.handshake_slots += other.handshake_slots;
        self.sync_steps += other.sync_steps;
    }

    /// Total number of synchronized steps of any kind.
    pub fn total_steps(&self) -> u64 {
        self.scream_slots + self.handshake_slots + self.sync_steps
    }

    /// Wall-clock execution time under the given slot timing.
    pub fn execution_time(&self, timing: &SlotTiming) -> SimTime {
        timing.scream_slot.saturating_mul(self.scream_slots)
            + timing.handshake_slot.saturating_mul(self.handshake_slots)
            + timing.sync_overhead.saturating_mul(self.sync_steps)
    }

    /// Wall-clock execution time in seconds (convenience for plotting).
    pub fn execution_secs(&self, timing: &SlotTiming) -> f64 {
        self.execution_time(timing).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_slots_scale_with_scream_size() {
        let radio = RadioConfig::mesh_default();
        let small = SlotTiming::derive(&radio, 5, ClockSkewConfig::PERFECT);
        let large = SlotTiming::derive(&radio, 60, ClockSkewConfig::PERFECT);
        assert!(large.scream_slot > small.scream_slot);
        assert_eq!(large.handshake_slot, small.handshake_slot);
    }

    #[test]
    fn derived_slots_scale_with_clock_skew() {
        let radio = RadioConfig::mesh_default();
        let tight = SlotTiming::derive(&radio, 15, ClockSkewConfig::gps());
        let loose = SlotTiming::derive(&radio, 15, ClockSkewConfig::new(SimTime::from_millis(10)));
        assert!(loose.scream_slot > tight.scream_slot);
        assert!(loose.handshake_slot > tight.handshake_slot);
        assert!(loose.sync_overhead > tight.sync_overhead);
        // The skew contribution dominates for large bounds: 10 ms skew means
        // a 20 ms guard on a ~11 us scream transmission.
        assert!(loose.scream_slot >= SimTime::from_millis(20));
    }

    #[test]
    fn handshake_slot_is_longer_than_scream_slot() {
        // A 1500-byte data packet plus ACK always outweighs a short scream.
        let t = SlotTiming::paper_default();
        assert!(t.handshake_slot > t.scream_slot);
    }

    #[test]
    fn protocol_timing_accumulates_and_converts() {
        let t = SlotTiming::paper_default();
        let mut p = ProtocolTiming::new();
        assert_eq!(p.execution_time(&t), SimTime::ZERO);
        p.add_scream_slots(10);
        p.add_handshake_slot();
        p.add_sync_step();
        assert_eq!(p.total_steps(), 12);
        let expected = t.scream_slot * 10 + t.handshake_slot + t.sync_overhead;
        assert_eq!(p.execution_time(&t), expected);
        assert!((p.execution_secs(&t) - expected.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ProtocolTiming {
            scream_slots: 5,
            handshake_slots: 2,
            sync_steps: 1,
        };
        let b = ProtocolTiming {
            scream_slots: 3,
            handshake_slots: 4,
            sync_steps: 7,
        };
        a.merge(&b);
        assert_eq!(a.scream_slots, 8);
        assert_eq!(a.handshake_slots, 6);
        assert_eq!(a.sync_steps, 8);
    }

    #[test]
    fn execution_time_monotone_in_every_counter() {
        let t = SlotTiming::paper_default();
        let base = ProtocolTiming {
            scream_slots: 100,
            handshake_slots: 50,
            sync_steps: 20,
        };
        for (ds, dh, dy) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
            let more = ProtocolTiming {
                scream_slots: base.scream_slots + ds,
                handshake_slots: base.handshake_slots + dh,
                sync_steps: base.sync_steps + dy,
            };
            assert!(more.execution_time(&t) > base.execution_time(&t));
        }
    }
}
