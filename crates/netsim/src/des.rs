//! A small deterministic discrete-event engine.
//!
//! The mote experiment of Section V is a continuous-time system (periodic
//! SCREAM initiations, byte-serial transmissions, RSSI sampling); it is
//! simulated here with a classic event-queue loop. The engine is generic in
//! the event payload so other packet-level studies can reuse it.
//!
//! Determinism: events scheduled for the same instant are delivered in the
//! order they were scheduled (FIFO per timestamp), so a run is fully
//! reproducible from its inputs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::units::SimTime;

/// An event scheduled for execution at a given simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number used to break ties deterministically.
    pub sequence: u64,
    /// The event payload.
    pub event: E,
}

impl<E> ScheduledEvent<E> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.sequence)
    }
}

impl<E: Eq> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl<E: Eq> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with a simulation clock.
///
/// ```
/// use scream_netsim::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "second");
/// q.schedule(SimTime::from_millis(1), "first");
/// assert_eq!(q.pop().unwrap().event, "first");
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<ScheduledEvent<E>>>,
    now: SimTime,
    next_sequence: u64,
    delivered: u64,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_sequence: 0,
            delivered: 0,
        }
    }

    /// Current simulated time: the timestamp of the last delivered event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if the time is in the past (before the last delivered event),
    /// which would violate causality.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} when the clock is already at {}",
            self.now
        );
        let seq = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Reverse(ScheduledEvent {
            time,
            sequence: seq,
            event,
        }));
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let Reverse(event) = self.heap.pop()?;
        self.now = event.time;
        self.delivered += 1;
        Some(event)
    }

    /// Drains and delivers events to `handler` until the queue is empty or
    /// the clock passes `until`. The handler can schedule further events
    /// through the mutable reference it receives.
    pub fn run_until<F>(&mut self, until: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, ScheduledEvent<E>),
    {
        let mut count = 0;
        while let Some(t) = self.peek_time() {
            if t > until {
                break;
            }
            let ev = self.pop().expect("peeked event must exist");
            handler(self, ev);
            count += 1;
        }
        count
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 5u32);
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(3), 3u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(q.now(), SimTime::from_millis(5));
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn simultaneous_events_preserve_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule(SimTime::from_millis(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.pop();
        q.schedule_after(SimTime::from_millis(5), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(15)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn run_until_respects_the_horizon_and_allows_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        // Each event re-schedules itself 1 ms later; running until 10 ms must
        // deliver exactly 10 events.
        let delivered = q.run_until(SimTime::from_millis(10), |q, ev| {
            q.schedule_after(SimTime::from_millis(1), ev.event + 1);
        });
        assert_eq!(delivered, 10);
        assert_eq!(q.now(), SimTime::from_millis(10));
        assert_eq!(q.len(), 1, "one future event remains beyond the horizon");
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One step of an interleaved workload: schedule a batch of events
        /// at `now + delay`, then pop up to `pops` events.
        type Step = (u8, u8, u8); // (batch, delay, pops)

        /// Replays the steps and returns the full delivery sequence as
        /// `(time, payload)` pairs, where the payload is the global
        /// scheduling index of the event.
        fn replay(steps: &[Step]) -> Vec<(SimTime, u32)> {
            let mut q: EventQueue<u32> = EventQueue::new();
            let mut next_id = 0u32;
            let mut delivered = Vec::new();
            for &(batch, delay, pops) in steps {
                let at = q.now() + SimTime::from_millis(u64::from(delay % 8));
                for _ in 0..batch % 4 {
                    q.schedule(at, next_id);
                    next_id += 1;
                }
                for _ in 0..pops % 4 {
                    if let Some(ev) = q.pop() {
                        delivered.push((ev.time, ev.event));
                    }
                }
            }
            while let Some(ev) = q.pop() {
                delivered.push((ev.time, ev.event));
            }
            delivered
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The contract the module docs pin: events scheduled for the
            /// same instant are delivered in the order they were scheduled
            /// (FIFO per timestamp), deliveries never go back in time, and
            /// the whole interleaving — scheduling more events between pops,
            /// batches landing on already-popped timestamps' successors —
            /// replays deterministically.
            #[test]
            fn same_timestamp_fifo_is_deterministic_under_interleaving(
                steps in prop::collection::vec(
                    (0u8..=255, 0u8..=255, 0u8..=255), 1..40)
            ) {
                let delivered = replay(&steps);
                // Time order is total and non-decreasing.
                for pair in delivered.windows(2) {
                    prop_assert!(pair[0].0 <= pair[1].0, "time went backwards");
                    // FIFO tie-break: equal timestamps preserve scheduling
                    // order, which for this workload means increasing ids.
                    if pair[0].0 == pair[1].0 {
                        prop_assert!(
                            pair[0].1 < pair[1].1,
                            "same-timestamp events left the queue out of \
                             scheduling order: {} before {}",
                            pair[0].1,
                            pair[1].1
                        );
                    }
                }
                // Every scheduled event is delivered exactly once.
                let mut ids: Vec<u32> = delivered.iter().map(|&(_, id)| id).collect();
                ids.sort_unstable();
                let expected: Vec<u32> = (0..ids.len() as u32).collect();
                prop_assert_eq!(ids, expected);
                // The interleaving replays byte-identically.
                prop_assert_eq!(delivered, replay(&steps));
            }
        }
    }
}
