//! Per-node clocks with bounded skew.
//!
//! The protocols assume "all nodes have their clocks synchronized to a global
//! time, within a reasonable degree of accuracy" (Section II) and the
//! evaluation studies how the execution time degrades as the skew bound grows
//! (Section VI-C, Figure 9). Here each node carries a fixed offset from the
//! global clock, drawn uniformly from `[-bound, +bound]`, and protocol slot
//! timings add guard intervals sized from the bound so that slot boundaries
//! never overlap across nodes — the "implementations compensate for the clock
//! skew" behaviour described in the paper.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::units::SimTime;

/// Configuration of the clock-skew model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClockSkewConfig {
    /// Maximum absolute offset of any node's clock from global time.
    pub bound: SimTime,
}

impl ClockSkewConfig {
    /// Perfectly synchronized clocks (zero skew).
    pub const PERFECT: ClockSkewConfig = ClockSkewConfig {
        bound: SimTime::ZERO,
    };

    /// Creates a configuration with the given bound.
    pub const fn new(bound: SimTime) -> Self {
        Self { bound }
    }

    /// GPS-grade synchronization (±1 µs), easily achieved by GPS-equipped
    /// mesh routers per the paper's discussion.
    pub fn gps() -> Self {
        Self::new(SimTime::from_micros(1))
    }

    /// Distributed-synchronization grade (±100 µs), achievable with software
    /// sync protocols for typical mesh sizes per the paper's discussion.
    pub fn distributed_sync() -> Self {
        Self::new(SimTime::from_micros(100))
    }

    /// The guard interval that must be added to every synchronized slot so that a
    /// maximally-early node and a maximally-late node still overlap for the
    /// whole nominal slot: twice the bound.
    pub fn guard_interval(&self) -> SimTime {
        self.bound.saturating_mul(2)
    }
}

impl Default for ClockSkewConfig {
    fn default() -> Self {
        Self::PERFECT
    }
}

/// Concrete per-node clock offsets drawn under a [`ClockSkewConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockModel {
    config: ClockSkewConfig,
    /// Offset of each node's local clock from global time, in signed
    /// nanoseconds.
    offsets_ns: Vec<i64>,
}

impl ClockModel {
    /// Perfectly synchronized clocks for `node_count` nodes.
    pub fn perfect(node_count: usize) -> Self {
        Self {
            config: ClockSkewConfig::PERFECT,
            offsets_ns: vec![0; node_count],
        }
    }

    /// Draws an offset for every node uniformly from `[-bound, +bound]`.
    pub fn generate<R: Rng + ?Sized>(
        node_count: usize,
        config: ClockSkewConfig,
        rng: &mut R,
    ) -> Self {
        let bound = config.bound.as_nanos() as i64;
        let offsets_ns = (0..node_count)
            .map(|_| {
                if bound == 0 {
                    0
                } else {
                    rng.gen_range(-bound..=bound)
                }
            })
            .collect();
        Self { config, offsets_ns }
    }

    /// The skew configuration used to generate this model.
    pub fn config(&self) -> ClockSkewConfig {
        self.config
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.offsets_ns.len()
    }

    /// Signed offset of a node's clock from global time, in nanoseconds.
    pub fn offset_ns(&self, node: usize) -> i64 {
        self.offsets_ns[node]
    }

    /// Local time at `node` when the global time is `global`.
    /// Saturates at zero for offsets that would precede the simulation start.
    pub fn local_time(&self, node: usize, global: SimTime) -> SimTime {
        let shifted = global.as_nanos() as i64 + self.offsets_ns[node];
        SimTime::from_nanos(shifted.max(0) as u64)
    }

    /// Largest pairwise skew actually realized between any two nodes, in
    /// nanoseconds. Always at most `2 * bound`.
    pub fn max_pairwise_skew_ns(&self) -> u64 {
        let min = self.offsets_ns.iter().copied().min().unwrap_or(0);
        let max = self.offsets_ns.iter().copied().max().unwrap_or(0);
        (max - min) as u64
    }

    /// Whether the guard interval of the configuration is large enough to
    /// cover the realized pairwise skew (it is, by construction; exposed for
    /// assertion in tests and protocol self-checks).
    pub fn guard_covers_realized_skew(&self) -> bool {
        self.config.guard_interval().as_nanos() >= self.max_pairwise_skew_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_clocks_have_zero_offsets() {
        let m = ClockModel::perfect(10);
        assert_eq!(m.node_count(), 10);
        assert!((0..10).all(|i| m.offset_ns(i) == 0));
        assert_eq!(m.max_pairwise_skew_ns(), 0);
        assert_eq!(
            m.local_time(3, SimTime::from_millis(5)),
            SimTime::from_millis(5)
        );
    }

    #[test]
    fn generated_offsets_respect_the_bound() {
        let cfg = ClockSkewConfig::new(SimTime::from_micros(100));
        let m = ClockModel::generate(64, cfg, &mut ChaCha8Rng::seed_from_u64(3));
        for i in 0..64 {
            assert!(m.offset_ns(i).unsigned_abs() <= 100_000);
        }
        assert!(m.guard_covers_realized_skew());
        assert!(m.max_pairwise_skew_ns() <= cfg.guard_interval().as_nanos());
    }

    #[test]
    fn generation_is_reproducible() {
        let cfg = ClockSkewConfig::new(SimTime::from_micros(10));
        let a = ClockModel::generate(16, cfg, &mut ChaCha8Rng::seed_from_u64(1));
        let b = ClockModel::generate(16, cfg, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn guard_interval_is_twice_the_bound() {
        let cfg = ClockSkewConfig::new(SimTime::from_micros(50));
        assert_eq!(cfg.guard_interval(), SimTime::from_micros(100));
        assert_eq!(ClockSkewConfig::PERFECT.guard_interval(), SimTime::ZERO);
    }

    #[test]
    fn named_profiles_match_the_paper_discussion() {
        assert_eq!(ClockSkewConfig::gps().bound, SimTime::from_micros(1));
        assert_eq!(
            ClockSkewConfig::distributed_sync().bound,
            SimTime::from_micros(100)
        );
    }

    #[test]
    fn local_time_applies_signed_offset_and_saturates() {
        let m = ClockModel {
            config: ClockSkewConfig::new(SimTime::from_micros(10)),
            offsets_ns: vec![5_000, -5_000],
        };
        let g = SimTime::from_micros(100);
        assert_eq!(m.local_time(0, g), SimTime::from_nanos(105_000));
        assert_eq!(m.local_time(1, g), SimTime::from_nanos(95_000));
        assert_eq!(m.local_time(1, SimTime::from_nanos(1_000)), SimTime::ZERO);
        assert_eq!(m.max_pairwise_skew_ns(), 10_000);
    }
}
