//! Radio-level wireless network simulator for the SCREAM reproduction.
//!
//! The original paper evaluates its protocols inside the Georgia Tech Network
//! Simulator (GTNetS), a C++ packet-level simulator, and validates the SCREAM
//! primitive on Crossbow Mica2 motes. Neither is available here, so this
//! crate implements from scratch the radio-level behaviours the protocols
//! actually depend on:
//!
//! * **propagation** — log-distance path loss with optional log-normal
//!   shadowing (the paper uses a log-normal model with path-loss exponent 3);
//! * **SINR** — received power, noise and interference bookkeeping under the
//!   physical interference model of Section II, including the data/ACK
//!   sub-slot structure;
//! * **carrier sensing** — energy detection above a threshold, which is the
//!   mechanism the SCREAM primitive relies on and which is assumed resilient
//!   to collisions;
//! * **clocks** — per-node bounded clock skew and the guard times the
//!   protocol implementations use to compensate for it (Section VI-C);
//! * **discrete-event engine** — a small deterministic event queue used by
//!   the mote experiment simulation and available for packet-level studies.
//!
//! # Example: building a radio environment and checking a slot
//!
//! ```
//! use scream_netsim::prelude::*;
//! use scream_topology::prelude::*;
//!
//! let deployment = GridDeployment::new(4, 4, 200.0).build();
//! let env = RadioEnvironment::builder()
//!     .propagation(PropagationModel::log_distance(3.0))
//!     .build(&deployment);
//!
//! // Two far-apart links can share a slot; adjacent links cannot.
//! let g = env.communication_graph();
//! assert!(g.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod des;
pub mod environment;
pub mod error;
pub mod ledger;
pub mod propagation;
pub mod radio;
pub mod spatial;
pub mod timing;
pub mod units;

pub use clock::{ClockModel, ClockSkewConfig};
pub use des::{EventQueue, ScheduledEvent};
pub use environment::{FarField, RadioEnvironment, RadioEnvironmentBuilder};
pub use error::NetsimError;
pub use ledger::{ChannelLedgerProbe, ChannelSlotLedger, LedgerProbe, LinkSinrMargin, SlotLedger};
pub use propagation::{GainProfile, PropagationModel, ShadowingField};
pub use radio::{ChannelId, RadioConfig};
pub use spatial::{EndpointBuckets, GridGeometry, SpatialGrid};
pub use timing::{ProtocolTiming, SlotTiming};
pub use units::{DataRate, SimTime};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::clock::{ClockModel, ClockSkewConfig};
    pub use crate::des::{EventQueue, ScheduledEvent};
    pub use crate::environment::{FarField, RadioEnvironment, RadioEnvironmentBuilder};
    pub use crate::error::NetsimError;
    pub use crate::ledger::{
        ChannelLedgerProbe, ChannelSlotLedger, LedgerProbe, LinkSinrMargin, SlotLedger,
    };
    pub use crate::propagation::{GainProfile, PropagationModel, ShadowingField};
    pub use crate::radio::{ChannelId, RadioConfig};
    pub use crate::spatial::{EndpointBuckets, GridGeometry, SpatialGrid};
    pub use crate::timing::{ProtocolTiming, SlotTiming};
    pub use crate::units::{DataRate, SimTime};
}
