//! The radio environment: per-pair channel gains, SINR queries, carrier
//! sensing and the derived communication / sensitivity graphs.
//!
//! [`RadioEnvironment`] is the single source of physical-layer truth shared
//! by the centralized scheduler, the distributed protocols and the analysis
//! code. It implements the physical interference model of Section II with
//! the data/ACK sub-slot variation: a packet on link `(u, v)` scheduled
//! concurrently with links `(x_i, y_i)` is received correctly iff
//!
//! ```text
//!  P_v(u) / (N + Σ_i P_v(x_i))  ≥ β        (data sub-slot)
//!  P_u(v) / (N + Σ_i P_u(y_i))  ≥ β        (ACK sub-slot)
//! ```

use serde::{Deserialize, Serialize};

use scream_topology::{Deployment, Graph, GraphKind, Link, NodeId, Point2};

use crate::error::NetsimError;
use crate::propagation::{GainProfile, PropagationModel, ShadowingField};
use crate::radio::{db_to_linear, mw_to_dbm, RadioConfig};
use crate::spatial::SpatialGrid;

/// Immutable physical-layer state of a deployed mesh: per-pair channel
/// gains (dense or streamed), per-node transmit powers and the radio
/// configuration.
///
/// Two gain representations are supported:
///
/// * **dense** (the default): an n×n gain matrix precomputed at build time,
///   O(1) lookup, supports log-normal shadowing;
/// * **streamed** ([`RadioEnvironmentBuilder::streamed_gains`]): no matrix —
///   gains are recomputed on demand from the struct-of-arrays node positions
///   through a precomputed [`GainProfile`], O(n) memory instead of O(n²).
///   This is what makes 10⁵–10⁶-link instances buildable; it requires
///   shadowing to be disabled (a shadowing field is itself O(n²) state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioEnvironment {
    node_count: usize,
    /// Linear channel gain `g[i][j]` from transmitter `i` to receiver `j`
    /// (row-major `i * n + j`). Symmetric because path loss and shadowing are
    /// symmetric, but stored densely for O(1) lookup. Empty in streamed mode.
    gains: Vec<f64>,
    /// Per-node transmit power in milliwatts.
    tx_power_mw: Vec<f64>,
    /// Node x coordinates in meters (struct-of-arrays with `ys`).
    xs: Vec<f64>,
    /// Node y coordinates in meters.
    ys: Vec<f64>,
    /// Maximum per-node transmit power, in milliwatts (0 with no nodes).
    max_tx_power_mw: f64,
    /// Maximum shadowing *gain boost* baked into `gains`, in dB: the
    /// magnitude of the most negative shadowing sample (0 when shadowing is
    /// disabled or streamed). Folded into conservative far-field and range
    /// bounds so spatial pruning stays sound under shadowing.
    max_shadow_db: f64,
    /// Precomputed squared-distance gain evaluator for the propagation model.
    gain_profile: GainProfile,
    config: RadioConfig,
    propagation: PropagationModel,
    shadowing_sigma_db: f64,
}

/// Far-field pruning parameters derived from an environment: beyond
/// `cutoff_m`, any single transmitter's received power is provably at most
/// `unit_mw` — a fixed fraction of the noise floor — so interference sums may
/// replace far transmitters with `count × unit_mw` without ever flipping a
/// feasibility verdict the exact sum would give (see the ledger module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarField {
    /// The noise-floor cutoff radius, in meters.
    pub cutoff_m: f64,
    /// `cutoff_m²`, for squared-distance comparisons on hot paths.
    pub cutoff_sq_m2: f64,
    /// Conservative per-transmitter received-power bound at or beyond the
    /// cutoff, in milliwatts (includes the maximum transmit power, the
    /// maximum shadowing gain boost and a floating-point slop factor).
    pub unit_mw: f64,
}

/// Per-interferer far-field bound as a fraction of the noise floor. At this
/// level even thousands of aggregated far transmitters perturb an
/// interference sum by well under the margins real verdicts are decided by,
/// and the conservative screens in the ledger fall back to the exact sum
/// whenever a verdict could conceivably be that close.
const FAR_FIELD_NOISE_FRACTION: f64 = 1e-4;

impl RadioEnvironment {
    /// Starts building an environment.
    pub fn builder() -> RadioEnvironmentBuilder {
        RadioEnvironmentBuilder::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The radio configuration in force.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// Number of orthogonal channels the configuration provides. Interference
    /// (and hence every SINR feasibility question) only accrues among links
    /// that share a channel; the gain matrix itself is channel-independent.
    pub fn channel_count(&self) -> usize {
        self.config.channel_count
    }

    /// The deterministic propagation model in force.
    pub fn propagation(&self) -> &PropagationModel {
        &self.propagation
    }

    /// The shadowing standard deviation the gains were generated with, in dB.
    pub fn shadowing_sigma_db(&self) -> f64 {
        self.shadowing_sigma_db
    }

    /// A copy of this environment with the shadowing field redrawn at
    /// `sigma_db` from `seed` — the fault-injection hook for time-varying
    /// fades. Positions, transmit powers, the propagation model and the
    /// radio configuration are unchanged; only the per-pair gains (and the
    /// conservative `max_shadow_db` pruning bound derived from them) are
    /// regenerated, exactly as [`RadioEnvironmentBuilder::build`] would have
    /// with this shadowing draw. Deterministic: the same `(sigma_db, seed)`
    /// always produces the same environment.
    ///
    /// # Panics
    ///
    /// Panics on streamed-gain environments — streaming recomputes gains on
    /// demand from positions alone and cannot carry an O(n²) shadowing field.
    pub fn refaded(&self, sigma_db: f64, seed: u64) -> RadioEnvironment {
        assert!(
            !self.is_streamed(),
            "refading requires dense gains; streamed environments carry no shadowing field"
        );
        let n = self.node_count;
        let shadowing = ShadowingField::generate(n, sigma_db, seed);
        let mut gains = vec![1.0; n * n];
        let mut max_shadow_db = 0.0f64;
        for i in 0..n {
            let pi = Point2::new(self.xs[i], self.ys[i]);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pj = Point2::new(self.xs[j], self.ys[j]);
                let dist = pi.distance(pj);
                let shadow_db = shadowing.shadow_db(i, j);
                max_shadow_db = max_shadow_db.max(-shadow_db);
                let loss_db = self.propagation.path_loss_db(dist) + shadow_db;
                gains[i * n + j] = db_to_linear(-loss_db);
            }
        }
        RadioEnvironment {
            gains,
            max_shadow_db,
            shadowing_sigma_db: sigma_db,
            ..self.clone()
        }
    }

    /// Transmit power of `node` in milliwatts.
    pub fn tx_power_mw(&self, node: NodeId) -> f64 {
        self.tx_power_mw[node.index()]
    }

    /// Maximum per-node transmit power in milliwatts (0 with no nodes).
    pub fn max_tx_power_mw(&self) -> f64 {
        self.max_tx_power_mw
    }

    /// Maximum shadowing gain boost baked into the gain matrix, in dB (0
    /// when shadowing is disabled or gains are streamed).
    pub fn max_shadow_db(&self) -> f64 {
        self.max_shadow_db
    }

    /// Position of `node` in meters.
    pub fn position(&self, node: NodeId) -> Point2 {
        Point2::new(self.xs[node.index()], self.ys[node.index()])
    }

    /// Struct-of-arrays node coordinates `(xs, ys)`, in meters — contiguous
    /// buffers indexed by node id, shared with the spatial index.
    pub fn positions(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// The squared-distance evaluator of the deterministic part of the
    /// propagation model.
    pub fn gain_profile(&self) -> &GainProfile {
        &self.gain_profile
    }

    /// Whether gains are streamed from node positions on demand instead of
    /// read from a dense matrix.
    pub fn is_streamed(&self) -> bool {
        self.gains.is_empty() && self.node_count > 0
    }

    /// Builds a uniform-grid spatial index over the node positions with the
    /// given target cell size in meters.
    pub fn spatial_grid(&self, target_cell_m: f64) -> SpatialGrid {
        SpatialGrid::build(&self.xs, &self.ys, target_cell_m)
    }

    /// Derives the far-field pruning parameters for this environment: the
    /// cutoff radius beyond which any single transmitter delivers at most
    /// [`FarField::unit_mw`] — a 10⁻⁴ fraction of the noise floor — no matter
    /// its power or shadowing draw.
    pub fn far_field(&self) -> FarField {
        if self.max_tx_power_mw <= 0.0 {
            // Nothing transmits, so every interferer contributes exactly 0.
            return FarField {
                cutoff_m: 0.0,
                cutoff_sq_m2: 0.0,
                unit_mw: 0.0,
            };
        }
        let target_mw = self.config.noise_floor_mw() * FAR_FIELD_NOISE_FRACTION;
        let budget_db = mw_to_dbm(self.max_tx_power_mw) + self.max_shadow_db - mw_to_dbm(target_mw);
        let cutoff_m = self.propagation.distance_for_loss_db(budget_db);
        let cutoff_sq_m2 = cutoff_m * cutoff_m;
        // Gain is non-increasing in distance, so evaluating the profile *at*
        // the cutoff bounds every transmitter at or beyond it; the slop
        // factor absorbs the floating-point rounding between the profile and
        // the dense matrix's `powf` chain.
        let unit_mw = self.max_tx_power_mw
            * self.gain_profile.gain_from_distance_squared(cutoff_sq_m2)
            * db_to_linear(self.max_shadow_db)
            * (1.0 + 1e-6);
        FarField {
            cutoff_m,
            cutoff_sq_m2,
            unit_mw,
        }
    }

    /// Linear channel gain from `tx` to `rx` (1.0 on the diagonal). Dense
    /// environments read the precomputed matrix; streamed environments
    /// evaluate the [`GainProfile`] on the squared node distance.
    pub fn gain(&self, tx: NodeId, rx: NodeId) -> f64 {
        if !self.gains.is_empty() {
            return self.gains[tx.index() * self.node_count + rx.index()];
        }
        if tx == rx {
            return 1.0;
        }
        let dx = self.xs[tx.index()] - self.xs[rx.index()];
        let dy = self.ys[tx.index()] - self.ys[rx.index()];
        self.gain_profile
            .gain_from_distance_squared(dx * dx + dy * dy)
    }

    /// Received power at `rx` of a transmission from `tx`, in milliwatts
    /// (`P_rx(tx)` in the paper's notation).
    pub fn received_power_mw(&self, tx: NodeId, rx: NodeId) -> f64 {
        self.tx_power_mw[tx.index()] * self.gain(tx, rx)
    }

    /// Received power at `rx` from `tx`, in dBm.
    pub fn received_power_dbm(&self, tx: NodeId, rx: NodeId) -> f64 {
        mw_to_dbm(self.received_power_mw(tx, rx))
    }

    /// SINR (linear) at `rx` for a transmission from `tx`, with the given
    /// concurrent interfering transmitters. Interferers equal to `tx` or `rx`
    /// are ignored (a node does not interfere with its own reception).
    pub fn sinr_linear(&self, tx: NodeId, rx: NodeId, interferers: &[NodeId]) -> f64 {
        let signal = self.received_power_mw(tx, rx);
        let mut interference = 0.0;
        for &i in interferers {
            if i == tx || i == rx {
                continue;
            }
            interference += self.received_power_mw(i, rx);
        }
        signal / (self.config.noise_floor_mw() + interference)
    }

    /// SINR in dB; see [`sinr_linear`](Self::sinr_linear).
    pub fn sinr_db(&self, tx: NodeId, rx: NodeId, interferers: &[NodeId]) -> f64 {
        10.0 * self.sinr_linear(tx, rx, interferers).log10()
    }

    /// Whether a transmission from `tx` is decodable at `rx` against the
    /// given interferer set.
    pub fn decodable(&self, tx: NodeId, rx: NodeId, interferers: &[NodeId]) -> bool {
        self.sinr_linear(tx, rx, interferers) >= self.config.sinr_threshold_linear()
    }

    /// Carrier sensing: whether `listener` detects channel activity when the
    /// given set of nodes transmit simultaneously. Energy detection sums the
    /// received powers, so concurrent transmissions (collisions) only make
    /// detection easier — the property the SCREAM primitive relies on.
    pub fn carrier_sense(&self, listener: NodeId, transmitters: &[NodeId]) -> bool {
        let mut total = 0.0;
        for &t in transmitters {
            if t == listener {
                continue;
            }
            total += self.received_power_mw(t, listener);
        }
        total >= self.config.carrier_sense_threshold_mw()
    }

    /// Checks the *data sub-slot* condition for `link` against the data
    /// transmitters of the concurrent links. Interference is summed inline
    /// (same accumulation order as the interferer list the seed collected),
    /// so the check is allocation-free.
    pub fn data_subslot_ok(&self, link: Link, concurrent: &[Link]) -> bool {
        let signal = self.received_power_mw(link.head, link.tail);
        let mut interference = 0.0;
        for l in concurrent {
            if *l == link || l.head == link.head || l.head == link.tail {
                continue;
            }
            interference += self.received_power_mw(l.head, link.tail);
        }
        signal / (self.config.noise_floor_mw() + interference)
            >= self.config.sinr_threshold_linear()
    }

    /// Checks the *ACK sub-slot* condition for `link` against the ACK
    /// transmitters (the tails) of the concurrent links, allocation-free like
    /// [`data_subslot_ok`](Self::data_subslot_ok).
    pub fn ack_subslot_ok(&self, link: Link, concurrent: &[Link]) -> bool {
        let signal = self.received_power_mw(link.tail, link.head);
        let mut interference = 0.0;
        for l in concurrent {
            if *l == link || l.tail == link.tail || l.tail == link.head {
                continue;
            }
            interference += self.received_power_mw(l.tail, link.head);
        }
        signal / (self.config.noise_floor_mw() + interference)
            >= self.config.sinr_threshold_linear()
    }

    /// Whether the two-way handshake on `link` succeeds when scheduled
    /// concurrently with `concurrent` (which may or may not contain `link`
    /// itself): both the data packet and the ACK must meet the SINR
    /// threshold.
    pub fn handshake_ok(&self, link: Link, concurrent: &[Link]) -> bool {
        self.data_subslot_ok(link, concurrent) && self.ack_subslot_ok(link, concurrent)
    }

    /// Whether the whole set of links can be scheduled in the same slot: no
    /// two links may share an endpoint (half-duplex radios), and every link's
    /// two-way handshake must succeed against all the others.
    ///
    /// This is the paper's definition of a *feasible* transmission set.
    pub fn slot_feasible(&self, links: &[Link]) -> bool {
        for (i, a) in links.iter().enumerate() {
            if a.head == a.tail {
                return false;
            }
            for b in &links[i + 1..] {
                if a.shares_endpoint(b) {
                    return false;
                }
            }
        }
        links.iter().all(|&l| self.handshake_ok(l, links))
    }

    /// Whether `candidate` can be added to an already-feasible slot without
    /// making it infeasible. Equivalent to `slot_feasible(existing + candidate)`
    /// but spelled out for readability at call sites.
    pub fn can_add_to_slot(&self, existing: &[Link], candidate: Link) -> bool {
        if candidate.head == candidate.tail {
            return false;
        }
        if existing.iter().any(|l| l.shares_endpoint(&candidate)) {
            return false;
        }
        let mut all: Vec<Link> = existing.to_vec();
        all.push(candidate);
        all.iter().all(|&l| self.handshake_ok(l, &all))
    }

    /// Whether a (bidirectional) link between `u` and `v` exists *in the
    /// absence of interference* — the definition of an edge of the
    /// communication graph `G` in Section II.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::SelfLink`] if `u == v` and
    /// [`NetsimError::UnknownNode`] for out-of-range ids.
    pub fn link_exists(&self, u: NodeId, v: NodeId) -> Result<bool, NetsimError> {
        for id in [u, v] {
            if id.index() >= self.node_count {
                return Err(NetsimError::UnknownNode {
                    id,
                    node_count: self.node_count,
                });
            }
        }
        if u == v {
            return Err(NetsimError::SelfLink(u));
        }
        Ok(self.handshake_ok(Link::new(u, v), &[]))
    }

    /// Node count above which graph construction switches from the O(n²)
    /// pair scan to grid-accelerated neighbor enumeration. The two paths
    /// build identical graphs — same edges inserted in the same order — so
    /// the threshold is purely a constant-factor knob; the pair scan stays
    /// as the small-instance default and the property-test oracle.
    const GRAPH_GRID_THRESHOLD: usize = 256;

    /// Conservative upper bound in meters on the length of any
    /// interference-free communication edge: past this distance even the
    /// loudest node with the largest shadowing boost falls below β against
    /// noise alone. The pad absorbs floating-point rounding in the loss
    /// inversion, so grid-pruned construction can never drop a borderline
    /// edge the pair scan would keep.
    fn max_link_range_m(&self) -> f64 {
        if self.max_tx_power_mw <= 0.0 {
            return 0.0;
        }
        let budget_db = mw_to_dbm(self.max_tx_power_mw) + self.max_shadow_db
            - self.config.noise_floor_dbm
            - self.config.sinr_threshold_db;
        self.propagation.distance_for_loss_db(budget_db) * 1.001
    }

    /// Conservative upper bound in meters on the carrier-sense range of any
    /// single transmitter, padded like [`max_link_range_m`](Self::max_link_range_m).
    fn max_carrier_sense_range_m(&self) -> f64 {
        if self.max_tx_power_mw <= 0.0 {
            return 0.0;
        }
        let budget_db = mw_to_dbm(self.max_tx_power_mw) + self.max_shadow_db
            - self.config.carrier_sense_threshold_dbm;
        self.propagation.distance_for_loss_db(budget_db) * 1.001
    }

    /// Builds the communication graph `G = (V, E)`: an undirected edge per
    /// node pair whose two-way handshake succeeds without interference.
    /// Unidirectional links are excluded by construction, as required by the
    /// link-layer-reliability assumption of Section II.
    pub fn communication_graph(&self) -> Graph {
        self.communication_graph_impl(self.node_count > Self::GRAPH_GRID_THRESHOLD)
    }

    fn communication_graph_impl(&self, use_grid: bool) -> Graph {
        let mut g = Graph::new(self.node_count, GraphKind::Undirected);
        if use_grid {
            let range_m = self.max_link_range_m();
            let grid = self.spatial_grid((range_m / 2.0).max(1.0));
            let mut near: Vec<u32> = Vec::new();
            for i in 0..self.node_count {
                let u = NodeId::new(i as u32);
                near.clear();
                grid.nodes_within(&self.xs, &self.ys, self.position(u), range_m, &mut near);
                // `near` is ascending, so edges appear in the same (i, j>i)
                // order the pair scan produces.
                for &jv in &near {
                    if (jv as usize) <= i {
                        continue;
                    }
                    let v = NodeId::new(jv);
                    if self.handshake_ok(Link::new(u, v), &[]) {
                        g.add_edge_unchecked(u, v);
                    }
                }
            }
        } else {
            for i in 0..self.node_count {
                for j in (i + 1)..self.node_count {
                    let u = NodeId::new(i as u32);
                    let v = NodeId::new(j as u32);
                    if self.handshake_ok(Link::new(u, v), &[]) {
                        g.add_edge_unchecked(u, v);
                    }
                }
            }
        }
        g
    }

    /// Builds the sensitivity graph `G_S = (V, E_S)` of Definition 1: a
    /// directed edge `(u, v)` whenever `v` detects channel activity when only
    /// `u` transmits.
    pub fn sensitivity_graph(&self) -> Graph {
        self.sensitivity_graph_impl(self.node_count > Self::GRAPH_GRID_THRESHOLD)
    }

    fn sensitivity_graph_impl(&self, use_grid: bool) -> Graph {
        let mut g = Graph::new(self.node_count, GraphKind::Directed);
        if use_grid {
            let range_m = self.max_carrier_sense_range_m();
            let grid = self.spatial_grid((range_m / 2.0).max(1.0));
            let mut near: Vec<u32> = Vec::new();
            for i in 0..self.node_count {
                let u = NodeId::new(i as u32);
                near.clear();
                grid.nodes_within(&self.xs, &self.ys, self.position(u), range_m, &mut near);
                for &jv in &near {
                    if jv as usize == i {
                        continue;
                    }
                    let v = NodeId::new(jv);
                    if self.carrier_sense(v, &[u]) {
                        g.add_edge_unchecked(u, v);
                    }
                }
            }
        } else {
            for i in 0..self.node_count {
                for j in 0..self.node_count {
                    if i == j {
                        continue;
                    }
                    let u = NodeId::new(i as u32);
                    let v = NodeId::new(j as u32);
                    if self.carrier_sense(v, &[u]) {
                        g.add_edge_unchecked(u, v);
                    }
                }
            }
        }
        g
    }

    /// The interference diameter `ID(G_S)` of the sensitivity graph
    /// (Definition 2), with `usize::MAX` standing in for infinity when the
    /// sensitivity graph is not strongly connected.
    pub fn interference_diameter(&self) -> usize {
        self.sensitivity_graph().interference_diameter()
    }

    /// Approximate communication range in meters for a node transmitting at
    /// `tx_power_dbm`, ignoring shadowing: the distance at which the
    /// interference-free SNR falls to the threshold β.
    pub fn nominal_communication_range_m(&self, tx_power_dbm: f64) -> f64 {
        let max_loss = tx_power_dbm - self.config.noise_floor_dbm - self.config.sinr_threshold_db;
        self.propagation.distance_for_loss_db(max_loss)
    }

    /// Approximate carrier-sense range in meters for a node transmitting at
    /// `tx_power_dbm`, ignoring shadowing.
    pub fn nominal_carrier_sense_range_m(&self, tx_power_dbm: f64) -> f64 {
        let max_loss = tx_power_dbm - self.config.carrier_sense_threshold_dbm;
        self.propagation.distance_for_loss_db(max_loss)
    }
}

/// Builder for [`RadioEnvironment`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioEnvironmentBuilder {
    config: RadioConfig,
    propagation: PropagationModel,
    shadowing_sigma_db: f64,
    shadowing_seed: u64,
    stream_gains: bool,
}

impl Default for RadioEnvironmentBuilder {
    fn default() -> Self {
        Self {
            config: RadioConfig::mesh_default(),
            propagation: PropagationModel::paper_default(),
            shadowing_sigma_db: 0.0,
            shadowing_seed: 0,
            stream_gains: false,
        }
    }
}

impl RadioEnvironmentBuilder {
    /// Sets the radio configuration (noise floor, β, carrier-sense threshold,
    /// rates and frame sizes).
    pub fn config(mut self, config: RadioConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the deterministic propagation model.
    pub fn propagation(mut self, model: PropagationModel) -> Self {
        self.propagation = model;
        self
    }

    /// Enables log-normal shadowing with the given standard deviation (dB)
    /// and seed. The paper's simulations use a log-normal model; a σ of
    /// 4–8 dB is typical for outdoor mesh deployments.
    pub fn shadowing(mut self, sigma_db: f64, seed: u64) -> Self {
        self.shadowing_sigma_db = sigma_db;
        self.shadowing_seed = seed;
        self
    }

    /// Switches the build to *streamed* gains: no n×n matrix is materialized
    /// and [`RadioEnvironment::gain`] evaluates the propagation model's
    /// [`GainProfile`] on demand from node positions. Memory drops from O(n²)
    /// to O(n), which is what makes 10⁵–10⁶-link instances representable.
    ///
    /// Requires shadowing to stay disabled (σ = 0): a shadowing field is
    /// itself O(n²) state, so [`build`](Self::build) panics otherwise.
    pub fn streamed_gains(mut self) -> Self {
        self.stream_gains = true;
        self
    }

    /// Builds the environment for the given deployment, precomputing the full
    /// gain matrix (or none of it with [`streamed_gains`](Self::streamed_gains)).
    pub fn build(self, deployment: &Deployment) -> RadioEnvironment {
        let n = deployment.len();
        let (xs, ys) = deployment.position_buffers();
        let mut max_shadow_db = 0.0f64;
        let gains = if self.stream_gains {
            assert!(
                self.shadowing_sigma_db == 0.0,
                "streamed gains require shadowing to be disabled (σ = 0), got σ = {} dB",
                self.shadowing_sigma_db
            );
            Vec::new()
        } else {
            let shadowing =
                ShadowingField::generate(n, self.shadowing_sigma_db, self.shadowing_seed);
            let mut gains = vec![1.0; n * n];
            for i in 0..n {
                let pi = Point2::new(xs[i], ys[i]);
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let pj = Point2::new(xs[j], ys[j]);
                    let dist = pi.distance(pj);
                    let shadow_db = shadowing.shadow_db(i, j);
                    // A negative sample *boosts* the gain; track the largest
                    // boost for the conservative far-field and range bounds.
                    max_shadow_db = max_shadow_db.max(-shadow_db);
                    let loss_db = self.propagation.path_loss_db(dist) + shadow_db;
                    gains[i * n + j] = db_to_linear(-loss_db);
                }
            }
            gains
        };
        let tx_power_mw: Vec<f64> = deployment
            .nodes()
            .iter()
            .map(|node| node.tx_power_mw())
            .collect();
        let max_tx_power_mw = tx_power_mw.iter().fold(0.0f64, |m, &p| m.max(p));
        RadioEnvironment {
            node_count: n,
            gains,
            tx_power_mw,
            xs,
            ys,
            max_tx_power_mw,
            max_shadow_db,
            gain_profile: self.propagation.gain_profile(),
            config: self.config,
            propagation: self.propagation,
            shadowing_sigma_db: self.shadowing_sigma_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scream_topology::{GridDeployment, Point2, Rect};

    fn line_deployment(spacing: f64, count: usize) -> Deployment {
        let positions: Vec<Point2> = (0..count)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect();
        Deployment::from_positions(&positions, 20.0, Rect::square(spacing * count as f64)).unwrap()
    }

    fn env(deployment: &Deployment) -> RadioEnvironment {
        RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .build(deployment)
    }

    #[test]
    fn refading_is_deterministic_and_perturbs_only_the_gains() {
        let d = line_deployment(150.0, 6);
        let base = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .shadowing(4.0, 7)
            .build(&d);
        let faded = base.refaded(4.0, 8);
        let faded_again = base.refaded(4.0, 8);
        assert_eq!(faded, faded_again, "same (sigma, seed) must reproduce");
        assert_ne!(faded, base, "a fresh seed redraws the field");
        assert_eq!(faded.positions(), base.positions());
        assert_eq!(faded.config(), base.config());
        // Redrawing with the builder's own draw reproduces build() exactly.
        let rebuilt = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .shadowing(4.0, 7)
            .build(&d);
        assert_eq!(base.refaded(4.0, 7), rebuilt);
    }

    #[test]
    #[should_panic(expected = "streamed")]
    fn refading_a_streamed_environment_panics() {
        let d = line_deployment(150.0, 4);
        let streamed = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .streamed_gains()
            .build(&d);
        let _ = streamed.refaded(2.0, 1);
    }

    #[test]
    fn received_power_decreases_with_distance() {
        let d = line_deployment(100.0, 4);
        let e = env(&d);
        let p1 = e.received_power_mw(NodeId::new(0), NodeId::new(1));
        let p2 = e.received_power_mw(NodeId::new(0), NodeId::new(2));
        let p3 = e.received_power_mw(NodeId::new(0), NodeId::new(3));
        assert!(p1 > p2 && p2 > p3);
    }

    #[test]
    fn gain_matrix_is_symmetric_without_heterogeneous_power() {
        let d = line_deployment(137.0, 5);
        let e = env(&d);
        for i in 0..5 {
            for j in 0..5 {
                let a = e.gain(NodeId::new(i), NodeId::new(j));
                let b = e.gain(NodeId::new(j), NodeId::new(i));
                assert!((a - b).abs() < 1e-18);
            }
        }
    }

    #[test]
    fn sinr_without_interference_is_snr() {
        let d = line_deployment(200.0, 2);
        let e = env(&d);
        let snr = e.sinr_linear(NodeId::new(0), NodeId::new(1), &[]);
        let expected =
            e.received_power_mw(NodeId::new(0), NodeId::new(1)) / e.config().noise_floor_mw();
        assert!((snr - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn interference_lowers_sinr() {
        let d = line_deployment(150.0, 3);
        let e = env(&d);
        let clean = e.sinr_linear(NodeId::new(0), NodeId::new(1), &[]);
        let jammed = e.sinr_linear(NodeId::new(0), NodeId::new(1), &[NodeId::new(2)]);
        assert!(jammed < clean);
    }

    #[test]
    fn sender_and_receiver_are_not_their_own_interferers() {
        let d = line_deployment(150.0, 3);
        let e = env(&d);
        let with_self = e.sinr_linear(
            NodeId::new(0),
            NodeId::new(1),
            &[NodeId::new(0), NodeId::new(1)],
        );
        let clean = e.sinr_linear(NodeId::new(0), NodeId::new(1), &[]);
        assert_eq!(with_self, clean);
    }

    #[test]
    fn decodable_matches_threshold() {
        let d = line_deployment(100.0, 2);
        let e = env(&d);
        assert!(e.decodable(NodeId::new(0), NodeId::new(1), &[]));
        // A node 100 km away is certainly not decodable.
        let far = Deployment::from_positions(
            &[Point2::new(0.0, 0.0), Point2::new(100_000.0, 0.0)],
            20.0,
            Rect::square(100_000.0),
        )
        .unwrap();
        let e_far = env(&far);
        assert!(!e_far.decodable(NodeId::new(0), NodeId::new(1), &[]));
    }

    #[test]
    fn carrier_sense_aggregates_power_from_collisions() {
        // Place two transmitters at a distance where one alone is just below
        // the carrier-sense threshold but two together are above it.
        let d = line_deployment(1.0, 3);
        let mut e = env(&d);
        let single = e.received_power_mw(NodeId::new(0), NodeId::new(2));
        // Craft a threshold between 1x and 2x the single received power.
        e.config.carrier_sense_threshold_dbm = mw_to_dbm(single * 1.5);
        assert!(!e.carrier_sense(NodeId::new(2), &[NodeId::new(0)]));
        assert!(e.carrier_sense(NodeId::new(2), &[NodeId::new(0), NodeId::new(1)]));
    }

    #[test]
    fn carrier_sense_ignores_own_transmission() {
        let d = line_deployment(100.0, 2);
        let e = env(&d);
        assert!(!e.carrier_sense(NodeId::new(0), &[NodeId::new(0)]));
    }

    #[test]
    fn handshake_checks_both_directions() {
        let d = line_deployment(150.0, 4);
        let e = env(&d);
        let link = Link::new(NodeId::new(0), NodeId::new(1));
        assert!(e.handshake_ok(link, &[]));
        // With a strong interferer right next to the receiver, the data
        // sub-slot fails even though the ACK direction would be fine.
        let interfering = Link::new(NodeId::new(2), NodeId::new(3));
        let data_ok = e.data_subslot_ok(link, &[link, interfering]);
        let ack_ok = e.ack_subslot_ok(link, &[link, interfering]);
        assert_eq!(
            e.handshake_ok(link, &[link, interfering]),
            data_ok && ack_ok
        );
    }

    #[test]
    fn slot_with_shared_endpoint_is_infeasible() {
        let d = line_deployment(100.0, 3);
        let e = env(&d);
        let a = Link::new(NodeId::new(0), NodeId::new(1));
        let b = Link::new(NodeId::new(1), NodeId::new(2));
        assert!(!e.slot_feasible(&[a, b]));
        assert!(e.slot_feasible(&[a]));
    }

    #[test]
    fn self_links_are_rejected() {
        let d = line_deployment(100.0, 2);
        let e = env(&d);
        assert!(!e.slot_feasible(&[Link::new(NodeId::new(0), NodeId::new(0))]));
        assert!(matches!(
            e.link_exists(NodeId::new(1), NodeId::new(1)),
            Err(NetsimError::SelfLink(_))
        ));
        assert!(matches!(
            e.link_exists(NodeId::new(0), NodeId::new(9)),
            Err(NetsimError::UnknownNode { .. })
        ));
    }

    #[test]
    fn distant_parallel_links_can_share_a_slot_but_adjacent_ones_may_not() {
        // 8 nodes in a line, 200 m apart. Links (0->1) and (6->7) are 1 km
        // apart and should coexist; links (0->1) and (2->3) are adjacent and
        // the interferer at node 2 is only 200 m from receiver 1.
        let d = line_deployment(200.0, 8);
        let e = env(&d);
        let a = Link::new(NodeId::new(0), NodeId::new(1));
        let far = Link::new(NodeId::new(6), NodeId::new(7));
        let near = Link::new(NodeId::new(2), NodeId::new(3));
        assert!(e.slot_feasible(&[a, far]));
        assert!(!e.slot_feasible(&[a, near]));
    }

    #[test]
    fn can_add_to_slot_agrees_with_slot_feasible() {
        let d = line_deployment(200.0, 8);
        let e = env(&d);
        let a = Link::new(NodeId::new(0), NodeId::new(1));
        let far = Link::new(NodeId::new(6), NodeId::new(7));
        let near = Link::new(NodeId::new(2), NodeId::new(3));
        assert!(e.can_add_to_slot(&[a], far));
        assert!(!e.can_add_to_slot(&[a], near));
        assert_eq!(e.can_add_to_slot(&[a], far), e.slot_feasible(&[a, far]));
    }

    #[test]
    fn communication_graph_links_are_bidirectional_and_range_limited() {
        let d = GridDeployment::new(4, 4, 200.0).build();
        let e = env(&d);
        let g = e.communication_graph();
        assert_eq!(g.kind(), GraphKind::Undirected);
        assert!(g.is_connected());
        // Nominal range at 20 dBm, alpha 3, beta 10 dB, N -100 dBm:
        // max loss = 110 dB => range = 10^((110-40)/30) ~ 215 m. So lattice
        // neighbors (200 m) are connected but diagonal ones (~283 m) are not.
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(5)));
    }

    #[test]
    fn sensitivity_graph_is_supergraph_of_communication_graph() {
        let d = GridDeployment::new(4, 4, 200.0).build();
        let e = env(&d);
        let comm = e.communication_graph();
        let sens = e.sensitivity_graph();
        for (u, v) in comm.edges() {
            assert!(sens.has_edge(u, v) && sens.has_edge(v, u));
        }
        assert!(sens.edge_count() >= 2 * comm.edge_count());
    }

    #[test]
    fn interference_diameter_shrinks_with_denser_networks() {
        let sparse = GridDeployment::new(6, 6, 200.0).build();
        let dense = GridDeployment::new(6, 6, 60.0).build();
        let id_sparse = env(&sparse).interference_diameter();
        let id_dense = env(&dense).interference_diameter();
        assert!(id_dense <= id_sparse);
        assert!(id_sparse < usize::MAX);
    }

    #[test]
    fn nominal_ranges_match_hand_computation() {
        let d = line_deployment(100.0, 2);
        let e = env(&d);
        // comm range: loss budget 20-(-100)-10 = 110 dB; 40 + 30 log10(r) = 110
        // => r = 10^(70/30) ~ 215.44 m
        let r = e.nominal_communication_range_m(20.0);
        assert!((r - 10f64.powf(70.0 / 30.0)).abs() < 1e-6);
        // CS range: loss budget 20-(-91) = 111 dB => r = 10^(71/30) ~ 232 m
        let rcs = e.nominal_carrier_sense_range_m(20.0);
        assert!(rcs > r);
    }

    #[test]
    fn shadowing_changes_gains_reproducibly() {
        let d = GridDeployment::new(3, 3, 150.0).build();
        let base = RadioEnvironment::builder().build(&d);
        let shadowed_a = RadioEnvironment::builder().shadowing(6.0, 1).build(&d);
        let shadowed_b = RadioEnvironment::builder().shadowing(6.0, 1).build(&d);
        let shadowed_c = RadioEnvironment::builder().shadowing(6.0, 2).build(&d);
        assert_eq!(shadowed_a, shadowed_b);
        assert_ne!(shadowed_a, shadowed_c);
        assert_ne!(
            base.gain(NodeId::new(0), NodeId::new(1)),
            shadowed_a.gain(NodeId::new(0), NodeId::new(1))
        );
        assert_eq!(base.shadowing_sigma_db(), 0.0);
        assert_eq!(shadowed_a.shadowing_sigma_db(), 6.0);
    }

    #[test]
    fn streamed_gains_match_dense_gains() {
        let d = GridDeployment::new(5, 4, 180.0).build();
        let dense = env(&d);
        let streamed = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .streamed_gains()
            .build(&d);
        assert!(streamed.is_streamed());
        assert!(!dense.is_streamed());
        for i in 0..d.len() as u32 {
            for j in 0..d.len() as u32 {
                let a = dense.gain(NodeId::new(i), NodeId::new(j));
                let b = streamed.gain(NodeId::new(i), NodeId::new(j));
                assert!(
                    (a - b).abs() <= 1e-12 * a.max(b),
                    "gain mismatch at ({i}, {j}): {a} vs {b}"
                );
            }
        }
        assert_eq!(dense.communication_graph(), streamed.communication_graph());
        assert_eq!(dense.sensitivity_graph(), streamed.sensitivity_graph());
    }

    #[test]
    #[should_panic(expected = "streamed gains")]
    fn streamed_gains_reject_shadowing() {
        let d = GridDeployment::new(2, 2, 100.0).build();
        let _ = RadioEnvironment::builder()
            .shadowing(6.0, 1)
            .streamed_gains()
            .build(&d);
    }

    #[test]
    fn grid_graphs_match_pair_scan_graphs() {
        let d = GridDeployment::new(5, 5, 170.0).build();
        let e = env(&d);
        assert_eq!(
            e.communication_graph_impl(true),
            e.communication_graph_impl(false)
        );
        assert_eq!(
            e.sensitivity_graph_impl(true),
            e.sensitivity_graph_impl(false)
        );
        // Shadowed environments keep the equivalence because the range bound
        // folds in the largest shadowing boost.
        let es = RadioEnvironment::builder().shadowing(8.0, 7).build(&d);
        assert!(es.max_shadow_db() > 0.0);
        assert_eq!(
            es.communication_graph_impl(true),
            es.communication_graph_impl(false)
        );
        assert_eq!(
            es.sensitivity_graph_impl(true),
            es.sensitivity_graph_impl(false)
        );
    }

    #[test]
    fn far_field_bounds_received_power_beyond_cutoff() {
        // 4x4 grid at 5 km spacing: many pairs sit beyond the ~10 km cutoff
        // the default mesh parameters produce.
        let d = GridDeployment::new(4, 4, 5000.0).build();
        let shadowed = RadioEnvironment::builder().shadowing(8.0, 3).build(&d);
        for (e, expect_beyond) in [(env(&d), true), (shadowed, false)] {
            let ff = e.far_field();
            assert!(ff.cutoff_m > 0.0 && ff.unit_mw > 0.0);
            assert!((ff.cutoff_sq_m2 - ff.cutoff_m * ff.cutoff_m).abs() <= f64::EPSILON);
            let mut beyond = 0;
            for i in 0..16u32 {
                for j in 0..16u32 {
                    if i == j {
                        continue;
                    }
                    let (u, v) = (NodeId::new(i), NodeId::new(j));
                    if e.position(u).distance_squared(e.position(v)) > ff.cutoff_sq_m2 {
                        beyond += 1;
                        assert!(e.received_power_mw(u, v) <= ff.unit_mw);
                    }
                }
            }
            // The shadowing boost widens the cutoff, possibly past the test
            // grid's diameter, so only the unshadowed run pins coverage.
            assert!(
                beyond > 0 || !expect_beyond,
                "test grid too small to exercise the cutoff"
            );
        }
        // Without shadowing the unit bound is the documented noise fraction
        // (up to the slop factor).
        let e = env(&d);
        let ff = e.far_field();
        assert!(ff.unit_mw <= e.config().noise_floor_mw() * 1.1e-4);
    }

    #[test]
    fn positions_roundtrip_through_environment() {
        let d = GridDeployment::new(3, 2, 75.0).build();
        let e = env(&d);
        let (xs, ys) = e.positions();
        assert_eq!(xs.len(), 6);
        for i in 0..6u32 {
            let p = d.position(NodeId::new(i));
            assert_eq!(e.position(NodeId::new(i)), p);
            assert_eq!(xs[i as usize], p.x);
            assert_eq!(ys[i as usize], p.y);
        }
        assert_eq!(e.max_tx_power_mw(), crate::radio::dbm_to_mw(20.0));
    }

    #[test]
    fn heterogeneous_power_breaks_link_symmetry_but_not_gain_symmetry() {
        let positions = [Point2::new(0.0, 0.0), Point2::new(210.0, 0.0)];
        let mut nodes = Vec::new();
        for (i, &p) in positions.iter().enumerate() {
            nodes.push(scream_topology::NodeInfo::new(
                NodeId::new(i as u32),
                p,
                if i == 0 { 20.0 } else { 0.0 },
            ));
        }
        let d = Deployment::from_nodes(
            nodes,
            Rect::square(250.0),
            scream_topology::DeploymentKind::Custom,
        )
        .unwrap();
        let e = env(&d);
        // Node 0 is loud, node 1 is quiet: 0->1 decodable, 1->0 not.
        assert!(e.decodable(NodeId::new(0), NodeId::new(1), &[]));
        assert!(!e.decodable(NodeId::new(1), NodeId::new(0), &[]));
        // Hence no bidirectional link, and the communication graph drops it.
        assert!(!e.link_exists(NodeId::new(0), NodeId::new(1)).unwrap());
        assert_eq!(e.communication_graph().edge_count(), 0);
    }
}
