//! `scream-obs` — deterministic observability for the SCREAM workspace.
//!
//! Distributed-scheduling results are stated in *logical* costs — slots,
//! rounds, probes — so the observability layer speaks the same language: a
//! metrics registry and a trace stream stamped with the **slot clock**
//! (slot, round, epoch, probe ordinal), never a wall clock. Two runs of the
//! same instance and seed produce byte-identical snapshots and traces, which
//! keeps the layer compatible with the D1 determinism gate and lets CI diff
//! exported traces like any other artifact.
//!
//! The subsystem has three parts:
//!
//! * the **registry** ([`registry`]): counters, gauges and log₂-bucket
//!   histograms keyed by `&'static str` in BTree collections, frozen into a
//!   [`Snapshot`] (`PartialEq` + JSON export + [`Snapshot::diff`]);
//! * the **trace ring** ([`trace`]): bounded, keep-first span/event records
//!   ([`TraceEvent`]) with JSONL export;
//! * the **sink** (this module): a thread-local `Option<ObsState>` behind
//!   free emission functions ([`counter_add`], [`gauge_set`], [`observe`],
//!   [`event`], the clock setters). When no sink is installed every
//!   emission is a thread-local read plus an `Option` check — cheap enough
//!   for the ledger's probe loop — and instrumented code needs no `&mut
//!   Obs` threaded through its signatures.
//!
//! Instrumented hot paths must route *all* formatting and allocation
//! through this sink (the `O1.sink` lint rule): emission takes only
//! `&'static str` names and `u64` values, so a disabled sink allocates
//! nothing and the instrumented code path is byte-identical to the
//! uninstrumented one.
//!
//! # Usage
//!
//! ```
//! scream_obs::install();
//! scream_obs::set_slot(3);
//! scream_obs::counter_add("ledger.probe.reject", 1);
//! scream_obs::event("greedy.link", &[("link", 7), ("rejects", 2)]);
//! let report = scream_obs::uninstall().expect("sink was installed");
//! assert_eq!(report.snapshot.counter("ledger.probe.reject"), 1);
//! assert_eq!(report.trace.len(), 1);
//! println!("{}", report.trace_jsonl());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod registry;
pub mod trace;

pub use registry::{Histogram, Snapshot};
pub use trace::{trace_to_jsonl, TraceEvent};

use std::cell::RefCell;

/// Default trace-ring capacity: large enough to keep every event of the
/// paper-scale scenarios, bounded so million-link runs stay O(1) memory.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// The logical clock every trace event is stamped with. All four components
/// advance monotonically under the caller's control — the crate never reads
/// a wall clock (D1.clock), so stamps are reproducible across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SlotClock {
    /// Current schedule slot (set by schedulers as the frame grows, and by
    /// the traffic engine as simulated time advances).
    slot: u64,
    /// Current distributed-protocol round.
    round: u64,
    /// Current resilience epoch.
    epoch: u64,
    /// Probe ordinal: bumped once per feasibility probe via [`next_probe`].
    probe: u64,
}

/// The installed sink: registry + clock + bounded trace ring.
#[derive(Debug)]
struct ObsState {
    counters: std::collections::BTreeMap<&'static str, u64>,
    gauges: std::collections::BTreeMap<&'static str, u64>,
    histograms: std::collections::BTreeMap<&'static str, Histogram>,
    clock: SlotClock,
    trace: Vec<TraceEvent>,
    trace_capacity: usize,
    /// Events emitted after the ring filled (keep-first, so the retained
    /// prefix is deterministic regardless of how long the run continues).
    dropped_events: u64,
    /// Total events emitted (== seq of the next event).
    emitted_events: u64,
}

impl ObsState {
    fn new(trace_capacity: usize) -> Self {
        ObsState {
            counters: std::collections::BTreeMap::new(),
            gauges: std::collections::BTreeMap::new(),
            histograms: std::collections::BTreeMap::new(),
            clock: SlotClock::default(),
            trace: Vec::new(),
            trace_capacity,
            dropped_events: 0,
            emitted_events: 0,
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

thread_local! {
    static SINK: RefCell<Option<Box<ObsState>>> = const { RefCell::new(None) };
}

/// Runs `f` on the installed sink, or does nothing when disabled. A
/// reentrant emission (an emission fired from inside another emission) is
/// silently skipped rather than panicking the borrow.
fn with_sink<R>(f: impl FnOnce(&mut ObsState) -> R) -> Option<R> {
    SINK.with(|cell| {
        let mut borrow = cell.try_borrow_mut().ok()?;
        borrow.as_mut().map(|state| f(state))
    })
}

/// Everything a finished observation session produced: the final metrics
/// [`Snapshot`] plus the retained trace prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsReport {
    /// Final registry state.
    pub snapshot: Snapshot,
    /// Retained trace events, in emission order (keep-first ring).
    pub trace: Vec<TraceEvent>,
    /// Events emitted after the ring filled and therefore not retained.
    pub dropped_events: u64,
}

impl ObsReport {
    /// The retained trace as JSONL (one event object per line).
    pub fn trace_jsonl(&self) -> String {
        trace_to_jsonl(&self.trace)
    }
}

/// Installs a fresh sink on this thread with the default trace capacity.
/// Replaces (and discards) any previously installed sink.
pub fn install() {
    install_with_capacity(DEFAULT_TRACE_CAPACITY);
}

/// Installs a fresh sink with an explicit trace-ring capacity.
pub fn install_with_capacity(trace_capacity: usize) {
    SINK.with(|cell| {
        if let Ok(mut borrow) = cell.try_borrow_mut() {
            *borrow = Some(Box::new(ObsState::new(trace_capacity)));
        }
    });
}

/// Removes the sink and returns what it observed, or `None` when no sink
/// was installed.
pub fn uninstall() -> Option<ObsReport> {
    SINK.with(|cell| {
        let mut borrow = cell.try_borrow_mut().ok()?;
        borrow.take().map(|state| ObsReport {
            snapshot: state.snapshot(),
            trace: state.trace,
            dropped_events: state.dropped_events,
        })
    })
}

/// True when a sink is currently installed on this thread.
pub fn is_installed() -> bool {
    SINK.with(|cell| {
        cell.try_borrow()
            .map(|borrow| borrow.is_some())
            .unwrap_or(false)
    })
}

/// Clones the current registry state without uninstalling, or `None` when
/// disabled. Pair two snapshots with [`Snapshot::diff`] to meter a phase.
pub fn snapshot() -> Option<Snapshot> {
    with_sink(|state| state.snapshot())
}

/// Adds `delta` to the named counter (no-op when disabled).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    with_sink(|state| {
        let slot = state.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    });
}

/// Sets the named gauge to `value` (no-op when disabled).
#[inline]
pub fn gauge_set(name: &'static str, value: u64) {
    with_sink(|state| {
        state.gauges.insert(name, value);
    });
}

/// Records `value` into the named log₂-bucket histogram (no-op when
/// disabled).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    with_sink(|state| {
        state.histograms.entry(name).or_default().record(value);
    });
}

/// Emits a trace event stamped with the current slot clock (no-op when
/// disabled). `fields` are copied into the ring only when a sink is
/// installed, so a disabled sink allocates nothing.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, u64)]) {
    with_sink(|state| {
        let seq = state.emitted_events;
        state.emitted_events = seq.saturating_add(1);
        if state.trace.len() >= state.trace_capacity {
            state.dropped_events = state.dropped_events.saturating_add(1);
            return;
        }
        state.trace.push(TraceEvent {
            seq,
            name,
            slot: state.clock.slot,
            round: state.clock.round,
            epoch: state.clock.epoch,
            probe: state.clock.probe,
            fields: fields.to_vec(),
        });
    });
}

/// Sets the slot component of the logical clock.
#[inline]
pub fn set_slot(slot: u64) {
    with_sink(|state| state.clock.slot = slot);
}

/// Sets the round component of the logical clock.
#[inline]
pub fn set_round(round: u64) {
    with_sink(|state| state.clock.round = round);
}

/// Sets the epoch component of the logical clock.
#[inline]
pub fn set_epoch(epoch: u64) {
    with_sink(|state| state.clock.epoch = epoch);
}

/// Advances the probe ordinal and returns its new value (0 when disabled).
/// Feasibility probes call this once on entry so trace events carry "which
/// probe was in flight" without the probers threading state around.
#[inline]
pub fn next_probe() -> u64 {
    with_sink(|state| {
        state.clock.probe = state.clock.probe.saturating_add(1);
        state.clock.probe
    })
    .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_no_op() {
        assert!(!is_installed());
        counter_add("c", 1);
        gauge_set("g", 2);
        observe("h", 3);
        event("e", &[("k", 4)]);
        assert_eq!(next_probe(), 0);
        assert!(snapshot().is_none());
        assert!(uninstall().is_none());
    }

    #[test]
    fn registry_accumulates_and_reports() {
        install();
        counter_add("probe.reject", 2);
        counter_add("probe.reject", 3);
        gauge_set("fill", 10);
        gauge_set("fill", 11);
        observe("depth", 1);
        observe("depth", 9);
        let report = uninstall().expect("installed");
        assert_eq!(report.snapshot.counter("probe.reject"), 5);
        assert_eq!(report.snapshot.gauges.get("fill"), Some(&11));
        let h = report.snapshot.histograms.get("depth").expect("histogram");
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 10, 1, 9));
    }

    #[test]
    fn events_are_stamped_with_the_logical_clock() {
        install();
        set_slot(5);
        set_round(2);
        set_epoch(1);
        let p = next_probe();
        event("probe.done", &[("ok", 1)]);
        let report = uninstall().expect("installed");
        let e = &report.trace[0];
        assert_eq!((e.slot, e.round, e.epoch, e.probe), (5, 2, 1, p));
        assert_eq!(e.seq, 0);
        assert_eq!(e.fields, vec![("ok", 1)]);
    }

    #[test]
    fn trace_ring_keeps_first_and_counts_drops() {
        install_with_capacity(2);
        event("a", &[]);
        event("b", &[]);
        event("c", &[]);
        let report = uninstall().expect("installed");
        assert_eq!(report.trace.len(), 2);
        assert_eq!(report.dropped_events, 1);
        assert_eq!(report.trace[1].name, "b");
    }

    #[test]
    fn reinstall_resets_state() {
        install();
        counter_add("c", 1);
        install();
        let report = uninstall().expect("installed");
        assert_eq!(report.snapshot.counter("c"), 0);
        assert!(report.snapshot.counters.is_empty());
    }
}
