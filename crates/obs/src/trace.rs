//! Slot-clock tracing: structured event records stamped with logical time.
//!
//! A [`TraceEvent`] carries the four-component slot clock (slot, round,
//! epoch, probe ordinal) plus a flat list of `(&'static str, u64)` fields —
//! no wall-clock timestamps and no owned strings, so emission costs one
//! `Vec` copy when a sink is installed and nothing otherwise. Events live
//! in a bounded keep-first ring (see `ObsState` in the crate root): the
//! retained prefix of a long run is deterministic no matter when the run
//! stops.
//!
//! [`trace_to_jsonl`] renders events one JSON object per line, fields in
//! emission order, suitable for byte-diffing two same-seed runs in CI.

use crate::registry::escape_json;

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emission ordinal within the session (0-based, counts drops too).
    pub seq: u64,
    /// Event name (dot-separated, e.g. `greedy.link`).
    pub name: &'static str,
    /// Slot-clock stamp: schedule slot.
    pub slot: u64,
    /// Slot-clock stamp: distributed-protocol round.
    pub round: u64,
    /// Slot-clock stamp: resilience epoch.
    pub epoch: u64,
    /// Slot-clock stamp: feasibility-probe ordinal.
    pub probe: u64,
    /// Event payload, in emission order.
    pub fields: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// Value of a named payload field, if present.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(key, _)| *key == name)
            .map(|&(_, value)| value)
    }

    /// This event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"name\":\"{}\",\"slot\":{},\"round\":{},\"epoch\":{},\"probe\":{}",
            self.seq,
            escape_json(self.name),
            self.slot,
            self.round,
            self.epoch,
            self.probe
        );
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(key), value));
        }
        out.push_str("}}");
        out
    }
}

/// Renders events as JSONL: one [`TraceEvent::to_json`] object per line,
/// newline-terminated. Byte-identical for equal event slices.
pub fn trace_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_is_stable() {
        let events = vec![
            TraceEvent {
                seq: 0,
                name: "probe.done",
                slot: 3,
                round: 1,
                epoch: 0,
                probe: 42,
                fields: vec![("ok", 1), ("depth", 5)],
            },
            TraceEvent {
                seq: 1,
                name: "greedy.link",
                slot: 3,
                round: 1,
                epoch: 0,
                probe: 42,
                fields: vec![],
            },
        ];
        let jsonl = trace_to_jsonl(&events);
        assert_eq!(
            jsonl,
            "{\"seq\":0,\"name\":\"probe.done\",\"slot\":3,\"round\":1,\"epoch\":0,\
             \"probe\":42,\"fields\":{\"ok\":1,\"depth\":5}}\n\
             {\"seq\":1,\"name\":\"greedy.link\",\"slot\":3,\"round\":1,\"epoch\":0,\
             \"probe\":42,\"fields\":{}}\n"
        );
        assert_eq!(jsonl, trace_to_jsonl(&events));
        assert_eq!(events[0].field("depth"), Some(5));
        assert_eq!(events[0].field("missing"), None);
    }
}
