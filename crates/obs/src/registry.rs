//! The metrics registry: counters, gauges and log₂-bucket histograms keyed
//! by `&'static str`, frozen into a [`Snapshot`].
//!
//! Everything here is BTree-ordered so iteration, equality and JSON export
//! are deterministic (D1), and all values are `u64` so snapshots compare
//! exactly — no floats in the registry itself. The offline `serde` shim is
//! a no-op, so "Serialize" in this workspace means hand-rolled JSON:
//! [`Snapshot::to_json`] emits a stable, sorted rendering suitable for
//! byte-diffing across runs.

use std::collections::BTreeMap;

/// Number of log₂ buckets: bucket *i* counts values with
/// `floor(log2(value)) == i - 1` (bucket 0 counts zeros), with one overflow
/// bucket at the top. 33 buckets cover the full `u32` range — slot counts,
/// scan depths and reject tallies all fit far below that.
pub const HISTOGRAM_BUCKETS: usize = 34;

/// A log₂-bucket histogram over `u64` samples.
///
/// Integer-only (count/sum/min/max plus bucket tallies), so two histograms
/// over the same sample stream are `==` regardless of insertion batching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (saturating).
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Log₂ bucket tallies; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a sample: 0 for zero, else `1 + floor(log2(v))`,
    /// clamped into the overflow bucket.
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let exp = 63 - value.leading_zeros() as usize;
            (exp + 1).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        let idx = Self::bucket_index(value);
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
    }

    /// Mean sample value (0.0 when empty). The only float on the type, and
    /// it is derived — equality and diffing stay integer-exact.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Counterwise saturating difference `self - base`, for metering a
    /// phase between two snapshots of the same run.
    fn diff(&self, base: &Histogram) -> Histogram {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(base.buckets[i]);
        }
        Histogram {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            // min/max are not phase-decomposable; keep the later run's view.
            min: self.min,
            max: self.max,
            buckets,
        }
    }

    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count, self.sum, self.min, self.max
        );
        // Trailing zero buckets are elided so small-valued histograms stay
        // readable; the rendering is still canonical because elision depends
        // only on the tallies.
        let used = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        for (i, b) in self.buckets[..used].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("]}");
        out
    }
}

/// A frozen view of the registry: every counter, gauge and histogram at one
/// instant, BTree-ordered. `PartialEq` compares exactly, so determinism
/// tests can assert two same-seed runs produced identical metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Log₂-bucket histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

/// Minimal JSON string escaping for metric names (which are static
/// identifiers in practice, but the export stays well-formed regardless).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Value of the named counter (0 when absent — an uninstrumented or
    /// never-hit path reads as zero, matching counter semantics).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Entrywise saturating difference `self - base`: counters and
    /// histograms subtract, gauges keep `self`'s (latest) value. Taking a
    /// snapshot before and after a phase and diffing isolates that phase's
    /// activity.
    pub fn diff(&self, base: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&name, &value)| (name, value.saturating_sub(base.counter(name))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(&name, h)| match base.histograms.get(name) {
                Some(b) => (name, h.diff(b)),
                None => (name, h.clone()),
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Canonical JSON rendering: sorted keys, integer values, no
    /// whitespace. Byte-identical across runs whenever the snapshots
    /// compare equal.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), value));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), value));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), h.to_json()));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn snapshot_diff_isolates_a_phase() {
        let mut before = Snapshot::default();
        before.counters.insert("rejects", 10);
        let mut h0 = Histogram::default();
        h0.record(4);
        before.histograms.insert("depth", h0);

        let mut after = Snapshot::default();
        after.counters.insert("rejects", 25);
        after.counters.insert("accepts", 3);
        let mut h1 = Histogram::default();
        h1.record(4);
        h1.record(8);
        after.histograms.insert("depth", h1);
        after.gauges.insert("fill", 7);

        let phase = after.diff(&before);
        assert_eq!(phase.counter("rejects"), 15);
        assert_eq!(phase.counter("accepts"), 3);
        assert_eq!(phase.gauges.get("fill"), Some(&7));
        let d = phase.histograms.get("depth").expect("depth histogram");
        assert_eq!((d.count, d.sum), (1, 8));
    }

    #[test]
    fn json_is_canonical_and_sorted() {
        let mut snap = Snapshot::default();
        snap.counters.insert("b", 2);
        snap.counters.insert("a", 1);
        snap.gauges.insert("g", 3);
        let mut h = Histogram::default();
        h.record(5);
        snap.histograms.insert("h", h);
        let json = snap.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a\":1,\"b\":2},\"gauges\":{\"g\":3},\
             \"histograms\":{\"h\":{\"count\":1,\"sum\":5,\"min\":5,\"max\":5,\
             \"buckets\":[0,0,0,1]}}}"
        );
        assert_eq!(json, snap.clone().to_json());
    }

    #[test]
    fn empty_histogram_elides_all_buckets() {
        let h = Histogram::default();
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]}"
        );
    }
}
