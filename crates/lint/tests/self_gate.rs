//! The self-gate: the workspace must pass its own linter with everything
//! promoted to deny, exactly as CI runs it (`scream-lint --deny`).
//!
//! If this test fails, either a new violation slipped in (fix it or add a
//! `// lint:allow(RULE, reason = "...")`), or a P1 site was added without
//! shrinking the committed baseline.

use scream_lint::{find_workspace_root, lint_workspace, Config};
use std::path::Path;

fn workspace_config() -> Config {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest).expect("lint crate lives inside the workspace");
    Config::new(root)
}

#[test]
fn workspace_is_clean_under_bare_deny() {
    let mut cfg = workspace_config();
    // Bare `--deny`: every rule (including the warn-by-default F1.eq and
    // L1.unused) becomes an error, as in CI.
    cfg.class_overrides.push((None, true));
    let report = lint_workspace(&cfg).expect("workspace scan is readable");

    assert!(
        report.files_scanned > 50,
        "expected the whole workspace to be scanned"
    );
    let mut lines: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: {}: {}", d.path, d.line, d.rule.code(), d.message))
        .collect();
    lines.extend(report.baseline_violations.iter().map(|v| {
        format!(
            "{}: {} unallowed P1 sites exceed the baseline ({})",
            v.path, v.current, v.allowed
        )
    }));
    lines.extend(report.p2_violations.iter().map(|(entry, path, line)| {
        format!("{path}:{line}: P2.reach: public `{entry}` reaches a panic")
    }));
    assert!(
        !report.failed() && lines.is_empty(),
        "scream-lint --deny must pass on the workspace, found:\n{}",
        lines.join("\n")
    );
}

#[test]
fn p1_baseline_matches_current_count() {
    // The ratchet invariant: the committed baseline never lags behind
    // reality. `--write-baseline` after removing sites keeps them equal.
    let report = lint_workspace(&workspace_config()).expect("workspace scan is readable");
    assert_eq!(
        report.p1_current, report.p1_baseline,
        "committed P1 baseline is stale; run `cargo run -p scream-lint -- --write-baseline`"
    );
}

#[test]
fn p2_reach_report_matches_current_graph() {
    // Same invariant for the reach report: the committed `p2_reach.txt`
    // is exactly the current panic-reachable public API set — growth is a
    // gate failure, shrinkage means the file is stale.
    let cfg = workspace_config();
    let report = lint_workspace(&cfg).expect("workspace scan is readable");
    let committed = scream_lint::callgraph::load_reach(&cfg.reach_path);
    assert_eq!(
        report.p2_entries, committed,
        "committed p2_reach.txt is stale; run `cargo run -p scream-lint -- --write-baseline`"
    );
}
